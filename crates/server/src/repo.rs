//! In-memory document repository: the server-side store of XML documents,
//! their DTDs, and the URI association between them (paper §7's usage
//! scenario: "a user requesting a set of XML documents from a remote
//! site").
//!
//! Every stored document and DTD carries a **content hash**, computed
//! once on registration or replacement — never per request. The view
//! cache folds [`Repository::content_hash`] into its key, so a content
//! change *necessarily* repoints every cache lookup for that document:
//! explicit invalidation becomes hygiene (it reclaims space early)
//! rather than a correctness requirement. Rehashes are counted in the
//! `xmlsec_repo_rehash_total{kind}` telemetry series.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use xmlsec_telemetry as telemetry;

/// 64-bit FNV-1a over a byte string: stable across processes (unlike
/// `DefaultHasher`, whose seed is unspecified), cheap, and good enough
/// for content identity of trusted server-side documents. This is a
/// cache-freshness fingerprint, not a cryptographic commitment.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn rehash_counter(kind: &'static str) -> Arc<telemetry::Counter> {
    telemetry::global().counter(
        "xmlsec_repo_rehash_total",
        "Content-hash computations on repository registration or update.",
        &[("kind", kind)],
    )
}

fn document_rehashes() -> &'static Arc<telemetry::Counter> {
    static C: OnceLock<Arc<telemetry::Counter>> = OnceLock::new();
    C.get_or_init(|| rehash_counter("document"))
}

fn dtd_rehashes() -> &'static Arc<telemetry::Counter> {
    static C: OnceLock<Arc<telemetry::Counter>> = OnceLock::new();
    C.get_or_init(|| rehash_counter("dtd"))
}

/// A stored XML document.
#[derive(Debug, Clone)]
pub struct StoredDocument {
    /// The document text as served.
    pub xml: String,
    /// URI of the DTD this document is an instance of, if any.
    pub dtd_uri: Option<String>,
    /// FNV-1a hash of `xml`, computed when the document was stored.
    pub content_hash: u64,
}

/// A stored DTD text with its registration-time content hash.
#[derive(Debug, Clone)]
struct StoredDtd {
    text: String,
    content_hash: u64,
}

/// The repository: documents and DTD texts, keyed by URI.
#[derive(Debug, Clone, Default)]
pub struct Repository {
    documents: HashMap<String, StoredDocument>,
    dtds: HashMap<String, StoredDtd>,
}

impl Repository {
    /// An empty repository.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores (or replaces) a document, rehashing its content.
    pub fn put_document(&mut self, uri: &str, xml: &str, dtd_uri: Option<&str>) {
        document_rehashes().inc();
        self.documents.insert(
            uri.to_string(),
            StoredDocument {
                xml: xml.to_string(),
                dtd_uri: dtd_uri.map(str::to_string),
                content_hash: fnv1a64(xml.as_bytes()),
            },
        );
    }

    /// Stores (or replaces) a DTD text, rehashing its content.
    pub fn put_dtd(&mut self, uri: &str, dtd: &str) {
        dtd_rehashes().inc();
        self.dtds.insert(
            uri.to_string(),
            StoredDtd { text: dtd.to_string(), content_hash: fnv1a64(dtd.as_bytes()) },
        );
    }

    /// Fetches a document.
    pub fn document(&self, uri: &str) -> Option<&StoredDocument> {
        self.documents.get(uri)
    }

    /// Fetches a DTD text.
    pub fn dtd(&self, uri: &str) -> Option<&str> {
        self.dtds.get(uri).map(|d| d.text.as_str())
    }

    /// The registration-time content hash of a stored DTD.
    pub fn dtd_hash(&self, uri: &str) -> Option<u64> {
        self.dtds.get(uri).map(|d| d.content_hash)
    }

    /// The combined content identity of a document: its own bytes plus
    /// the bytes of the DTD it is an instance of. Folding this into the
    /// view-cache key makes a stale view structurally unreachable — any
    /// `put_document`/`put_dtd` that changes served content moves the
    /// hash and with it every cache key. Only registration-time hashes
    /// are combined here; no document bytes are touched per request.
    pub fn content_hash(&self, uri: &str) -> Option<u64> {
        let doc = self.documents.get(uri)?;
        let mut h = doc.content_hash;
        if let Some(dtd_uri) = &doc.dtd_uri {
            // Mix with a distinct tag per case so "DTD registered",
            // "DTD referenced but missing", and "no DTD" all differ.
            let (tag, dtd_hash) = match self.dtds.get(dtd_uri) {
                Some(d) => (0x01u8, d.content_hash),
                None => (0x02u8, fnv1a64(dtd_uri.as_bytes())),
            };
            let mut bytes = [0u8; 17];
            bytes[..8].copy_from_slice(&h.to_le_bytes());
            bytes[8] = tag;
            bytes[9..].copy_from_slice(&dtd_hash.to_le_bytes());
            h = fnv1a64(&bytes);
        }
        Some(h)
    }

    /// URIs of every document that is an instance of `dtd_uri` — the
    /// sweep set for schema-level invalidation.
    pub fn documents_with_dtd(&self, dtd_uri: &str) -> Vec<String> {
        self.documents
            .iter()
            .filter(|(_, d)| d.dtd_uri.as_deref() == Some(dtd_uri))
            .map(|(uri, _)| uri.clone())
            .collect()
    }

    /// Number of stored documents.
    pub fn len(&self) -> usize {
        self.documents.len()
    }

    /// `true` when no documents are stored.
    pub fn is_empty(&self) -> bool {
        self.documents.is_empty()
    }

    /// All document URIs.
    pub fn document_uris(&self) -> impl Iterator<Item = &str> {
        self.documents.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_get() {
        let mut r = Repository::new();
        r.put_dtd("lab.dtd", "<!ELEMENT lab EMPTY>");
        r.put_document("lab.xml", "<lab/>", Some("lab.dtd"));
        assert_eq!(r.len(), 1);
        let d = r.document("lab.xml").unwrap();
        assert_eq!(d.xml, "<lab/>");
        assert_eq!(d.dtd_uri.as_deref(), Some("lab.dtd"));
        assert_eq!(r.dtd("lab.dtd"), Some("<!ELEMENT lab EMPTY>"));
        assert!(r.document("other.xml").is_none());
        assert!(r.dtd("other.dtd").is_none());
    }

    #[test]
    fn replace_overwrites() {
        let mut r = Repository::new();
        r.put_document("a.xml", "<a/>", None);
        r.put_document("a.xml", "<a>v2</a>", None);
        assert_eq!(r.document("a.xml").unwrap().xml, "<a>v2</a>");
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn uris_enumerable() {
        let mut r = Repository::new();
        r.put_document("a.xml", "<a/>", None);
        r.put_document("b.xml", "<b/>", None);
        let mut uris: Vec<_> = r.document_uris().collect();
        uris.sort_unstable();
        assert_eq!(uris, vec!["a.xml", "b.xml"]);
    }

    #[test]
    fn content_hash_tracks_document_bytes() {
        let mut r = Repository::new();
        r.put_document("a.xml", "<a/>", None);
        let h1 = r.content_hash("a.xml").unwrap();
        assert_eq!(h1, r.content_hash("a.xml").unwrap(), "hash is stable");
        r.put_document("a.xml", "<a>v2</a>", None);
        assert_ne!(h1, r.content_hash("a.xml").unwrap(), "new bytes, new hash");
        r.put_document("a.xml", "<a/>", None);
        assert_eq!(h1, r.content_hash("a.xml").unwrap(), "same bytes, same hash");
        assert!(r.content_hash("missing.xml").is_none());
    }

    #[test]
    fn content_hash_folds_in_the_dtd() {
        let mut r = Repository::new();
        r.put_dtd("d.dtd", "<!ELEMENT d EMPTY>");
        r.put_document("plain.xml", "<d/>", None);
        r.put_document("typed.xml", "<d/>", Some("d.dtd"));
        let plain = r.content_hash("plain.xml").unwrap();
        let typed = r.content_hash("typed.xml").unwrap();
        assert_ne!(plain, typed, "DTD association is part of the identity");
        // Replacing the DTD repoints every conforming document's hash.
        r.put_dtd("d.dtd", "<!ELEMENT d (#PCDATA)>");
        assert_ne!(typed, r.content_hash("typed.xml").unwrap());
        assert_eq!(plain, r.content_hash("plain.xml").unwrap(), "unrelated doc untouched");
        // A referenced-but-unregistered DTD is distinct from both.
        r.put_document("dangling.xml", "<d/>", Some("ghost.dtd"));
        let dangling = r.content_hash("dangling.xml").unwrap();
        assert_ne!(dangling, plain);
    }

    #[test]
    fn documents_with_dtd_resolves_the_sweep_set() {
        let mut r = Repository::new();
        r.put_dtd("d.dtd", "<!ELEMENT d EMPTY>");
        r.put_document("a.xml", "<d/>", Some("d.dtd"));
        r.put_document("b.xml", "<d/>", Some("d.dtd"));
        r.put_document("c.xml", "<c/>", None);
        let mut hit = r.documents_with_dtd("d.dtd");
        hit.sort_unstable();
        assert_eq!(hit, vec!["a.xml", "b.xml"]);
        assert!(r.documents_with_dtd("other.dtd").is_empty());
    }

    #[test]
    fn fnv1a64_is_the_published_function() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
