//! In-memory document repository: the server-side store of XML documents,
//! their DTDs, and the URI association between them (paper §7's usage
//! scenario: "a user requesting a set of XML documents from a remote
//! site").
//!
//! Every stored document and DTD carries a **content hash**, computed
//! once on registration or replacement — never per request. The view
//! cache folds [`Repository::content_hash`] into its key, so a content
//! change *necessarily* repoints every cache lookup for that document:
//! explicit invalidation becomes hygiene (it reclaims space early)
//! rather than a correctness requirement. Rehashes are counted in the
//! `xmlsec_repo_rehash_total{kind}` telemetry series.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use xmlsec_telemetry as telemetry;
use xmlsec_xml::{Document, NodeData, NodeId};

/// 64-bit FNV-1a over a byte string: stable across processes (unlike
/// `DefaultHasher`, whose seed is unspecified), cheap, and good enough
/// for content identity of trusted server-side documents. This is a
/// cache-freshness fingerprint, not a cryptographic commitment.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn rehash_counter(kind: &'static str) -> Arc<telemetry::Counter> {
    telemetry::global().counter(
        "xmlsec_repo_rehash_total",
        "Content-hash computations on repository registration or update.",
        &[("kind", kind)],
    )
}

fn document_rehashes() -> &'static Arc<telemetry::Counter> {
    static C: OnceLock<Arc<telemetry::Counter>> = OnceLock::new();
    C.get_or_init(|| rehash_counter("document"))
}

fn dtd_rehashes() -> &'static Arc<telemetry::Counter> {
    static C: OnceLock<Arc<telemetry::Counter>> = OnceLock::new();
    C.get_or_init(|| rehash_counter("dtd"))
}

fn incremental_rehashes() -> &'static Arc<telemetry::Counter> {
    static C: OnceLock<Arc<telemetry::Counter>> = OnceLock::new();
    C.get_or_init(|| rehash_counter("incremental"))
}

/// A stored XML document.
#[derive(Debug, Clone)]
pub struct StoredDocument {
    /// The document text as served.
    pub xml: String,
    /// URI of the DTD this document is an instance of, if any.
    pub dtd_uri: Option<String>,
    /// FNV-1a hash of `xml`, computed when the document was stored.
    pub content_hash: u64,
}

/// A stored DTD text with its registration-time content hash.
#[derive(Debug, Clone)]
struct StoredDtd {
    text: String,
    content_hash: u64,
}

/// A document in parsed (and DTD-normalized) form, kept alongside the
/// byte form so the update path never reparses: writes mutate this DOM
/// in place and rehash only the dirty subtrees.
///
/// The content identity of a parsed document is a **Merkle-style tree
/// hash**: every arena slot carries the hash of its subtree (node kind,
/// names/values, attribute hashes, child hashes in order), and the
/// document's hash is the root's. After an update,
/// [`ParsedDocument::rehash_dirty`] recomputes exactly the dirty
/// subtrees plus their ancestor chains — O(changed + depth), not O(doc).
#[derive(Debug, Clone)]
pub struct ParsedDocument {
    doc: Document,
    /// Per arena slot: subtree hash of the node occupying it (stale for
    /// vacant slots; never read through them).
    hashes: Vec<u64>,
    /// Memoized result of validating this revision against its DTD
    /// (`None` = not checked yet). The update pre-flight trusts static
    /// write verdicts only on valid documents; caching the check here
    /// keeps it one validation per revision, not per request.
    schema_valid: Option<bool>,
}

impl ParsedDocument {
    /// Wraps a freshly parsed (and normalized) document, hashing every
    /// subtree once.
    pub fn new(doc: Document) -> ParsedDocument {
        let mut p = ParsedDocument { doc, hashes: Vec::new(), schema_valid: None };
        p.hashes = vec![0; p.doc.arena_len()];
        p.rehash_subtree(p.doc.root());
        p
    }

    /// The parsed document.
    pub fn doc(&self) -> &Document {
        &self.doc
    }

    /// The memoized DTD-validity of this revision, if known.
    pub fn schema_valid(&self) -> Option<bool> {
        self.schema_valid
    }

    /// Records the DTD-validity of this revision (set by the server
    /// after validating, or after a commit whose post-validation passed).
    pub fn set_schema_valid(&mut self, valid: bool) {
        self.schema_valid = Some(valid);
    }

    /// The tree hash of the whole document.
    pub fn root_hash(&self) -> u64 {
        self.hashes[self.doc.root().index()]
    }

    /// Replaces the document with an updated revision of itself and
    /// recomputes hashes for the given dirty subtree roots plus their
    /// ancestor chains. Ids no longer live in `doc` (removed by a later
    /// op of the same batch) are skipped. Returns the number of nodes
    /// rehashed — the incremental work, which the
    /// `xmlsec_repo_rehash_total{kind="incremental"}` counter absorbs.
    pub fn rehash_dirty(&mut self, doc: Document, dirty: &[NodeId]) -> usize {
        self.doc = doc;
        self.schema_valid = None;
        self.hashes.resize(self.doc.arena_len().max(self.hashes.len()), 0);
        let mut rehashed = 0usize;
        for &d in dirty {
            if !self.doc.contains(d) {
                continue;
            }
            rehashed += self.rehash_subtree(d);
            // Recombine the ancestor chain shallowly: each parent's hash
            // is rebuilt from its (now current) child hashes. Shared
            // ancestors of several dirty nodes are recombined more than
            // once — idempotent, and cheaper than deduplicating.
            let mut cur = d;
            while let Some(p) = self.doc.parent(cur) {
                let h = self.shallow_hash(p);
                self.hashes[p.index()] = h;
                rehashed += 1;
                cur = p;
            }
        }
        rehashed
    }

    /// Full recompute of one subtree (post-order). Returns nodes hashed.
    fn rehash_subtree(&mut self, n: NodeId) -> usize {
        let mut count = 1usize;
        for a in self.doc.attributes(n).to_vec() {
            let h = self.shallow_hash(a);
            self.hashes[a.index()] = h;
            count += 1;
        }
        for c in self.doc.children(n).to_vec() {
            count += self.rehash_subtree(c);
        }
        let h = self.shallow_hash(n);
        self.hashes[n.index()] = h;
        count
    }

    /// Hash of one node from its own data plus the *stored* hashes of
    /// its attributes and children.
    fn shallow_hash(&self, n: NodeId) -> u64 {
        let mut buf: Vec<u8> = Vec::with_capacity(64);
        match &self.doc.node(n).data {
            NodeData::Element { name, attrs, children } => {
                buf.push(1);
                buf.extend_from_slice(name.as_bytes());
                for &a in attrs {
                    buf.push(0xfe);
                    buf.extend_from_slice(&self.hashes[a.index()].to_le_bytes());
                }
                for &c in children {
                    buf.push(0xff);
                    buf.extend_from_slice(&self.hashes[c.index()].to_le_bytes());
                }
            }
            NodeData::Attr { name, value } => {
                buf.push(2);
                buf.extend_from_slice(name.as_bytes());
                buf.push(0);
                buf.extend_from_slice(value.as_bytes());
            }
            NodeData::Text(t) => {
                buf.push(3);
                buf.extend_from_slice(t.as_bytes());
            }
            NodeData::Comment(t) => {
                buf.push(4);
                buf.extend_from_slice(t.as_bytes());
            }
            NodeData::Pi { target, data } => {
                buf.push(5);
                buf.extend_from_slice(target.as_bytes());
                buf.push(0);
                buf.extend_from_slice(data.as_bytes());
            }
        }
        fnv1a64(&buf)
    }
}

/// The repository: documents and DTD texts, keyed by URI, plus the
/// parsed form of documents that have been through the update path.
#[derive(Debug, Clone, Default)]
pub struct Repository {
    documents: HashMap<String, StoredDocument>,
    dtds: HashMap<String, StoredDtd>,
    parsed: HashMap<String, ParsedDocument>,
}

impl Repository {
    /// An empty repository.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores (or replaces) a document, rehashing its content. Any
    /// parsed form held for `uri` is dropped — the bytes are now the
    /// source of truth and the next update reparses them.
    pub fn put_document(&mut self, uri: &str, xml: &str, dtd_uri: Option<&str>) {
        document_rehashes().inc();
        self.parsed.remove(uri);
        self.documents.insert(
            uri.to_string(),
            StoredDocument {
                xml: xml.to_string(),
                dtd_uri: dtd_uri.map(str::to_string),
                content_hash: fnv1a64(xml.as_bytes()),
            },
        );
    }

    /// Stores (or replaces) a DTD text, rehashing its content. Parsed
    /// forms of every instance document are dropped: normalization
    /// (attribute defaulting) bakes the DTD into the DOM, so they must
    /// be rebuilt against the new schema.
    pub fn put_dtd(&mut self, uri: &str, dtd: &str) {
        dtd_rehashes().inc();
        for doc_uri in self.documents_with_dtd(uri) {
            self.parsed.remove(&doc_uri);
        }
        self.dtds.insert(
            uri.to_string(),
            StoredDtd { text: dtd.to_string(), content_hash: fnv1a64(dtd.as_bytes()) },
        );
    }

    /// The parsed form of `uri`, when one is held (populated by the
    /// update path via [`Repository::store_parsed`]).
    pub fn parsed_document(&self, uri: &str) -> Option<&ParsedDocument> {
        self.parsed.get(uri)
    }

    /// Mutable access to the parsed form of `uri` (for memoizing the
    /// validity of the current revision).
    pub fn parsed_document_mut(&mut self, uri: &str) -> Option<&mut ParsedDocument> {
        self.parsed.get_mut(uri)
    }

    /// Caches the parsed (normalized) form of an already-stored
    /// document. No effect on the byte form or its hash: the parsed form
    /// only becomes the content authority once [`Repository::commit_update`]
    /// runs.
    pub fn store_parsed(&mut self, uri: &str, parsed: ParsedDocument) {
        self.parsed.insert(uri.to_string(), parsed);
    }

    /// Commits an updated revision of `uri`'s parsed document: rehashes
    /// the dirty subtrees incrementally (bounding the hashing work by
    /// the batch's footprint), refreshes the served bytes from the new
    /// DOM, and recomputes the content hash from those bytes so every
    /// cache key for the old revision is structurally unreachable.
    ///
    /// The content hash stays **byte-derived** — the same scheme
    /// [`Repository::put_document`] uses — so an updated document and a
    /// fresh server loading the committed bytes agree on the content
    /// identity (and therefore on entity tags: a client can revalidate
    /// against a restarted or replicated instance). The incremental
    /// tree hash is internal bookkeeping that decides *what* to rehash,
    /// never the published identity.
    ///
    /// Returns the number of nodes rehashed, or `None` when `uri` has no
    /// stored document or no parsed form (callers establish both first).
    pub fn commit_update(
        &mut self,
        uri: &str,
        doc: Document,
        dirty: &[xmlsec_xml::NodeId],
    ) -> Option<usize> {
        if !self.documents.contains_key(uri) {
            return None;
        }
        let parsed = self.parsed.get_mut(uri)?;
        let rehashed = parsed.rehash_dirty(doc, dirty);
        incremental_rehashes().add(rehashed as u64);
        let xml =
            xmlsec_xml::serialize(&parsed.doc, &xmlsec_xml::SerializeOptions::canonical());
        let stored = self.documents.get_mut(uri).expect("checked above");
        stored.content_hash = fnv1a64(xml.as_bytes());
        stored.xml = xml;
        Some(rehashed)
    }

    /// Fetches a document.
    pub fn document(&self, uri: &str) -> Option<&StoredDocument> {
        self.documents.get(uri)
    }

    /// Fetches a DTD text.
    pub fn dtd(&self, uri: &str) -> Option<&str> {
        self.dtds.get(uri).map(|d| d.text.as_str())
    }

    /// The registration-time content hash of a stored DTD.
    pub fn dtd_hash(&self, uri: &str) -> Option<u64> {
        self.dtds.get(uri).map(|d| d.content_hash)
    }

    /// The combined content identity of a document: its own bytes plus
    /// the bytes of the DTD it is an instance of. Folding this into the
    /// view-cache key makes a stale view structurally unreachable — any
    /// `put_document`/`put_dtd` that changes served content moves the
    /// hash and with it every cache key. Only registration-time hashes
    /// are combined here; no document bytes are touched per request.
    pub fn content_hash(&self, uri: &str) -> Option<u64> {
        let doc = self.documents.get(uri)?;
        let mut h = doc.content_hash;
        if let Some(dtd_uri) = &doc.dtd_uri {
            // Mix with a distinct tag per case so "DTD registered",
            // "DTD referenced but missing", and "no DTD" all differ.
            let (tag, dtd_hash) = match self.dtds.get(dtd_uri) {
                Some(d) => (0x01u8, d.content_hash),
                None => (0x02u8, fnv1a64(dtd_uri.as_bytes())),
            };
            let mut bytes = [0u8; 17];
            bytes[..8].copy_from_slice(&h.to_le_bytes());
            bytes[8] = tag;
            bytes[9..].copy_from_slice(&dtd_hash.to_le_bytes());
            h = fnv1a64(&bytes);
        }
        Some(h)
    }

    /// URIs of every document that is an instance of `dtd_uri` — the
    /// sweep set for schema-level invalidation.
    pub fn documents_with_dtd(&self, dtd_uri: &str) -> Vec<String> {
        self.documents
            .iter()
            .filter(|(_, d)| d.dtd_uri.as_deref() == Some(dtd_uri))
            .map(|(uri, _)| uri.clone())
            .collect()
    }

    /// Number of stored documents.
    pub fn len(&self) -> usize {
        self.documents.len()
    }

    /// `true` when no documents are stored.
    pub fn is_empty(&self) -> bool {
        self.documents.is_empty()
    }

    /// All document URIs.
    pub fn document_uris(&self) -> impl Iterator<Item = &str> {
        self.documents.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_get() {
        let mut r = Repository::new();
        r.put_dtd("lab.dtd", "<!ELEMENT lab EMPTY>");
        r.put_document("lab.xml", "<lab/>", Some("lab.dtd"));
        assert_eq!(r.len(), 1);
        let d = r.document("lab.xml").unwrap();
        assert_eq!(d.xml, "<lab/>");
        assert_eq!(d.dtd_uri.as_deref(), Some("lab.dtd"));
        assert_eq!(r.dtd("lab.dtd"), Some("<!ELEMENT lab EMPTY>"));
        assert!(r.document("other.xml").is_none());
        assert!(r.dtd("other.dtd").is_none());
    }

    #[test]
    fn replace_overwrites() {
        let mut r = Repository::new();
        r.put_document("a.xml", "<a/>", None);
        r.put_document("a.xml", "<a>v2</a>", None);
        assert_eq!(r.document("a.xml").unwrap().xml, "<a>v2</a>");
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn uris_enumerable() {
        let mut r = Repository::new();
        r.put_document("a.xml", "<a/>", None);
        r.put_document("b.xml", "<b/>", None);
        let mut uris: Vec<_> = r.document_uris().collect();
        uris.sort_unstable();
        assert_eq!(uris, vec!["a.xml", "b.xml"]);
    }

    #[test]
    fn content_hash_tracks_document_bytes() {
        let mut r = Repository::new();
        r.put_document("a.xml", "<a/>", None);
        let h1 = r.content_hash("a.xml").unwrap();
        assert_eq!(h1, r.content_hash("a.xml").unwrap(), "hash is stable");
        r.put_document("a.xml", "<a>v2</a>", None);
        assert_ne!(h1, r.content_hash("a.xml").unwrap(), "new bytes, new hash");
        r.put_document("a.xml", "<a/>", None);
        assert_eq!(h1, r.content_hash("a.xml").unwrap(), "same bytes, same hash");
        assert!(r.content_hash("missing.xml").is_none());
    }

    #[test]
    fn content_hash_folds_in_the_dtd() {
        let mut r = Repository::new();
        r.put_dtd("d.dtd", "<!ELEMENT d EMPTY>");
        r.put_document("plain.xml", "<d/>", None);
        r.put_document("typed.xml", "<d/>", Some("d.dtd"));
        let plain = r.content_hash("plain.xml").unwrap();
        let typed = r.content_hash("typed.xml").unwrap();
        assert_ne!(plain, typed, "DTD association is part of the identity");
        // Replacing the DTD repoints every conforming document's hash.
        r.put_dtd("d.dtd", "<!ELEMENT d (#PCDATA)>");
        assert_ne!(typed, r.content_hash("typed.xml").unwrap());
        assert_eq!(plain, r.content_hash("plain.xml").unwrap(), "unrelated doc untouched");
        // A referenced-but-unregistered DTD is distinct from both.
        r.put_document("dangling.xml", "<d/>", Some("ghost.dtd"));
        let dangling = r.content_hash("dangling.xml").unwrap();
        assert_ne!(dangling, plain);
    }

    #[test]
    fn documents_with_dtd_resolves_the_sweep_set() {
        let mut r = Repository::new();
        r.put_dtd("d.dtd", "<!ELEMENT d EMPTY>");
        r.put_document("a.xml", "<d/>", Some("d.dtd"));
        r.put_document("b.xml", "<d/>", Some("d.dtd"));
        r.put_document("c.xml", "<c/>", None);
        let mut hit = r.documents_with_dtd("d.dtd");
        hit.sort_unstable();
        assert_eq!(hit, vec!["a.xml", "b.xml"]);
        assert!(r.documents_with_dtd("other.dtd").is_empty());
    }

    #[test]
    fn tree_hash_matches_full_recompute_after_incremental_rehash() {
        let doc = xmlsec_xml::parse(r#"<doc><a x="1">t</a><b>u</b></doc>"#).unwrap();
        let mut parsed = ParsedDocument::new(doc.clone());

        // Mutate: change <a>'s text, add an attribute on <b>.
        let mut updated = doc;
        let a = updated.child_elements(updated.root()).next().unwrap();
        let b = updated.child_elements(updated.root()).nth(1).unwrap();
        let t = updated.children(a).iter().copied().find(|&c| updated.is_text(c)).unwrap();
        updated.remove_subtree(t);
        updated.append_text(a, "t2");
        updated.set_attribute(b, "y", "2").unwrap();

        let before = parsed.root_hash();
        parsed.rehash_dirty(updated.clone(), &[a, b]);
        assert_ne!(parsed.root_hash(), before, "content change must move the hash");
        // Incremental result equals a from-scratch hash of the same DOM.
        assert_eq!(parsed.root_hash(), ParsedDocument::new(updated).root_hash());
    }

    #[test]
    fn tree_hash_skips_dead_dirty_ids() {
        let doc = xmlsec_xml::parse("<doc><a>t</a></doc>").unwrap();
        let mut parsed = ParsedDocument::new(doc.clone());
        let mut updated = doc;
        let a = updated.child_elements(updated.root()).next().unwrap();
        updated.remove_subtree(a);
        // Dirty list names the removed node and its parent — only the
        // live one is rehashed.
        let root = updated.root();
        parsed.rehash_dirty(updated.clone(), &[a, root]);
        assert_eq!(parsed.root_hash(), ParsedDocument::new(updated).root_hash());
    }

    #[test]
    fn commit_update_repoints_bytes_and_hash() {
        let mut r = Repository::new();
        r.put_document("a.xml", "<doc><a>old</a></doc>", None);
        let h0 = r.content_hash("a.xml").unwrap();
        let doc = xmlsec_xml::parse(&r.document("a.xml").unwrap().xml).unwrap();
        r.store_parsed("a.xml", ParsedDocument::new(doc.clone()));

        let mut updated = doc;
        let a = updated.child_elements(updated.root()).next().unwrap();
        let t = updated.children(a)[0];
        updated.remove_subtree(t);
        updated.append_text(a, "new");
        let rehashed = r.commit_update("a.xml", updated, &[a]).unwrap();
        assert!(rehashed > 0);
        assert_eq!(r.document("a.xml").unwrap().xml, "<doc><a>new</a></doc>");
        assert_ne!(r.content_hash("a.xml").unwrap(), h0);
        // The parsed form survives the commit for the next update.
        assert!(r.parsed_document("a.xml").is_some());
    }

    #[test]
    fn byte_level_puts_invalidate_the_parsed_form() {
        let mut r = Repository::new();
        r.put_dtd("d.dtd", "<!ELEMENT doc EMPTY>");
        r.put_document("a.xml", "<doc/>", Some("d.dtd"));
        r.put_document("b.xml", "<doc/>", None);
        let pa = ParsedDocument::new(xmlsec_xml::parse("<doc/>").unwrap());
        let pb = ParsedDocument::new(xmlsec_xml::parse("<doc/>").unwrap());
        r.store_parsed("a.xml", pa);
        r.store_parsed("b.xml", pb);

        // put_document drops only that document's parsed form.
        r.put_document("b.xml", "<doc>v2</doc>", None);
        assert!(r.parsed_document("b.xml").is_none());
        assert!(r.parsed_document("a.xml").is_some());
        // put_dtd drops the parsed form of every instance document.
        r.put_dtd("d.dtd", "<!ELEMENT doc (#PCDATA)>");
        assert!(r.parsed_document("a.xml").is_none());
        // commit_update without a parsed form is refused.
        assert!(r
            .commit_update("a.xml", xmlsec_xml::parse("<doc/>").unwrap(), &[])
            .is_none());
    }

    #[test]
    fn fnv1a64_is_the_published_function() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
