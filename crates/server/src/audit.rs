//! Audit log: a record of every access decision the server takes.
//!
//! Appends are timed into the `xmlsec_audit_append_duration_seconds`
//! histogram so `/metrics` exposes the cost of the audit trail itself.

use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};
use xmlsec_telemetry as telemetry;

/// Outcome of one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditOutcome {
    /// A view was computed and returned (with how many of the labeled
    /// nodes were granted).
    Served {
        /// Nodes the requester could see.
        granted_nodes: usize,
        /// Nodes in the source document.
        total_nodes: usize,
        /// Whether the view came from the cache.
        cached: bool,
    },
    /// An update batch was authorized, applied, and committed.
    ///
    /// Distinct from [`AuditOutcome::Served`] so write traffic never
    /// masquerades as a zero-node read in the trail.
    Updated {
        /// Operations in the submitted batch.
        ops: usize,
        /// Concrete node-level mutations applied (a single op can touch
        /// several nodes, e.g. materializing an attribute).
        touched: usize,
    },
    /// Authentication failed.
    AuthenticationFailed,
    /// The URI is not in the repository.
    NotFound,
    /// The processor raised an error.
    ProcessingError(String),
    /// The authorization base changed (grant or revoke) and the policy
    /// pre-flight analyzer ran over the affected schema.
    PolicyChanged {
        /// `"grant"` or `"revoke"`.
        action: String,
        /// Total findings the pre-flight produced.
        findings: usize,
        /// Error-class findings among them.
        errors: usize,
    },
}

/// One audit record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditRecord {
    /// Monotonic sequence number.
    pub seq: u64,
    /// The requester, rendered (`user@host(ip)`).
    pub requester: String,
    /// Requested URI.
    pub uri: String,
    /// What happened.
    pub outcome: AuditOutcome,
}

impl fmt::Display for AuditRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{} {} -> {}: {:?}", self.seq, self.requester, self.uri, self.outcome)
    }
}

fn append_histogram() -> &'static Arc<telemetry::Histogram> {
    static HIST: OnceLock<Arc<telemetry::Histogram>> = OnceLock::new();
    HIST.get_or_init(|| {
        telemetry::global().histogram(
            "xmlsec_audit_append_duration_seconds",
            "Latency of appending one audit record.",
            &[],
            telemetry::Buckets::duration_default(),
        )
    })
}

/// Thread-safe, append-only audit log.
#[derive(Debug, Default)]
pub struct AuditLog {
    inner: Mutex<Vec<AuditRecord>>,
}

impl AuditLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<AuditRecord>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Appends a record, assigning its sequence number.
    pub fn record(&self, requester: &str, uri: &str, outcome: AuditOutcome) -> u64 {
        append_histogram().time(|| {
            let mut inner = self.lock();
            let seq = inner.len() as u64;
            inner.push(AuditRecord {
                seq,
                requester: requester.to_string(),
                uri: uri.to_string(),
                outcome,
            });
            seq
        })
    }

    /// A snapshot of all records.
    pub fn records(&self) -> Vec<AuditRecord> {
        self.lock().clone()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequencing_and_snapshot() {
        let log = AuditLog::new();
        assert!(log.is_empty());
        let s0 = log.record("Tom@h(1.2.3.4)", "a.xml", AuditOutcome::NotFound);
        let s1 = log.record(
            "Tom@h(1.2.3.4)",
            "b.xml",
            AuditOutcome::Served { granted_nodes: 3, total_nodes: 9, cached: false },
        );
        assert_eq!((s0, s1), (0, 1));
        let records = log.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].uri, "b.xml");
        assert!(records[0].to_string().contains("NotFound"));
    }

    #[test]
    fn append_latency_is_measured() {
        let before = append_histogram().totals().0;
        let log = AuditLog::new();
        log.record("Public@*(*)", "a.xml", AuditOutcome::NotFound);
        assert!(append_histogram().totals().0 > before);
    }
}
