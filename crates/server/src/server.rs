//! The secure document server: ties together authentication, the
//! user/group directory, the repository, the security processor, the view
//! cache and the audit log — the paper's §7 architecture with the
//! security processor as a server-side *service component*.
//!
//! Views are cached under **content-addressed** keys: the cache key folds
//! in the repository's registration-time content hash of the document and
//! its DTD, so any content change — an update batch, a direct
//! `put_document`, a DTD replacement — structurally misses the cache.
//! Explicit invalidation is hygiene (it reclaims space early), never a
//! correctness requirement. The same identity backs HTTP conditional
//! revalidation: every served view carries a strong ETag, and
//! [`SecureServer::handle_conditional`] answers a matching
//! `If-None-Match` with [`ConditionalOutcome::NotModified`] without
//! rendering — or even running — the pipeline.

use crate::audit::{AuditLog, AuditOutcome};
use crate::cache::{fingerprint, CachedView, ViewCache, ViewKey};
use crate::repo::{fnv1a64, ParsedDocument, Repository};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};
use xmlsec_authz::{
    Authorization, AuthorizationBase, CompletenessPolicy, ConflictResolution, Finding,
    PolicyConfig, Severity,
};
use xmlsec_core::update::{apply_updates, UpdateError, UpdateOp, WriteContext};
use xmlsec_core::view::{label_document_incremental, prune_document, EngineOptions, Labeling};
use xmlsec_core::{
    AccessRequest, CancelReason, CancelToken, CompiledCache, DecisionCache, DocumentSource,
    Parallelism, ResourceLimits, SecurityProcessor,
};
use xmlsec_dtd::parse_dtd;
use xmlsec_subjects::{Directory, Requester};
use xmlsec_telemetry as telemetry;

/// Errors returned to a client.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerError {
    /// Wrong user/secret pair.
    AuthenticationFailed,
    /// No such document.
    NotFound(String),
    /// The stored document failed processing (server-side fault).
    Processing(String),
    /// Malformed requester locations.
    BadRequest(String),
    /// A query path that does not parse.
    BadQuery(String),
    /// An update was refused (unauthorized target, missing node, …).
    UpdateDenied(String),
    /// An update batch rejected by the static write pre-flight: op `op`
    /// (0-based) is guaranteed to fail on every valid document, so the
    /// batch was refused before any parsing or labeling. Transports map
    /// `op` back to the request line that carried it.
    UpdateDeniedStatic {
        /// Index of the guaranteed-failing op within the batch.
        op: usize,
        /// Why the op can never succeed.
        reason: String,
    },
    /// Serving the request would exceed a configured resource limit
    /// (document too deep/large, path evaluation over budget, …).
    LimitExceeded(String),
    /// The request was cancelled before a view was produced — its
    /// deadline passed, the client hung up, or the front end shed it.
    /// Partial work is discarded; the document and policy are not at
    /// fault and an identical retry can succeed.
    Cancelled(CancelReason),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::AuthenticationFailed => write!(f, "authentication failed"),
            ServerError::NotFound(u) => write!(f, "document {u:?} not found"),
            ServerError::Processing(e) => write!(f, "processing error: {e}"),
            ServerError::BadRequest(e) => write!(f, "bad request: {e}"),
            ServerError::BadQuery(e) => write!(f, "bad query: {e}"),
            ServerError::UpdateDenied(e) => write!(f, "update denied: {e}"),
            ServerError::UpdateDeniedStatic { op, reason } => {
                write!(f, "update denied: op {}: {reason}", op + 1)
            }
            ServerError::LimitExceeded(e) => write!(f, "resource limit exceeded: {e}"),
            ServerError::Cancelled(r) => write!(f, "request cancelled: {r}"),
        }
    }
}

impl std::error::Error for ServerError {}

struct ServerMetrics {
    served: Arc<telemetry::Counter>,
    served_cached: Arc<telemetry::Counter>,
    not_modified: Arc<telemetry::Counter>,
    auth_failed: Arc<telemetry::Counter>,
    not_found: Arc<telemetry::Counter>,
    bad_request: Arc<telemetry::Counter>,
    processing_error: Arc<telemetry::Counter>,
    limit_exceeded: Arc<telemetry::Counter>,
    cancelled: Arc<telemetry::Counter>,
    duration: Arc<telemetry::Histogram>,
}

impl ServerMetrics {
    fn for_outcome(&self, r: &Result<ConditionalOutcome, ServerError>) -> &telemetry::Counter {
        match r {
            Ok(ConditionalOutcome::NotModified { .. }) => &self.not_modified,
            Ok(ConditionalOutcome::Full(resp)) if resp.cached => &self.served_cached,
            Ok(ConditionalOutcome::Full(_)) => &self.served,
            Err(ServerError::AuthenticationFailed) => &self.auth_failed,
            Err(ServerError::NotFound(_)) => &self.not_found,
            Err(ServerError::Processing(_)) => &self.processing_error,
            Err(ServerError::LimitExceeded(_)) => &self.limit_exceeded,
            Err(ServerError::Cancelled(_)) => &self.cancelled,
            Err(
                ServerError::BadRequest(_)
                | ServerError::BadQuery(_)
                | ServerError::UpdateDenied(_)
                | ServerError::UpdateDeniedStatic { .. },
            ) => &self.bad_request,
        }
    }
}

fn server_metrics() -> &'static ServerMetrics {
    static METRICS: OnceLock<ServerMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = telemetry::global();
        let outcome = |o: &'static str| {
            reg.counter(
                "xmlsec_requests_total",
                "Document requests handled, by outcome.",
                &[("outcome", o)],
            )
        };
        ServerMetrics {
            served: outcome("served"),
            served_cached: outcome("served_cached"),
            not_modified: outcome("not_modified"),
            auth_failed: outcome("auth_failed"),
            not_found: outcome("not_found"),
            bad_request: outcome("bad_request"),
            processing_error: outcome("processing_error"),
            limit_exceeded: outcome("limit_exceeded"),
            cancelled: outcome("cancelled"),
            duration: reg.histogram(
                "xmlsec_request_duration_seconds",
                "End-to-end latency of one document request.",
                &[],
                telemetry::Buckets::duration_default(),
            ),
        }
    })
}

/// Counter for one static pre-flight verdict (`deny` / `allow` /
/// `dynamic`); the registry caches per label set.
fn static_verdicts(verdict: &'static str) -> Arc<telemetry::Counter> {
    telemetry::global().counter(
        "xmlsec_update_static_verdicts_total",
        "Update batches classified by the compiled write-verdict pre-flight, by verdict.",
        &[("verdict", verdict)],
    )
}

struct PatchMetrics {
    patched: Arc<telemetry::Counter>,
    dropped: Arc<telemetry::Counter>,
}

fn patch_metrics() -> &'static PatchMetrics {
    static METRICS: OnceLock<PatchMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = telemetry::global();
        let result = |r: &'static str| {
            reg.counter(
                "xmlsec_view_patches_total",
                "Warm cached views handled after an update commit, by result: \
                 patched in place, or dropped (no bookkeeping / labeling error).",
                &[("result", r)],
            )
        };
        PatchMetrics { patched: result("patched"), dropped: result("dropped") }
    })
}

/// A client request: credentials plus connection endpoints.
#[derive(Debug, Clone)]
pub struct ClientRequest {
    /// User identity; `None` connects as `anonymous`.
    pub user: Option<(String, String)>,
    /// Numeric address of the connecting host.
    pub ip: String,
    /// Symbolic name of the connecting host.
    pub sym: String,
    /// Requested document URI.
    pub uri: String,
}

/// Result of a secure query: the matching fragments, serialized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryResponse {
    /// Serialized fragments (elements/text) or attribute values.
    pub matches: Vec<String>,
    /// Whether the underlying view came from the cache.
    pub from_cached_view: bool,
}

/// The server's answer: the view and its loosened DTD.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerResponse {
    /// The view XML text.
    pub xml: String,
    /// The loosened DTD, when the document declares one.
    pub loosened_dtd: Option<String>,
    /// Whether the response came from the view cache.
    pub cached: bool,
    /// Strong entity tag over the view's cache key and bytes (unquoted
    /// token; the HTTP layer adds the quotes).
    pub etag: String,
}

/// Outcome of a conditional request ([`SecureServer::handle_conditional`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConditionalOutcome {
    /// The client's `If-None-Match` matched the current view: nothing was
    /// rendered, the client's copy is still authoritative.
    NotModified {
        /// The (unquoted) entity tag the match was made against.
        etag: String,
    },
    /// A full response.
    Full(ServerResponse),
}

/// What the request prologue established before any pipeline stage ran:
/// the authenticated requester, the content-addressed cache key, and —
/// when the cache already held the view — the finished outcome.
struct RequestProbe {
    requester: Requester,
    requester_str: String,
    key: ViewKey,
    hit: Option<ConditionalOutcome>,
}

/// Strong entity tag for a view: FNV-1a over the cache key and the exact
/// bytes served. Computed once when the view is rendered and stored with
/// the cached view, so hits never rehash.
fn etag_for(key: &ViewKey, xml: &str, loosened_dtd: Option<&str>) -> String {
    let dtd = loosened_dtd.unwrap_or("");
    let mut buf = Vec::with_capacity(24 + key.uri.len() + xml.len() + dtd.len());
    buf.extend_from_slice(&key.fingerprint.to_le_bytes());
    buf.extend_from_slice(&key.content.to_le_bytes());
    buf.extend_from_slice(key.uri.as_bytes());
    buf.push(0);
    buf.extend_from_slice(xml.as_bytes());
    buf.push(0);
    buf.extend_from_slice(dtd.as_bytes());
    format!("{:016x}", fnv1a64(&buf))
}

/// `true` when an `If-None-Match` header value matches `etag` (an
/// unquoted token). Accepts a comma-separated list, quoted tags, `W/`
/// weak prefixes (a weak match suffices for a GET), and `*`.
pub fn etag_matches(if_none_match: &str, etag: &str) -> bool {
    if_none_match.split(',').map(str::trim).any(|t| {
        if t == "*" {
            return true;
        }
        let t = t.strip_prefix("W/").unwrap_or(t);
        t.trim_matches('"') == etag
    })
}

/// Per-cached-view bookkeeping for the incremental update path: enough
/// to recompute the view against the post-update document without
/// rerunning the full pipeline. `prev` is the labeling of the
/// repository's parsed document from the last patch (or `None` before
/// the first), fed to [`label_document_incremental`] so only the dirty
/// subtree and its ancestor chain are relabeled.
struct PatchEntry {
    requester: Requester,
    prev: Option<Arc<Labeling>>,
}

/// The secure server.
pub struct SecureServer {
    directory: Directory,
    authorizations: AuthorizationBase,
    /// Writers (update batches) take the write side; every read-path
    /// stage holds the read side, so readers share and an update drains
    /// in-flight computes before mutating the parsed document.
    repository: RwLock<Repository>,
    /// Patch bookkeeping keyed by cache key, pruned against the live
    /// cache after every update so it cannot outgrow it.
    patch_state: Mutex<HashMap<ViewKey, PatchEntry>>,
    credentials: HashMap<String, String>,
    policy: PolicyConfig,
    limits: ResourceLimits,
    parallelism: Parallelism,
    cache: Option<ViewCache>,
    /// Cross-request label-decision memo, shared with every per-request
    /// processor. Fingerprinted keys make stale hits impossible; grant
    /// and revoke clear it anyway to reclaim the space.
    decisions: Arc<DecisionCache>,
    /// Cross-request compiled-policy cache (see [`mod@xmlsec_core::compile`]),
    /// invalidated together with `decisions` on grant/revoke.
    compiled: Arc<CompiledCache>,
    /// Whether requests consult compiled policies (default: on).
    compile: bool,
    /// Whether `POST /update` consults the compiled write-verdict table
    /// before labeling (default: on; off for the ablation bench).
    static_preflight: bool,
    /// The audit log (public so operators can inspect it).
    pub audit: AuditLog,
}

impl SecureServer {
    /// Builds a server with the paper's default policy, default resource
    /// limits, and caching on.
    pub fn new(directory: Directory, authorizations: AuthorizationBase) -> Self {
        SecureServer {
            directory,
            authorizations,
            repository: RwLock::new(Repository::new()),
            patch_state: Mutex::new(HashMap::new()),
            credentials: HashMap::new(),
            policy: PolicyConfig::paper_default(),
            limits: ResourceLimits::default(),
            parallelism: Parallelism::sequential(),
            cache: Some(ViewCache::new()),
            decisions: Arc::new(DecisionCache::new()),
            compiled: Arc::new(CompiledCache::new()),
            compile: true,
            static_preflight: true,
            audit: AuditLog::new(),
        }
    }

    /// Disables the view cache (used by the cache-ablation bench).
    pub fn without_cache(mut self) -> Self {
        self.cache = None;
        self
    }

    /// Disables the static write pre-flight on updates (used by the
    /// pre-flight ablation bench and the byte-identity differentials).
    pub fn without_static_preflight(mut self) -> Self {
        self.static_preflight = false;
        self
    }

    /// Bounds the view cache to `capacity` entries (oldest-first
    /// eviction past that).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache = Some(ViewCache::with_capacity(capacity));
        self
    }

    /// Sets the per-server policy (one policy per document holds — the
    /// server applies this to all the documents it stores).
    pub fn with_policy(mut self, policy: PolicyConfig) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the resource limits applied to parsing and path evaluation
    /// for every request.
    pub fn with_limits(mut self, limits: ResourceLimits) -> Self {
        self.limits = limits;
        self
    }

    /// The server's configured resource limits.
    pub fn limits(&self) -> ResourceLimits {
        self.limits
    }

    /// Sets the per-request compute-view parallelism. Extra threads are
    /// leased from the process-wide core budget, so concurrent requests
    /// on the HTTP worker pool degrade gracefully to sequential instead
    /// of oversubscribing the machine.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The configured compute-view parallelism.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// The shared label-decision cache (for stats and tests).
    pub fn decision_cache(&self) -> &DecisionCache {
        &self.decisions
    }

    /// Turns policy compilation on or off (on by default; see
    /// [`mod@xmlsec_core::compile`]).
    pub fn with_compile(mut self, on: bool) -> Self {
        self.compile = on;
        self
    }

    /// The shared compiled-policy cache (for stats and tests).
    pub fn compiled_cache(&self) -> &CompiledCache {
        &self.compiled
    }

    /// Registers a user with a shared secret (the paper assumes local
    /// identities "established and authenticated by the server").
    pub fn register_credentials(&mut self, user: &str, secret: &str) {
        self.credentials.insert(user.to_string(), secret.to_string());
    }

    /// Mutable access to the repository for setup.
    pub fn repository_mut(&mut self) -> &mut Repository {
        self.repository.get_mut().unwrap_or_else(|e| e.into_inner())
    }

    /// Read access to the repository (a shared read guard; concurrent
    /// readers coexist, an in-flight update briefly blocks).
    pub fn repository(&self) -> RwLockReadGuard<'_, Repository> {
        self.read_repo()
    }

    fn read_repo(&self) -> RwLockReadGuard<'_, Repository> {
        self.repository.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_repo(&self) -> RwLockWriteGuard<'_, Repository> {
        self.repository.write().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_patch_state(&self) -> std::sync::MutexGuard<'_, HashMap<ViewKey, PatchEntry>> {
        self.patch_state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Drops patch bookkeeping whose cache entry is gone (evicted,
    /// invalidated, or never patched), bounding the map by cache size.
    fn prune_patch_state(&self) {
        let mut state = self.lock_patch_state();
        match &self.cache {
            Some(cache) => state.retain(|k, _| cache.contains_key(k)),
            None => state.clear(),
        }
    }

    /// Read access to the directory.
    pub fn directory(&self) -> &Directory {
        &self.directory
    }

    /// Drops cached views affected by a policy change on `uri`. When
    /// `uri` names a DTD, the sweep resolves to every document that is
    /// an instance of it (a schema-level authorization never matches a
    /// cache key directly — keys are document URIs).
    ///
    /// This is space hygiene, not a correctness requirement: the cache
    /// key fingerprints the applicable authorization sets, so a policy
    /// change moves the key for every requester it affects.
    fn invalidate_for_object_uri(&self, uri: &str) {
        if let Some(c) = &self.cache {
            c.invalidate_uri(uri);
            for doc in self.read_repo().documents_with_dtd(uri) {
                c.invalidate_uri(&doc);
            }
        }
        self.prune_patch_state();
    }

    /// Adds an authorization at runtime, invalidating affected views —
    /// the named document's, or every conforming instance's when the
    /// authorization is schema-level. Unrelated documents keep their
    /// cached views. Runs the policy pre-flight analyzer over the new
    /// base and returns its findings (the change itself always lands;
    /// findings are advisory).
    pub fn grant(&mut self, auth: Authorization) -> Vec<Finding> {
        self.invalidate_for_object_uri(&auth.object.uri);
        self.decisions.clear();
        self.compiled.clear();
        let uri = auth.object.uri.clone();
        self.authorizations.add(auth);
        self.policy_preflight("grant", &uri)
    }

    /// Revokes an authorization (exact match), invalidating affected
    /// views. Returns how many copies were removed. When something was
    /// removed, the policy pre-flight analyzer runs over the remaining
    /// base (its findings go to the audit log and `/metrics`).
    pub fn revoke(&mut self, auth: &Authorization) -> usize {
        let removed = self.authorizations.remove(auth);
        if removed > 0 {
            self.invalidate_for_object_uri(&auth.object.uri);
            self.decisions.clear();
            self.compiled.clear();
            self.policy_preflight("revoke", &auth.object.uri);
        }
        removed
    }

    /// The grant/revoke pre-flight: statically analyzes the
    /// authorizations in the changed object's scope (its document, its
    /// DTD, and every other instance of that DTD), bumps
    /// `xmlsec_policy_findings_total{severity,kind}` for each finding,
    /// and records the change in the audit log. Findings never block the
    /// change — operators see them through the returned list, the audit
    /// trail, and `/metrics`.
    fn policy_preflight(&self, action: &str, object_uri: &str) -> Vec<Finding> {
        let repo = self.read_repo();
        // Resolve the schema scope of the changed object.
        let dtd_uri = if repo.dtd(object_uri).is_some() {
            Some(object_uri.to_string())
        } else {
            repo.document(object_uri).and_then(|d| d.dtd_uri.clone())
        };
        let mut scope: std::collections::BTreeSet<String> =
            std::iter::once(object_uri.to_string()).collect();
        if let Some(du) = &dtd_uri {
            scope.insert(du.clone());
            scope.extend(repo.documents_with_dtd(du));
        }
        let auths: Vec<Authorization> =
            scope.iter().flat_map(|u| self.authorizations.for_uri(u)).cloned().collect();

        let mut findings = xmlsec_authz::lint_policy(&auths, &self.directory);
        if let Some(du) = &dtd_uri {
            if let Some(dtd) = repo.dtd(du).and_then(|t| parse_dtd(t).ok()) {
                if let Some(root) = dtd.root_candidates().first().cloned() {
                    findings.extend(xmlsec_core::coverage_findings(&dtd, root, &auths));
                    let subjects = xmlsec_core::closure_subjects(&auths, &self.directory);
                    let report = xmlsec_core::analyze_policy(
                        &dtd,
                        root,
                        du,
                        &auths,
                        &self.directory,
                        self.policy,
                        &subjects,
                    );
                    findings.extend(report.findings);
                    let writes = xmlsec_core::analyze_policy_writes(
                        &dtd,
                        root,
                        du,
                        &auths,
                        &self.directory,
                        self.policy,
                        &subjects,
                    );
                    findings.extend(writes.findings);
                }
            }
        }
        findings.sort_by(|a, b| a.severity.cmp(&b.severity).then_with(|| a.kind.cmp(&b.kind)));
        for f in &findings {
            telemetry::global()
                .counter(
                    "xmlsec_policy_findings_total",
                    "Findings from the grant/revoke policy pre-flight, by severity and kind.",
                    &[("severity", f.severity.as_str()), ("kind", &f.kind)],
                )
                .inc();
        }
        let errors = findings.iter().filter(|f| f.severity == Severity::Error).count();
        self.audit.record(
            "server",
            object_uri,
            AuditOutcome::PolicyChanged {
                action: action.to_string(),
                findings: findings.len(),
                errors,
            },
        );
        findings
    }

    /// The memoized DTD-validity of `uri`'s current parsed revision,
    /// validating (once) when unknown. The static write pre-flight only
    /// trusts non-blanket batch verdicts on valid documents.
    fn schema_valid_memo(&self, repo: &mut Repository, uri: &str, dtd: &xmlsec_dtd::Dtd) -> bool {
        let Some(parsed) = repo.parsed_document(uri) else { return false };
        if let Some(v) = parsed.schema_valid() {
            return v;
        }
        let v = xmlsec_dtd::validate(dtd, parsed.doc()).is_empty();
        if let Some(p) = repo.parsed_document_mut(uri) {
            p.set_schema_valid(v);
        }
        v
    }

    /// Cache statistics `(hits, misses)`; zeros when caching is off.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.as_ref().map(ViewCache::stats).unwrap_or((0, 0))
    }

    /// Number of live cached views; zero when caching is off.
    pub fn cache_len(&self) -> usize {
        self.cache.as_ref().map(ViewCache::len).unwrap_or(0)
    }

    /// Stale views swept from this server's cache after a content
    /// change; zero when caching is off.
    pub fn cache_stale_rejected(&self) -> u64 {
        self.cache.as_ref().map(ViewCache::stale_rejected).unwrap_or(0)
    }

    fn authenticate(&self, req: &ClientRequest) -> Result<String, ServerError> {
        match &req.user {
            None => Ok("anonymous".to_string()),
            Some((user, secret)) => {
                // Constant-time-ish comparison; secrets are a stand-in for
                // the paper's server-local authentication, not production
                // credential storage.
                match self.credentials.get(user) {
                    Some(expected)
                        if expected.len() == secret.len()
                            && expected
                                .bytes()
                                .zip(secret.bytes())
                                .fold(0u8, |acc, (a, b)| acc | (a ^ b))
                                == 0 =>
                    {
                        Ok(user.clone())
                    }
                    _ => Err(ServerError::AuthenticationFailed),
                }
            }
        }
    }

    /// Handles one request end to end.
    pub fn handle(&self, req: &ClientRequest) -> Result<ServerResponse, ServerError> {
        self.handle_conditional(req, None).map(|o| match o {
            ConditionalOutcome::Full(resp) => resp,
            // Unreachable: without an If-None-Match nothing can match.
            ConditionalOutcome::NotModified { etag } => {
                ServerResponse { xml: String::new(), loosened_dtd: None, cached: true, etag }
            }
        })
    }

    /// Handles one request end to end, honouring an `If-None-Match`
    /// header value. When the client's entity tag still names the
    /// current view, returns [`ConditionalOutcome::NotModified`] —
    /// from a warm cache this touches no document bytes and runs no
    /// pipeline stage at all.
    pub fn handle_conditional(
        &self,
        req: &ClientRequest,
        if_none_match: Option<&str>,
    ) -> Result<ConditionalOutcome, ServerError> {
        self.handle_cancellable(req, if_none_match, None)
    }

    /// [`SecureServer::handle_conditional`] with a request-scoped
    /// cancellation token. The token is threaded through every pipeline
    /// stage (parse, label, prune, serialize) and checked cooperatively
    /// inside the hot loops; when it trips, the request unwinds with
    /// [`ServerError::Cancelled`], partial work is discarded, and any
    /// leased cores are returned. A `None` token never cancels.
    pub fn handle_cancellable(
        &self,
        req: &ClientRequest,
        if_none_match: Option<&str>,
        cancel: Option<&CancelToken>,
    ) -> Result<ConditionalOutcome, ServerError> {
        let m = server_metrics();
        let result = m.duration.time(|| {
            let _span = telemetry::trace::span("server.handle");
            self.handle_inner(req, if_none_match, cancel)
        });
        m.for_outcome(&result).inc();
        result
    }

    /// Degraded-mode lookup for overload shedding: answers from already
    /// computed state only — a cache hit or an `If-None-Match`
    /// revalidation — and returns `Ok(None)` instead of running any
    /// pipeline stage when the view would have to be computed. The HTTP
    /// front end uses this while the admission controller is shedding,
    /// so clients holding a current view keep revalidating (and warm
    /// views keep serving) even when compute is refused.
    pub fn handle_cache_only(
        &self,
        req: &ClientRequest,
        if_none_match: Option<&str>,
    ) -> Result<Option<ConditionalOutcome>, ServerError> {
        let m = server_metrics();
        match self.probe(req, if_none_match) {
            Ok(RequestProbe { hit: Some(outcome), .. }) => {
                let result = Ok(outcome);
                m.for_outcome(&result).inc();
                result.map(Some)
            }
            Ok(_) => Ok(None),
            Err(e) => {
                m.for_outcome(&Err(e.clone())).inc();
                Err(e)
            }
        }
    }

    fn handle_inner(
        &self,
        req: &ClientRequest,
        if_none_match: Option<&str>,
        cancel: Option<&CancelToken>,
    ) -> Result<ConditionalOutcome, ServerError> {
        let probe = self.probe(req, if_none_match)?;
        if let Some(outcome) = probe.hit {
            return Ok(outcome);
        }
        self.compute_view_for(req, if_none_match, cancel, probe)
    }

    /// The request prologue shared by the normal and cache-only paths:
    /// authenticate, resolve the document, build the content-addressed
    /// cache key, and probe the cache (serving a 304 when the client's
    /// tag matches). Cheap by construction — no document bytes are
    /// parsed or hashed here.
    fn probe(
        &self,
        req: &ClientRequest,
        if_none_match: Option<&str>,
    ) -> Result<RequestProbe, ServerError> {
        let user = match self.authenticate(req) {
            Ok(u) => u,
            Err(e) => {
                self.audit.record(
                    &format!(
                        "{}@{}({})",
                        req.user.as_ref().map(|(u, _)| u.as_str()).unwrap_or("?"),
                        req.sym,
                        req.ip
                    ),
                    &req.uri,
                    AuditOutcome::AuthenticationFailed,
                );
                return Err(e);
            }
        };
        let requester = Requester::new(&user, &req.ip, &req.sym)
            .map_err(|e| ServerError::BadRequest(e.to_string()))?;
        let requester_str = requester.to_string();

        let repo = self.read_repo();
        let Some(stored) = repo.document(&req.uri) else {
            self.audit.record(&requester_str, &req.uri, AuditOutcome::NotFound);
            return Err(ServerError::NotFound(req.uri.clone()));
        };

        // Applicable authorizations, for the content-based cache
        // fingerprint.
        let instance = self.applicable_auths(&req.uri, &requester);
        let schema = stored
            .dtd_uri
            .as_deref()
            .map(|u| self.applicable_auths(u, &requester))
            .unwrap_or_default();
        let key = ViewKey {
            uri: req.uri.clone(),
            fingerprint: fingerprint(&instance, &schema, policy_tag(self.policy)),
            // Registration-time hashes combined — no document bytes are
            // rehashed on the request path.
            content: repo.content_hash(&req.uri).unwrap_or(0),
        };
        if let Some(cache) = &self.cache {
            if let Some(hit) = cache.get(&key) {
                self.audit.record(
                    &requester_str,
                    &req.uri,
                    AuditOutcome::Served { granted_nodes: 0, total_nodes: 0, cached: true },
                );
                let outcome = match if_none_match {
                    Some(inm) if etag_matches(inm, &hit.etag) => {
                        ConditionalOutcome::NotModified { etag: hit.etag }
                    }
                    _ => ConditionalOutcome::Full(ServerResponse {
                        xml: hit.xml,
                        loosened_dtd: hit.loosened_dtd,
                        cached: true,
                        etag: hit.etag,
                    }),
                };
                return Ok(RequestProbe { requester, requester_str, key, hit: Some(outcome) });
            }
        }
        Ok(RequestProbe { requester, requester_str, key, hit: None })
    }

    /// The full processor pipeline, run when the probe found no cached
    /// view. The cancellation token (if any) rides inside the
    /// per-request [`xmlsec_core::ProcessorOptions`].
    fn compute_view_for(
        &self,
        req: &ClientRequest,
        if_none_match: Option<&str>,
        cancel: Option<&CancelToken>,
        probe: RequestProbe,
    ) -> Result<ConditionalOutcome, ServerError> {
        let RequestProbe { requester, requester_str, key, .. } = probe;
        let repo = self.read_repo();
        let Some(stored) = repo.document(&req.uri) else {
            return Err(ServerError::NotFound(req.uri.clone()));
        };
        let processor = SecurityProcessor {
            directory: self.directory.clone(),
            authorizations: self.authorizations.clone(),
            options: xmlsec_core::ProcessorOptions {
                policy: self.policy,
                limits: self.limits,
                parallelism: self.parallelism,
                compile: self.compile,
                cancel: cancel.cloned().unwrap_or_default(),
                ..Default::default()
            },
            decisions: Some(Arc::clone(&self.decisions)),
            compiled: self.compile.then(|| Arc::clone(&self.compiled)),
        };
        let source = DocumentSource {
            xml: &stored.xml,
            dtd: stored.dtd_uri.as_deref().and_then(|u| repo.dtd(u)),
            dtd_uri: stored.dtd_uri.as_deref(),
        };
        let request = AccessRequest { requester: requester.clone(), uri: req.uri.clone() };
        let out = processor.process(&request, &source).map_err(|e| {
            self.audit.record(
                &requester_str,
                &req.uri,
                AuditOutcome::ProcessingError(e.to_string()),
            );
            if let xmlsec_core::ProcessError::Cancelled(r) = e {
                ServerError::Cancelled(r)
            } else if e.is_resource_limit() {
                ServerError::LimitExceeded(e.to_string())
            } else {
                ServerError::Processing(e.to_string())
            }
        })?;

        let etag = etag_for(&key, &out.xml, out.loosened_dtd.as_deref());
        if let Some(cache) = &self.cache {
            cache.put(
                key.clone(),
                CachedView {
                    xml: out.xml.clone(),
                    loosened_dtd: out.loosened_dtd.clone(),
                    etag: etag.clone(),
                },
            );
            // Remember who this view was computed for so a later update
            // can patch it in place instead of dropping it.
            self.lock_patch_state().insert(key, PatchEntry { requester, prev: None });
        }
        self.audit.record(
            &requester_str,
            &req.uri,
            AuditOutcome::Served {
                granted_nodes: out.stats.granted_nodes,
                total_nodes: out.stats.labeled_nodes,
                cached: false,
            },
        );
        // The client may hold the current view even when our cache does
        // not (cold start, eviction): a fresh render that matches the
        // client's tag still revalidates.
        if let Some(inm) = if_none_match {
            if etag_matches(inm, &etag) {
                return Ok(ConditionalOutcome::NotModified { etag });
            }
        }
        Ok(ConditionalOutcome::Full(ServerResponse {
            xml: out.xml,
            loosened_dtd: out.loosened_dtd,
            cached: false,
            etag,
        }))
    }

    /// Answers a query against the requester's **view** of a document
    /// (the paper's §8 "requests in form of generic queries"): the query
    /// is evaluated on the computed view, so it can never select — or
    /// leak through conditions on — content the requester cannot read.
    pub fn query(&self, req: &ClientRequest, path: &str) -> Result<QueryResponse, ServerError> {
        self.query_cancellable(req, path, None)
    }

    /// [`SecureServer::query`] with a request-scoped cancellation token:
    /// the underlying view computation, the re-parse of the view, and
    /// every budget draw of the path evaluation all observe the token.
    pub fn query_cancellable(
        &self,
        req: &ClientRequest,
        path: &str,
        cancel: Option<&CancelToken>,
    ) -> Result<QueryResponse, ServerError> {
        let parsed =
            xmlsec_xpath::parse_path(path).map_err(|e| ServerError::BadQuery(e.to_string()))?;
        let resp = match self.handle_cancellable(req, None, cancel)? {
            ConditionalOutcome::Full(resp) => resp,
            // Unreachable: without an If-None-Match nothing can match.
            ConditionalOutcome::NotModified { etag } => {
                ServerResponse { xml: String::new(), loosened_dtd: None, cached: true, etag }
            }
        };
        let view = xmlsec_xml::parse_cancellable(
            &resp.xml,
            xmlsec_xml::ParseOptions::default(),
            &self.limits.xml,
            cancel,
        )
        .map_err(|e| match e.kind {
            xmlsec_xml::XmlErrorKind::Cancelled(r) => ServerError::Cancelled(r),
            _ => ServerError::Processing(e.to_string()),
        })?;
        // The query path is requester-supplied: budget its evaluation so a
        // hostile expression cannot pin the worker; the token rides in the
        // shared budget, so every draw is also a cancellation checkpoint.
        let pool = match cancel {
            Some(t) => xmlsec_xpath::SharedBudget::with_cancel(
                self.limits.xpath.max_node_visits,
                t.clone(),
            ),
            None => xmlsec_xpath::SharedBudget::new(self.limits.xpath.max_node_visits),
        };
        let hits = xmlsec_xpath::select_shared(&view, &parsed, &self.limits.xpath, &pool).map_err(
            |e| match e {
                xmlsec_xpath::EvalError::Cancelled(r) => ServerError::Cancelled(r),
                other => ServerError::LimitExceeded(other.to_string()),
            },
        )?;
        let matches = hits
            .iter()
            .map(|&n| {
                if view.is_attribute(n) {
                    view.attr_value(n).unwrap_or_default().to_string()
                } else {
                    xmlsec_xml::serialize_node(&view, n)
                }
            })
            .collect();
        Ok(QueryResponse { matches, from_cached_view: resp.cached })
    }

    /// Applies update operations on behalf of a requester (the paper's §8
    /// "support for write and update operations"), gated by the
    /// requester's **write** labeling. The updated document must remain
    /// valid against its DTD.
    ///
    /// The commit path is **incremental**: the repository keeps the
    /// parsed, normalized document alongside the bytes, so steady-state
    /// updates never reparse; only the dirty subtrees and their ancestor
    /// chains are rehashed; and every warm cached view of the document is
    /// **patched in place** (incremental relabel, re-prune, new ETag)
    /// instead of being invalidated. Returns how many nodes the batch
    /// touched.
    pub fn update(&self, req: &ClientRequest, ops: &[UpdateOp]) -> Result<usize, ServerError> {
        self.update_cancellable(req, ops, None)
    }

    /// [`SecureServer::update`] with a request-scoped cancellation
    /// token. The token is polled between operations and inside the
    /// write-labeling passes; when it trips, the batch unwinds with
    /// [`ServerError::Cancelled`] and the stored document is untouched.
    pub fn update_cancellable(
        &self,
        req: &ClientRequest,
        ops: &[UpdateOp],
        cancel: Option<&CancelToken>,
    ) -> Result<usize, ServerError> {
        let user = self.authenticate(req)?;
        let requester = Requester::new(&user, &req.ip, &req.sym)
            .map_err(|e| ServerError::BadRequest(e.to_string()))?;

        // Writers serialize here; in-flight read computes drain first.
        let mut repo = self.write_repo();
        let dtd_uri = match repo.document(&req.uri) {
            Some(s) => s.dtd_uri.clone(),
            None => return Err(ServerError::NotFound(req.uri.clone())),
        };
        let dtd_parsed = dtd_uri
            .as_deref()
            .and_then(|u| repo.dtd(u))
            .map(xmlsec_dtd::parse_dtd)
            .transpose()
            .map_err(|e| ServerError::Processing(e.to_string()))?;

        // Parse once per document lifetime: the repository keeps the
        // parsed, normalized form, so only the first update (or the
        // first after a byte-level `put_document`) pays a parse.
        if repo.parsed_document(&req.uri).is_none() {
            let xml_text = repo.document(&req.uri).map(|s| s.xml.clone()).unwrap_or_default();
            let mut doc = xmlsec_xml::parse_cancellable(
                &xml_text,
                xmlsec_xml::ParseOptions::default(),
                &self.limits.xml,
                cancel,
            )
            .map_err(|e| match e.kind {
                xmlsec_xml::XmlErrorKind::Cancelled(r) => ServerError::Cancelled(r),
                _ => ServerError::Processing(e.to_string()),
            })?;
            // Normalize defaulted attributes exactly as the read path
            // does, so write authorizations conditioned on them match.
            if let Some(d) = &dtd_parsed {
                xmlsec_dtd::normalize(d, &mut doc);
            }
            repo.store_parsed(&req.uri, ParsedDocument::new(doc));
        }
        let wxml = self.authorizations.applicable_for_action(
            &req.uri,
            &requester,
            &self.directory,
            xmlsec_authz::Action::Write,
        );
        let wdtd = dtd_uri
            .as_deref()
            .map(|u| {
                self.authorizations.applicable_for_action(
                    u,
                    &requester,
                    &self.directory,
                    xmlsec_authz::Action::Write,
                )
            })
            .unwrap_or_default();
        // Static pre-flight: classify the batch against the compiled
        // write-verdict table. Guaranteed-deny batches bounce here in
        // O(ops) — before the working copy of the document is even
        // cloned, with no labeling and no fragment parsing;
        // guaranteed-allow batches skip the per-op write-labeling
        // entirely (the apply code and every later stage — normalize,
        // validate, commit, patch — are shared, keeping outcomes
        // byte-identical).
        let mut preauthorized = false;
        if self.static_preflight {
            let root = repo
                .parsed_document(&req.uri)
                .and_then(|p| p.doc().element_name(p.doc().root()))
                .map(str::to_string);
            if let (Some(dtd), Some(root)) = (&dtd_parsed, root) {
                let verdict = self
                    .compiled
                    .get_or_compile(dtd, &root, &wxml, &wdtd, &self.directory, self.policy)
                    .ok()
                    .map(|cp| {
                        if cp.writes.blanket_allow {
                            // Holds on any tree; no validity gate needed.
                            xmlsec_core::BatchVerdict::Allow
                        } else if self.schema_valid_memo(&mut repo, &req.uri, dtd) {
                            xmlsec_core::classify_batch(dtd, &cp.writes, ops)
                        } else {
                            xmlsec_core::BatchVerdict::Dynamic
                        }
                    })
                    .unwrap_or(xmlsec_core::BatchVerdict::Dynamic);
                static_verdicts(verdict.code()).inc();
                match verdict {
                    xmlsec_core::BatchVerdict::Deny { op, reason } => {
                        // Dynamic denials are not audited either: the
                        // trail stays identical with the pre-flight off.
                        return Err(ServerError::UpdateDeniedStatic { op, reason });
                    }
                    xmlsec_core::BatchVerdict::Allow => preauthorized = true,
                    xmlsec_core::BatchVerdict::Dynamic => {}
                }
            }
        }

        let mut doc = match repo.parsed_document(&req.uri) {
            Some(p) => p.doc().clone(),
            None => return Err(ServerError::Processing("parsed form missing".into())),
        };

        let mut opts = EngineOptions::sequential(self.limits.xpath);
        opts.parallelism = self.parallelism;
        if let Some(t) = cancel {
            opts = opts.with_cancel(t);
        }
        let ctx = WriteContext {
            axml: &wxml,
            adtd: &wdtd,
            dir: &self.directory,
            policy: self.policy,
            opts,
        };
        let applied = if preauthorized {
            xmlsec_core::apply_updates_preauthorized(&mut doc, ops, cancel)
        } else {
            apply_updates(&mut doc, ops, &ctx)
        };
        let outcome = applied.map_err(|e| match e {
            UpdateError::Cancelled(r) => ServerError::Cancelled(r),
            UpdateError::Engine(err) => ServerError::LimitExceeded(err.to_string()),
            other => ServerError::UpdateDenied(other.to_string()),
        })?;

        if let Some(dtd) = &dtd_parsed {
            // Materialize DTD defaults on freshly inserted elements (the
            // base document is already normalized, so this only touches
            // nodes inside the dirty subtrees) and keep the stored
            // document valid.
            xmlsec_dtd::normalize(dtd, &mut doc);
            let errs = xmlsec_dtd::validate(dtd, &doc);
            if !errs.is_empty() {
                return Err(ServerError::UpdateDenied(format!(
                    "update would invalidate the document against its DTD: {}",
                    errs[0]
                )));
            }
        }

        let touched = outcome.touched;
        if repo.commit_update(&req.uri, doc, &outcome.dirty).is_none() {
            return Err(ServerError::Processing("commit failed: document vanished".into()));
        }
        if dtd_parsed.is_some() {
            // Post-validation passed above, and commit_update installed
            // exactly the validated DOM: memoize validity for the next
            // pre-flight instead of revalidating.
            if let Some(p) = repo.parsed_document_mut(&req.uri) {
                p.set_schema_valid(true);
            }
        }

        // Patch every warm cached view of this document in place; views
        // we cannot patch (no bookkeeping, labeling error) are dropped —
        // content-addressed keys make the old entries unreachable either
        // way, so this is never a correctness hinge.
        if self.cache.is_some() {
            self.patch_views(&repo, &req.uri, dtd_parsed.as_ref(), cancel);
        }
        drop(repo);
        self.prune_patch_state();

        self.audit.record(
            &requester.to_string(),
            &req.uri,
            AuditOutcome::Updated { ops: ops.len(), touched },
        );
        Ok(touched)
    }

    /// Rewrites each warm cached view of `uri` against the post-commit
    /// document: incremental relabel from the entry's previous labeling,
    /// re-prune, re-serialize, new content-addressed key and ETag — the
    /// entry keeps its position in the eviction order. Called with the
    /// repository write guard held, so no reader observes a half-patched
    /// cache for the new content.
    fn patch_views(
        &self,
        repo: &Repository,
        uri: &str,
        dtd: Option<&xmlsec_dtd::Dtd>,
        cancel: Option<&CancelToken>,
    ) {
        let Some(cache) = &self.cache else { return };
        let new_content = repo.content_hash(uri).unwrap_or(0);
        let old_keys: Vec<ViewKey> =
            cache.keys_for_uri(uri).into_iter().filter(|k| k.content != new_content).collect();
        if old_keys.is_empty() {
            return;
        }
        let Some(parsed) = repo.parsed_document(uri) else {
            for k in &old_keys {
                cache.remove(k);
            }
            return;
        };
        let doc = parsed.doc();
        let dtd_uri = repo.document(uri).and_then(|s| s.dtd_uri.clone());
        // Loosening is requester-independent: once per update, shared by
        // every patched entry.
        let loosened_text = dtd.map(|d| xmlsec_dtd::serialize_dtd(&xmlsec_dtd::loosen(d)));

        let m = patch_metrics();
        let mut state = self.lock_patch_state();
        for old_key in old_keys {
            let patched = state.remove(&old_key).and_then(|entry| {
                self.patch_one(
                    doc,
                    uri,
                    dtd_uri.as_deref(),
                    &old_key,
                    entry,
                    new_content,
                    loosened_text.as_deref(),
                    cancel,
                )
            });
            match patched {
                Some((new_key, view, new_entry)) => {
                    if cache.replace(&old_key, new_key.clone(), view) {
                        state.insert(new_key, new_entry);
                        m.patched.inc();
                    }
                }
                None => {
                    cache.remove(&old_key);
                    m.dropped.inc();
                }
            }
        }
    }

    /// Recomputes one cached view against the updated document. Returns
    /// `None` when the view cannot be patched (labeling failed or was
    /// cancelled) — the caller drops the stale entry instead.
    #[allow(clippy::too_many_arguments)]
    fn patch_one(
        &self,
        doc: &xmlsec_xml::Document,
        uri: &str,
        dtd_uri: Option<&str>,
        old_key: &ViewKey,
        entry: PatchEntry,
        new_content: u64,
        loosened_text: Option<&str>,
        cancel: Option<&CancelToken>,
    ) -> Option<(ViewKey, CachedView, PatchEntry)> {
        let PatchEntry { requester, prev } = entry;
        let axml = self.authorizations.applicable_for_action(
            uri,
            &requester,
            &self.directory,
            xmlsec_authz::Action::Read,
        );
        let adtd = dtd_uri
            .map(|u| {
                self.authorizations.applicable_for_action(
                    u,
                    &requester,
                    &self.directory,
                    xmlsec_authz::Action::Read,
                )
            })
            .unwrap_or_default();
        let mut opts = EngineOptions::sequential(self.limits.xpath);
        opts.parallelism = self.parallelism;
        if let Some(t) = cancel {
            opts = opts.with_cancel(t);
        }
        let labeling = label_document_incremental(
            doc,
            &axml,
            &adtd,
            &self.directory,
            self.policy,
            &opts,
            prev.as_deref(),
        )
        .ok()?;
        let mut view = doc.clone();
        prune_document(&mut view, &labeling, self.policy);
        let xml = xmlsec_xml::serialize(&view, &xmlsec_xml::SerializeOptions::canonical());
        let new_key =
            ViewKey { uri: uri.to_string(), fingerprint: old_key.fingerprint, content: new_content };
        let etag = etag_for(&new_key, &xml, loosened_text);
        Some((
            new_key,
            CachedView { xml, loosened_dtd: loosened_text.map(str::to_string), etag },
            PatchEntry { requester, prev: Some(Arc::new(labeling)) },
        ))
    }

    fn applicable_auths(&self, uri: &str, requester: &Requester) -> Vec<&Authorization> {
        self.authorizations
            .for_uri(uri)
            .iter()
            .filter(|a| requester.is_covered_by(&a.subject, &self.directory))
            .collect()
    }
}

/// Stable small tag distinguishing policies in cache keys.
fn policy_tag(p: PolicyConfig) -> u8 {
    let c = match p.conflict {
        ConflictResolution::MostSpecificThenDenials => 0u8,
        ConflictResolution::MostSpecificThenPermissions => 1,
        ConflictResolution::DenialsTakePrecedence => 2,
        ConflictResolution::PermissionsTakePrecedence => 3,
        ConflictResolution::NothingTakesPrecedence => 4,
        ConflictResolution::MajoritySign => 5,
    };
    let o = match p.completeness {
        CompletenessPolicy::Closed => 0u8,
        CompletenessPolicy::Open => 8,
    };
    c | o
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlsec_authz::{AuthType, ObjectSpec, Sign};
    use xmlsec_subjects::Subject;

    fn server() -> SecureServer {
        let mut dir = Directory::new();
        dir.add_user("Tom").unwrap();
        dir.add_user("Sam").unwrap();
        dir.add_group("Public").unwrap();
        dir.add_group("Staff").unwrap();
        dir.add_user("anonymous").unwrap();
        dir.add_member("Tom", "Public").unwrap();
        dir.add_member("Sam", "Public").unwrap();
        dir.add_member("Sam", "Staff").unwrap();
        dir.add_member("anonymous", "Public").unwrap();

        let mut base = AuthorizationBase::new();
        base.add(Authorization::new(
            Subject::new("Public", "*", "*").unwrap(),
            ObjectSpec::parse("lab.xml:/lab/news").unwrap(),
            Sign::Plus,
            AuthType::Recursive,
        ));
        base.add(Authorization::new(
            Subject::new("Staff", "*", "*").unwrap(),
            ObjectSpec::parse("lab.xml:/lab").unwrap(),
            Sign::Plus,
            AuthType::Recursive,
        ));

        let mut s = SecureServer::new(dir, base);
        s.register_credentials("Tom", "tom-secret");
        s.register_credentials("Sam", "sam-secret");
        s.repository_mut().put_document(
            "lab.xml",
            "<lab><news>hello</news><internal>budget</internal></lab>",
            None,
        );
        s
    }

    fn req(user: Option<(&str, &str)>, uri: &str) -> ClientRequest {
        ClientRequest {
            user: user.map(|(u, s)| (u.to_string(), s.to_string())),
            ip: "150.100.30.8".into(),
            sym: "tweety.lab.com".into(),
            uri: uri.into(),
        }
    }

    #[test]
    fn public_member_sees_only_news() {
        let s = server();
        let r = s.handle(&req(Some(("Tom", "tom-secret")), "lab.xml")).unwrap();
        assert_eq!(r.xml, "<lab><news>hello</news></lab>");
        assert!(!r.cached);
    }

    #[test]
    fn staff_member_sees_everything() {
        let s = server();
        let r = s.handle(&req(Some(("Sam", "sam-secret")), "lab.xml")).unwrap();
        assert_eq!(r.xml, "<lab><news>hello</news><internal>budget</internal></lab>");
    }

    #[test]
    fn anonymous_is_public() {
        let s = server();
        let r = s.handle(&req(None, "lab.xml")).unwrap();
        assert_eq!(r.xml, "<lab><news>hello</news></lab>");
    }

    #[test]
    fn wrong_secret_rejected_and_audited() {
        let s = server();
        let e = s.handle(&req(Some(("Tom", "wrong")), "lab.xml")).unwrap_err();
        assert_eq!(e, ServerError::AuthenticationFailed);
        assert!(matches!(s.audit.records()[0].outcome, AuditOutcome::AuthenticationFailed));
    }

    #[test]
    fn unknown_document_not_found() {
        let s = server();
        assert!(matches!(s.handle(&req(None, "missing.xml")), Err(ServerError::NotFound(_))));
    }

    #[test]
    fn cache_shares_views_across_equivalent_requesters() {
        let s = server();
        // Tom and anonymous have the same applicable set (Public grant).
        let r1 = s.handle(&req(Some(("Tom", "tom-secret")), "lab.xml")).unwrap();
        let r2 = s.handle(&req(None, "lab.xml")).unwrap();
        assert!(!r1.cached);
        assert!(r2.cached);
        assert_eq!(r1.xml, r2.xml);
        assert_eq!(r1.etag, r2.etag, "a cached view carries the same strong tag");
        // Sam's applicable set differs — no cross-contamination.
        let r3 = s.handle(&req(Some(("Sam", "sam-secret")), "lab.xml")).unwrap();
        assert!(!r3.cached);
        assert_ne!(r3.xml, r1.xml);
        assert_ne!(r3.etag, r1.etag, "different views carry different tags");
        let (hits, misses) = s.cache_stats();
        assert_eq!(hits, 1);
        assert_eq!(misses, 2);
    }

    #[test]
    fn content_change_without_invalidation_misses() {
        // The tentpole: mutating stored content *without* any
        // invalidate call structurally misses the cache, because the
        // registration-time content hash is part of the key.
        let mut s = server();
        let r1 = s.handle(&req(None, "lab.xml")).unwrap();
        assert!(!r1.cached);
        assert!(s.handle(&req(None, "lab.xml")).unwrap().cached, "cache is warm");
        s.repository_mut().put_document(
            "lab.xml",
            "<lab><news>updated</news><internal>budget</internal></lab>",
            None,
        );
        let r2 = s.handle(&req(None, "lab.xml")).unwrap();
        assert!(!r2.cached, "new content hash must miss the warm cache");
        assert_eq!(r2.xml, "<lab><news>updated</news></lab>");
        assert_ne!(r2.etag, r1.etag);
        assert!(s.cache_stale_rejected() >= 1, "the dead twin is swept on the miss");
        // Restoring the original bytes restores the original identity.
        s.repository_mut().put_document(
            "lab.xml",
            "<lab><news>hello</news><internal>budget</internal></lab>",
            None,
        );
        assert_eq!(s.handle(&req(None, "lab.xml")).unwrap().etag, r1.etag);
    }

    #[test]
    fn conditional_request_revalidates_without_rendering() {
        let s = server();
        let r1 = s.handle(&req(None, "lab.xml")).unwrap();
        // Matching tag → 304, from the cache.
        let quoted = format!("\"{}\"", r1.etag);
        match s.handle_conditional(&req(None, "lab.xml"), Some(&quoted)).unwrap() {
            ConditionalOutcome::NotModified { etag } => assert_eq!(etag, r1.etag),
            other => panic!("expected NotModified, got {other:?}"),
        }
        // Weak and list forms match too.
        let listed = format!("\"zzz\", W/\"{}\"", r1.etag);
        assert!(matches!(
            s.handle_conditional(&req(None, "lab.xml"), Some(&listed)).unwrap(),
            ConditionalOutcome::NotModified { .. }
        ));
        // A stale tag gets the full (cached) body.
        match s.handle_conditional(&req(None, "lab.xml"), Some("\"stale\"")).unwrap() {
            ConditionalOutcome::Full(resp) => {
                assert!(resp.cached);
                assert_eq!(resp.etag, r1.etag);
            }
            other => panic!("expected Full, got {other:?}"),
        }
    }

    #[test]
    fn conditional_request_revalidates_on_a_cold_cache() {
        // Even when the server's own cache is cold, a client tag that
        // matches the freshly rendered view revalidates to 304.
        let s = server();
        let etag = s.handle(&req(None, "lab.xml")).unwrap().etag;
        let s2 = server(); // same content, cold cache
        let quoted = format!("\"{etag}\"");
        assert!(matches!(
            s2.handle_conditional(&req(None, "lab.xml"), Some(&quoted)).unwrap(),
            ConditionalOutcome::NotModified { .. }
        ));
    }

    #[test]
    fn etag_matching_grammar() {
        assert!(etag_matches("\"abc\"", "abc"));
        assert!(etag_matches("abc", "abc"), "unquoted token accepted leniently");
        assert!(etag_matches("W/\"abc\"", "abc"));
        assert!(etag_matches("\"x\", \"abc\" , \"y\"", "abc"));
        assert!(etag_matches("*", "abc"));
        assert!(!etag_matches("\"abcd\"", "abc"));
        assert!(!etag_matches("", "abc"));
    }

    #[test]
    fn cache_hits_are_visible_in_global_metrics() {
        // The cache mirrors its traffic into the global telemetry
        // registry, where /metrics and the CLI read it.
        let read = |text: &str, name: &str| -> u64 {
            text.lines()
                .find(|l| l.starts_with(name) && !l.starts_with('#'))
                .and_then(|l| l.rsplit(' ').next())
                .and_then(|v| v.parse().ok())
                .unwrap_or(0)
        };
        let before = telemetry::global().render_prometheus();
        let s = server();
        let _ = s.handle(&req(Some(("Tom", "tom-secret")), "lab.xml")).unwrap();
        let _ = s.handle(&req(None, "lab.xml")).unwrap();
        let after = telemetry::global().render_prometheus();
        assert!(
            read(&after, "xmlsec_view_cache_hits_total")
                > read(&before, "xmlsec_view_cache_hits_total"),
            "the shared-fingerprint hit must show up in the hit counter"
        );
        assert!(
            read(&after, "xmlsec_view_cache_misses_total")
                > read(&before, "xmlsec_view_cache_misses_total")
        );
    }

    #[test]
    fn policy_change_changes_cache_key() {
        // The fingerprint folds in the policy tag, so the same requester
        // under a different policy cannot be served a stale view.
        let s = server();
        let r1 = s.handle(&req(None, "lab.xml")).unwrap();
        assert!(!r1.cached);
        let r2 = s.handle(&req(None, "lab.xml")).unwrap();
        assert!(r2.cached);
        let s = s.with_policy(PolicyConfig {
            completeness: CompletenessPolicy::Open,
            ..PolicyConfig::paper_default()
        });
        let r3 = s.handle(&req(None, "lab.xml")).unwrap();
        assert!(!r3.cached, "a policy change must miss the cache");
        assert!(
            r3.xml.contains("internal"),
            "open policy exposes the unregulated element: {}",
            r3.xml
        );
    }

    #[test]
    fn fingerprint_ignores_requester_identity() {
        // Different identities, same applicable authorizations → same
        // fingerprint → shared view; an extra applicable authorization →
        // different fingerprint.
        let s = server();
        let requester = |u: &str| Requester::new(u, "150.100.30.8", "tweety.lab.com").unwrap();
        let tom_inst = s.applicable_auths("lab.xml", &requester("Tom"));
        let anon_inst = s.applicable_auths("lab.xml", &requester("anonymous"));
        let sam_inst = s.applicable_auths("lab.xml", &requester("Sam"));
        assert_eq!(
            fingerprint(&tom_inst, &[], 0),
            fingerprint(&anon_inst, &[], 0),
            "Tom and anonymous share the Public grant only"
        );
        assert_ne!(
            fingerprint(&tom_inst, &[], 0),
            fingerprint(&sam_inst, &[], 0),
            "Sam's Staff grant changes the applicable set"
        );
    }

    #[test]
    fn parallel_server_serves_identical_bytes() {
        let seq = server();
        let par = server()
            .with_parallelism(Parallelism::threads(4).with_seq_threshold(0).exact())
            .without_cache();
        let want = seq.handle(&req(Some(("Sam", "sam-secret")), "lab.xml")).unwrap();
        let got = par.handle(&req(Some(("Sam", "sam-secret")), "lab.xml")).unwrap();
        assert_eq!(got.xml, want.xml);
        assert_eq!(got.loosened_dtd, want.loosened_dtd);
        assert_eq!(got.etag, want.etag, "the tag is content-derived, not instance-derived");
        assert!(!par.decision_cache().is_empty(), "requests must warm the decision cache");
    }

    #[test]
    fn grant_and_revoke_clear_the_decision_cache() {
        let mut s = server();
        let _ = s.handle(&req(None, "lab.xml")).unwrap();
        assert!(!s.decision_cache().is_empty());
        let extra = Authorization::new(
            Subject::new("Public", "*", "*").unwrap(),
            ObjectSpec::parse("lab.xml:/lab/internal").unwrap(),
            Sign::Plus,
            AuthType::Recursive,
        );
        s.grant(extra.clone());
        assert!(s.decision_cache().is_empty(), "grant must drop memoized decisions");
        let _ = s.handle(&req(None, "lab.xml")).unwrap();
        assert!(!s.decision_cache().is_empty());
        assert_eq!(s.revoke(&extra), 1);
        assert!(s.decision_cache().is_empty(), "revoke must drop memoized decisions");
    }

    #[test]
    fn compiled_policies_are_cached_and_invalidated_with_decisions() {
        let setup = |s: &mut SecureServer| {
            s.repository_mut().put_dtd(
                "lab.dtd",
                "<!ELEMENT lab (news,internal)><!ELEMENT news (#PCDATA)>\
                 <!ELEMENT internal (#PCDATA)>",
            );
            s.repository_mut().put_document(
                "typed.xml",
                "<lab><news>hi</news><internal>budget</internal></lab>",
                Some("lab.dtd"),
            );
        };
        let mut off = server().with_compile(false);
        setup(&mut off);
        let want = off.handle(&req(None, "typed.xml")).unwrap();
        assert!(off.compiled_cache().is_empty(), "compile off must not compile");

        let mut on = server();
        setup(&mut on);
        let got = on.handle(&req(None, "typed.xml")).unwrap();
        assert_eq!(got.xml, want.xml, "compiled and interpreted views must agree");
        assert_eq!(on.compiled_cache().len(), 1, "the request compiles and caches the policy");

        // grant/revoke clear the compiled cache next to the decisions.
        let extra = Authorization::new(
            Subject::new("Public", "*", "*").unwrap(),
            ObjectSpec::parse("typed.xml:/lab/internal").unwrap(),
            Sign::Plus,
            AuthType::Recursive,
        );
        on.grant(extra.clone());
        assert!(on.compiled_cache().is_empty(), "grant must drop compiled policies");
        let wider = on.handle(&req(None, "typed.xml")).unwrap();
        assert!(wider.xml.contains("internal"), "{}", wider.xml);
        assert_eq!(on.compiled_cache().len(), 1, "the next request recompiles");
        assert_eq!(on.revoke(&extra), 1);
        assert!(on.compiled_cache().is_empty(), "revoke must drop compiled policies");
    }

    #[test]
    fn grant_runs_the_policy_preflight() {
        let mut s = server();
        s.repository_mut().put_dtd(
            "lab.dtd",
            "<!ELEMENT lab (news,internal)><!ELEMENT news (#PCDATA)>\
             <!ELEMENT internal (#PCDATA)>",
        );
        s.repository_mut().put_document(
            "typed.xml",
            "<lab><news>hi</news><internal>budget</internal></lab>",
            Some("lab.dtd"),
        );
        let counter = || {
            telemetry::global()
                .counter(
                    "xmlsec_policy_findings_total",
                    "Findings from the grant/revoke policy pre-flight, by severity and kind.",
                    &[("severity", "error"), ("kind", "dead-path")],
                )
                .get()
        };
        let before = counter();
        let findings = s.grant(Authorization::new(
            Subject::new("Public", "*", "*").unwrap(),
            ObjectSpec::parse("lab.dtd://budget").unwrap(),
            Sign::Plus,
            AuthType::Recursive,
        ));
        assert!(
            findings.iter().any(|f| f.kind == "dead-path"),
            "a path matching nothing in the DTD must be flagged: {findings:?}"
        );
        assert!(counter() > before, "pre-flight findings must reach /metrics");
        let records = s.audit.records();
        let last = records.last().unwrap();
        assert_eq!(last.uri, "lab.dtd");
        assert!(
            matches!(
                &last.outcome,
                AuditOutcome::PolicyChanged { action, errors, .. }
                    if action == "grant" && *errors > 0
            ),
            "{last:?}"
        );
    }

    #[test]
    fn grant_invalidates_cache() {
        let mut s = server();
        let _ = s.handle(&req(None, "lab.xml")).unwrap();
        s.grant(Authorization::new(
            Subject::new("Public", "*", "*").unwrap(),
            ObjectSpec::parse("lab.xml:/lab/internal").unwrap(),
            Sign::Plus,
            AuthType::Recursive,
        ));
        let r = s.handle(&req(None, "lab.xml")).unwrap();
        assert!(!r.cached);
        assert!(r.xml.contains("budget"), "{}", r.xml);
    }

    #[test]
    fn grant_leaves_unrelated_documents_cached() {
        // Invalidation is targeted: a grant on one document must not
        // evict another document's cached views.
        let mut s = server();
        s.repository_mut()
            .put_document("other.xml", "<lab><news>other</news></lab>", None);
        let _ = s.handle(&req(None, "lab.xml")).unwrap();
        let _ = s.handle(&req(None, "other.xml")).unwrap();
        assert_eq!(s.cache_len(), 2);
        s.grant(Authorization::new(
            Subject::new("Public", "*", "*").unwrap(),
            ObjectSpec::parse("lab.xml:/lab/internal").unwrap(),
            Sign::Plus,
            AuthType::Recursive,
        ));
        assert_eq!(s.cache_len(), 1, "only lab.xml's entry is swept");
        // Note: other.xml's *authorizations* did not change either, so
        // the surviving entry is correct (the fingerprint pins that).
        assert!(s.handle(&req(None, "other.xml")).unwrap().cached);
    }

    #[test]
    fn schema_level_grant_sweeps_conforming_documents() {
        // A schema-level authorization names the DTD URI, which is never
        // itself a cache key; the sweep must resolve to the conforming
        // documents. Pinned by cache_len, since the fingerprint change
        // would mask the distinction on the next request.
        let mut s = server();
        s.repository_mut().put_dtd(
            "lab.dtd",
            "<!ELEMENT lab (news,internal)><!ELEMENT news (#PCDATA)>\
             <!ELEMENT internal (#PCDATA)>",
        );
        s.repository_mut().put_document(
            "typed.xml",
            "<lab><news>hello</news><internal>budget</internal></lab>",
            Some("lab.dtd"),
        );
        let _ = s.handle(&req(None, "typed.xml")).unwrap();
        let _ = s.handle(&req(None, "lab.xml")).unwrap(); // not an instance
        assert_eq!(s.cache_len(), 2);
        s.grant(Authorization::new(
            Subject::new("Public", "*", "*").unwrap(),
            ObjectSpec::parse("lab.dtd:/lab/internal").unwrap(),
            Sign::Plus,
            AuthType::Recursive,
        ));
        assert_eq!(s.cache_len(), 1, "conforming instance swept, unrelated doc kept");
        let r = s.handle(&req(None, "typed.xml")).unwrap();
        assert!(!r.cached);
        assert!(r.xml.contains("budget"), "schema grant now applies: {}", r.xml);
    }

    #[test]
    fn without_cache_recomputes() {
        let s = server().without_cache();
        let r1 = s.handle(&req(None, "lab.xml")).unwrap();
        let r2 = s.handle(&req(None, "lab.xml")).unwrap();
        assert!(!r1.cached && !r2.cached);
        assert_eq!(s.cache_stats(), (0, 0));
        assert_eq!(s.cache_len(), 0);
    }

    #[test]
    fn bounded_cache_capacity_evicts() {
        let mut s = server().with_cache_capacity(1);
        s.repository_mut().put_document("b.xml", "<lab><news>b</news></lab>", None);
        let _ = s.handle(&req(None, "lab.xml")).unwrap();
        let _ = s.handle(&req(None, "b.xml")).unwrap();
        assert_eq!(s.cache_len(), 1, "capacity 1 holds one view");
    }

    #[test]
    fn audit_records_serving() {
        let s = server();
        let _ = s.handle(&req(None, "lab.xml"));
        let records = s.audit.records();
        assert_eq!(records.len(), 1);
        assert!(matches!(
            records[0].outcome,
            AuditOutcome::Served { cached: false, granted_nodes: g, .. } if g > 0
        ));
        assert!(records[0].requester.starts_with("anonymous@"));
    }

    #[test]
    fn bad_locations_rejected() {
        let s = server();
        let mut r = req(None, "lab.xml");
        r.ip = "not-an-ip".into();
        assert!(matches!(s.handle(&r), Err(ServerError::BadRequest(_))));
    }

    #[test]
    fn depth_bomb_is_limit_exceeded_not_processing() {
        let mut limits = ResourceLimits::default();
        limits.xml.max_depth = 8;
        let mut s = server().with_limits(limits);
        let mut xml = String::new();
        for _ in 0..50 {
            xml.push_str("<d>");
        }
        for _ in 0..50 {
            xml.push_str("</d>");
        }
        s.repository_mut().put_document("bomb.xml", &xml, None);
        let e = s.handle(&req(None, "bomb.xml")).unwrap_err();
        assert!(matches!(e, ServerError::LimitExceeded(_)), "{e:?}");
        // A genuinely broken stored document is still Processing.
        s.repository_mut().put_document("broken.xml", "<d><open>", None);
        let e2 = s.handle(&req(None, "broken.xml")).unwrap_err();
        assert!(matches!(e2, ServerError::Processing(_)), "{e2:?}");
    }

    #[test]
    fn expensive_query_is_limit_exceeded() {
        let mut limits = ResourceLimits::default();
        limits.xpath.max_node_visits = 1;
        let s = server().with_limits(limits);
        let e = s.query(&req(None, "lab.xml"), "//*//*").unwrap_err();
        assert!(matches!(e, ServerError::LimitExceeded(_)), "{e:?}");
        // Under default limits the same query answers fine.
        let s2 = server();
        assert!(s2.query(&req(None, "lab.xml"), "//*//*").is_ok());
    }
}

#[cfg(test)]
mod revoke_tests {
    use super::*;
    use xmlsec_authz::{AuthType, ObjectSpec, Sign};
    use xmlsec_subjects::Subject;

    #[test]
    fn revoking_shrinks_views_and_drops_cache() {
        let mut dir = Directory::new();
        dir.add_user("u").unwrap();
        let grant = Authorization::new(
            Subject::new("u", "*", "*").unwrap(),
            ObjectSpec::with_path("d.xml", "/d").unwrap(),
            Sign::Plus,
            AuthType::Recursive,
        );
        let mut base = AuthorizationBase::new();
        base.add(grant.clone());
        let mut s = SecureServer::new(dir, base);
        s.register_credentials("u", "pw");
        s.repository_mut().put_document("d.xml", "<d>secret</d>", None);
        let req = ClientRequest {
            user: Some(("u".into(), "pw".into())),
            ip: "1.2.3.4".into(),
            sym: "h.x.org".into(),
            uri: "d.xml".into(),
        };
        assert!(s.handle(&req).unwrap().xml.contains("secret"));
        assert_eq!(s.revoke(&grant), 1);
        let after = s.handle(&req).unwrap();
        assert!(!after.cached, "revocation must invalidate the cache");
        assert_eq!(after.xml, "<d/>");
        assert_eq!(s.revoke(&grant), 0);
    }
}

#[cfg(test)]
mod update_tests {
    use super::*;
    use xmlsec_authz::{Action, AuthType, ObjectSpec, Sign};
    use xmlsec_subjects::Subject;

    fn writable_server() -> SecureServer {
        let mut dir = Directory::new();
        dir.add_user("ed").unwrap();
        dir.add_user("ro").unwrap();
        let mut base = AuthorizationBase::new();
        base.add(Authorization::new(
            Subject::new("ed", "*", "*").unwrap(),
            ObjectSpec::with_path("d.xml", "/d").unwrap(),
            Sign::Plus,
            AuthType::Recursive,
        ));
        base.add(
            Authorization::new(
                Subject::new("ed", "*", "*").unwrap(),
                ObjectSpec::with_path("d.xml", "/d").unwrap(),
                Sign::Plus,
                AuthType::Recursive,
            )
            .with_action(Action::Write),
        );
        base.add(Authorization::new(
            Subject::new("ro", "*", "*").unwrap(),
            ObjectSpec::with_path("d.xml", "/d").unwrap(),
            Sign::Plus,
            AuthType::Recursive,
        ));
        let mut s = SecureServer::new(dir, base);
        s.register_credentials("ed", "pw");
        s.register_credentials("ro", "pw");
        s.repository_mut().put_document("d.xml", "<d><t>v1</t></d>", None);
        s
    }

    fn rq(user: &str) -> ClientRequest {
        ClientRequest {
            user: Some((user.into(), "pw".into())),
            ip: "1.2.3.4".into(),
            sym: "h.x.org".into(),
            uri: "d.xml".into(),
        }
    }

    #[test]
    fn committed_update_is_audited_as_updated() {
        let s = writable_server();
        let touched = s
            .update(&rq("ed"), &[UpdateOp::SetText { target: "/d/t".into(), text: "v2".into() }])
            .unwrap();
        assert_eq!(touched, 1);
        let records = s.audit.records();
        let last = records.last().unwrap();
        assert!(
            matches!(last.outcome, AuditOutcome::Updated { ops: 1, touched: 1 }),
            "an update is audited as Updated, not as a zero-node Served: {last:?}"
        );
        assert!(last.requester.starts_with("ed@"));
    }

    #[test]
    fn cancelled_update_leaves_document_and_views_untouched() {
        let s = writable_server();
        let before = s.handle(&rq("ro")).unwrap();
        assert!(s.handle(&rq("ro")).unwrap().cached, "reader view is warm");
        let token = CancelToken::never();
        token.cancel();
        let e = s
            .update_cancellable(
                &rq("ed"),
                &[UpdateOp::SetText { target: "/d/t".into(), text: "v2".into() }],
                Some(&token),
            )
            .unwrap_err();
        assert!(matches!(e, ServerError::Cancelled(_)), "{e:?}");
        // Nothing committed: stored bytes, content hash, and the warm
        // view are all exactly as before the interrupted batch.
        {
            let repo = s.repository();
            assert_eq!(repo.document("d.xml").unwrap().xml, "<d><t>v1</t></d>");
        }
        let after = s.handle(&rq("ro")).unwrap();
        assert!(after.cached, "the warm view survives the aborted batch");
        assert_eq!(after.xml, before.xml);
        assert_eq!(after.etag, before.etag);
    }

    #[test]
    fn commit_patches_warm_views_and_counts_them() {
        let patched = || {
            telemetry::global()
                .counter(
                    "xmlsec_view_patches_total",
                    "Warm cached views handled after an update commit, by result: \
                     patched in place, or dropped (no bookkeeping / labeling error).",
                    &[("result", "patched")],
                )
                .get()
        };
        let s = writable_server();
        let before = s.handle(&rq("ro")).unwrap();
        assert!(s.handle(&rq("ro")).unwrap().cached);
        let count0 = patched();
        s.update(&rq("ed"), &[UpdateOp::SetText { target: "/d/t".into(), text: "v2".into() }])
            .unwrap();
        assert!(patched() > count0, "the warm reader view is patched in place");
        let after = s.handle(&rq("ro")).unwrap();
        assert!(after.cached, "the patched view serves as a warm hit");
        assert!(after.xml.contains("v2"), "{}", after.xml);
        assert_ne!(after.etag, before.etag);
        // Repeated updates keep patching the same (moving) entry.
        s.update(&rq("ed"), &[UpdateOp::SetText { target: "/d/t".into(), text: "v3".into() }])
            .unwrap();
        let third = s.handle(&rq("ro")).unwrap();
        assert!(third.cached);
        assert!(third.xml.contains("v3"), "{}", third.xml);
    }

    #[test]
    fn update_without_write_grant_is_denied_and_commits_nothing() {
        let s = writable_server();
        let e = s
            .update(&rq("ro"), &[UpdateOp::SetText { target: "/d/t".into(), text: "x".into() }])
            .unwrap_err();
        assert!(matches!(e, ServerError::UpdateDenied(_)), "{e:?}");
        let repo = s.repository();
        assert_eq!(repo.document("d.xml").unwrap().xml, "<d><t>v1</t></d>");
    }
}
