//! Readiness-driven event-loop transport (Linux `epoll`).
//!
//! The blocking pool in [`crate::http`] pins one thread per in-flight
//! connection, so slow clients cap concurrency at pool size. This module
//! rebuilds the front end as a single-threaded event loop: nonblocking
//! accept, incremental request framing and response writing with a
//! per-connection state machine, and keep-alive / pipelined requests.
//! Connection count and CPU budget scale independently — the loop holds
//! thousands of idle or dribbling sockets for the cost of a buffer each,
//! while *compute* (cache-miss view assembly, queries) is handed to the
//! same bounded worker pool as before, whose pipeline stages lease cores
//! from the global `par::lease` budget.
//!
//! What the loop serves inline, without a worker:
//!
//! - `/metrics`, 400s, 431s, 408s, and 503 sheds;
//! - warm cache hits and `If-None-Match` → 304 revalidations, via
//!   [`SecureServer::handle_cache_only`] (authentication included — a
//!   probe is a few hash lookups, safe on the loop thread).
//!
//! Everything else (a *cold* view, any query) becomes a [`Job`] on the
//! bounded queue; the worker applies the same CoDel admission control at
//! dequeue, runs the cancellable pipeline, and posts the rendered bytes
//! back as a [`Done`] completion, waking the loop through an `eventfd`.
//!
//! The robustness contract of the pool transport carries over bit for
//! bit — both transports render through the same `render_*` functions in
//! [`crate::http`], so a given (status, body, headers) triple is
//! byte-identical; the only sanctioned difference is the `Connection:
//! keep-alive` header on connections the loop keeps open. Client hangups
//! are detected by *readiness* (`EPOLLRDHUP`/EOF) instead of the pool's
//! per-request watchdog thread: the moment the peer closes, the loop
//! trips the in-flight request's [`CancelToken`] with
//! [`CancelReason::ClientGone`] and discards the completion.
//!
//! Zero dependencies: the four syscalls used (`epoll_create1`,
//! `epoll_ctl`, `epoll_wait`, `eventfd`) are declared by hand against
//! the libc that std already links. Non-Linux builds keep the public
//! types but [`EpollDemo::start_with`] returns
//! [`std::io::ErrorKind::Unsupported`].

use std::net::SocketAddr;
use std::str::FromStr;

use crate::http::{HttpConfig, HttpDemo};
use crate::server::SecureServer;

/// Which HTTP front end `serve` runs.
///
/// The blocking pool remains available as a differential oracle for the
/// event loop: both transports answer a fixed request script with
/// byte-identical responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Transport {
    /// The bounded blocking worker pool ([`HttpDemo`], PR 2).
    #[default]
    Pool,
    /// The readiness-driven event loop ([`EpollDemo`], Linux only).
    Epoll,
}

impl FromStr for Transport {
    type Err = String;

    fn from_str(s: &str) -> Result<Transport, String> {
        match s {
            "pool" => Ok(Transport::Pool),
            "epoll" => Ok(Transport::Epoll),
            other => Err(format!("unknown transport {other:?} (expected pool|epoll)")),
        }
    }
}

impl std::fmt::Display for Transport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Transport::Pool => "pool",
            Transport::Epoll => "epoll",
        })
    }
}

/// A running demo server over either transport, so callers (the CLI,
/// benches, chaos tests) select the front end at runtime.
pub enum AnyDemo {
    /// Blocking worker-pool transport.
    Pool(HttpDemo),
    /// Event-loop transport.
    Epoll(EpollDemo),
}

impl AnyDemo {
    /// Starts `server` on `addr` over `transport` with explicit bounds.
    pub fn start_with(
        transport: Transport,
        server: SecureServer,
        addr: &str,
        cfg: HttpConfig,
    ) -> std::io::Result<AnyDemo> {
        match transport {
            Transport::Pool => Ok(AnyDemo::Pool(HttpDemo::start_with(server, addr, cfg)?)),
            Transport::Epoll => Ok(AnyDemo::Epoll(EpollDemo::start_with(server, addr, cfg)?)),
        }
    }

    /// Starts with default limits.
    pub fn start(
        transport: Transport,
        server: SecureServer,
        addr: &str,
    ) -> std::io::Result<AnyDemo> {
        AnyDemo::start_with(transport, server, addr, HttpConfig::default())
    }

    /// Where the demo is listening.
    pub fn addr(&self) -> SocketAddr {
        match self {
            AnyDemo::Pool(d) => d.addr(),
            AnyDemo::Epoll(d) => d.addr(),
        }
    }

    /// Stops accepting and drains in-flight work up to the configured
    /// drain deadline.
    pub fn shutdown(&mut self) {
        match self {
            AnyDemo::Pool(d) => d.shutdown(),
            AnyDemo::Epoll(d) => d.shutdown(),
        }
    }
}

pub use imp::EpollDemo;

#[cfg(target_os = "linux")]
mod imp {
    use crate::http::{self, Admission, HttpConfig};
    use crate::server::{ClientRequest, ConditionalOutcome, SecureServer, ServerError};
    use std::collections::HashMap;
    use std::fs::File;
    use std::io::{Read, Write};
    use std::net::{SocketAddr, TcpListener, TcpStream};
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
    use std::os::raw::c_int;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
    use std::sync::{Arc, Mutex};
    use std::thread::JoinHandle;
    use std::time::{Duration, Instant};
    use xmlsec_core::{CancelReason, CancelToken};
    use xmlsec_telemetry as telemetry;

    #[cfg(feature = "faults")]
    use crate::faults;
    #[cfg(not(feature = "faults"))]
    mod faults {
        // No-op shim: release builds carry no injection hooks.
        pub(crate) fn check(_point: &str) -> bool {
            false
        }
    }

    /// Hand-declared bindings for the four syscalls the loop needs; the
    /// symbols live in the libc std already links, so this adds no
    /// dependency.
    mod sys {
        use std::os::raw::{c_int, c_uint};

        /// Mirrors `struct epoll_event`. The kernel ABI packs it on
        /// x86-64 (12 bytes); other architectures use natural layout.
        #[repr(C)]
        #[cfg_attr(target_arch = "x86_64", repr(packed))]
        #[derive(Clone, Copy)]
        pub(super) struct EpollEvent {
            pub(super) events: u32,
            pub(super) data: u64,
        }

        pub(super) const EPOLLIN: u32 = 0x001;
        pub(super) const EPOLLOUT: u32 = 0x004;
        pub(super) const EPOLLERR: u32 = 0x008;
        pub(super) const EPOLLHUP: u32 = 0x010;
        pub(super) const EPOLLRDHUP: u32 = 0x2000;
        pub(super) const EPOLL_CTL_ADD: c_int = 1;
        pub(super) const EPOLL_CTL_DEL: c_int = 2;
        pub(super) const EPOLL_CTL_MOD: c_int = 3;
        pub(super) const EPOLL_CLOEXEC: c_int = 0x80000;
        pub(super) const EFD_CLOEXEC: c_int = 0x80000;
        pub(super) const EFD_NONBLOCK: c_int = 0x800;

        extern "C" {
            pub(super) fn epoll_create1(flags: c_int) -> c_int;
            pub(super) fn epoll_ctl(
                epfd: c_int,
                op: c_int,
                fd: c_int,
                event: *mut EpollEvent,
            ) -> c_int;
            pub(super) fn epoll_wait(
                epfd: c_int,
                events: *mut EpollEvent,
                maxevents: c_int,
                timeout: c_int,
            ) -> c_int;
            pub(super) fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        }
    }

    /// RAII epoll instance.
    struct Epoll {
        fd: OwnedFd,
    }

    impl Epoll {
        fn new() -> std::io::Result<Epoll> {
            let fd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(std::io::Error::last_os_error());
            }
            Ok(Epoll { fd: unsafe { OwnedFd::from_raw_fd(fd) } })
        }

        fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> std::io::Result<()> {
            let mut ev = sys::EpollEvent { events, data: token };
            let rc = unsafe { sys::epoll_ctl(self.fd.as_raw_fd(), op, fd, &mut ev) };
            if rc < 0 {
                Err(std::io::Error::last_os_error())
            } else {
                Ok(())
            }
        }

        /// Waits up to `timeout_ms`, retrying `EINTR`; returns the number
        /// of ready events (0 on timeout or unrecoverable error — the
        /// caller's tick loop makes progress either way).
        fn wait(&self, events: &mut [sys::EpollEvent], timeout_ms: c_int) -> usize {
            loop {
                let rc = unsafe {
                    sys::epoll_wait(
                        self.fd.as_raw_fd(),
                        events.as_mut_ptr(),
                        events.len() as c_int,
                        timeout_ms,
                    )
                };
                if rc >= 0 {
                    return rc as usize;
                }
                if std::io::Error::last_os_error().kind() != std::io::ErrorKind::Interrupted {
                    return 0;
                }
            }
        }
    }

    fn eventfd_file() -> std::io::Result<File> {
        let fd = unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) };
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(unsafe { File::from_raw_fd(fd) })
    }

    pub(crate) fn open_connections() -> Arc<telemetry::Gauge> {
        telemetry::global().gauge(
            "xmlsec_server_open_connections",
            "Connections currently registered with the event loop.",
            &[],
        )
    }

    /// Loop tick: the longest the loop sleeps between deadline sweeps.
    const TICK_MS: c_int = 25;
    /// How long a rejected (431) connection lingers discarding the
    /// client's in-flight bytes so the close is a clean FIN, mirroring
    /// the pool's `drain_before_close`.
    const LINGER: Duration = Duration::from_millis(200);
    /// Event-loop tokens 0 and 1 are the listener and the wake eventfd;
    /// connections start at 2.
    const TOK_LISTENER: u64 = 0;
    const TOK_WAKE: u64 = 1;
    const TOK_FIRST_CONN: u64 = 2;

    /// Compute handed to a worker: everything the loop could not answer
    /// from already-computed state.
    struct Job {
        conn: u64,
        client: ClientRequest,
        query: Option<String>,
        /// A parsed `POST /update` op batch; `None` for reads. Updates
        /// are handed off exactly like cache-miss compute.
        update: Option<Vec<xmlsec_core::update::UpdateOp>>,
        /// 1-based source line of each op in `update`, so denials can
        /// point back at the batch the client sent.
        update_lines: Vec<u32>,
        if_none_match: Option<String>,
        cancel: CancelToken,
        keep_alive: bool,
        enqueued: Instant,
    }

    /// A worker's rendered completion. Empty `bytes` means "close
    /// silently" (vanished client, injected disconnect).
    struct Done {
        conn: u64,
        bytes: Vec<u8>,
        close: bool,
    }

    /// Per-connection state machine: inbound framing buffer, outbound
    /// response buffer, and the flags that drive it between `Reading`,
    /// `Computing`, `Writing`, and `Lingering`.
    struct Conn {
        sock: TcpStream,
        peer_ip: String,
        /// Unparsed inbound bytes (may already hold pipelined requests).
        buf: Vec<u8>,
        /// Rendered-but-unwritten response bytes.
        out: Vec<u8>,
        out_pos: usize,
        /// A worker is computing this connection's current request.
        computing: bool,
        cancel: Option<CancelToken>,
        /// Post-431 drain window: inbound discarded, close at expiry.
        lingering: Option<Instant>,
        close_after_write: bool,
        /// Peer hung up while a worker was computing; the completion is
        /// discarded when it arrives.
        gone: bool,
        /// fd already removed from the epoll set (stops level-triggered
        /// EOF spin on `gone` connections).
        deregistered: bool,
        read_deadline: Instant,
        write_deadline: Option<Instant>,
        /// `EPOLLOUT` currently armed.
        want_out: bool,
        /// Responses completed on this connection (0 ⇒ a read timeout is
        /// a slow loris worth a 408; >0 ⇒ it is an idle keep-alive).
        served: u64,
    }

    impl Conn {
        fn new(sock: TcpStream, peer_ip: String, read_deadline: Instant) -> Conn {
            Conn {
                sock,
                peer_ip,
                buf: Vec::new(),
                out: Vec::new(),
                out_pos: 0,
                computing: false,
                cancel: None,
                lingering: None,
                close_after_write: false,
                gone: false,
                deregistered: false,
                read_deadline,
                write_deadline: None,
                want_out: false,
                served: 0,
            }
        }

        fn push_out(&mut self, bytes: &[u8]) {
            self.out.extend_from_slice(bytes);
        }

        fn out_drained(&self) -> bool {
            self.out_pos >= self.out.len()
        }
    }

    /// Outcome of scanning the inbound buffer for one complete request
    /// head (request line + headers + blank line).
    enum HeadScan {
        Incomplete,
        LineTooLong,
        HeadersTooLong,
        /// Byte length of the complete head, terminator included.
        Complete(usize),
    }

    /// Incremental equivalent of the pool's bounded line reads: the
    /// request line (terminator included) may not exceed `max_line`, the
    /// cumulative header lines may not exceed `max_header`.
    fn scan_head(buf: &[u8], max_line: usize, max_header: usize) -> HeadScan {
        let line_end = match buf.iter().position(|&b| b == b'\n') {
            Some(i) => {
                if i + 1 > max_line {
                    return HeadScan::LineTooLong;
                }
                i + 1
            }
            None => {
                if buf.len() > max_line {
                    return HeadScan::LineTooLong;
                }
                return HeadScan::Incomplete;
            }
        };
        let mut pos = line_end;
        let mut header_bytes = 0usize;
        loop {
            let rest = &buf[pos..];
            match rest.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    let line = &rest[..=i];
                    if line == b"\n" || line == b"\r\n" {
                        return HeadScan::Complete(pos + i + 1);
                    }
                    header_bytes += line.len();
                    if header_bytes > max_header {
                        return HeadScan::HeadersTooLong;
                    }
                    pos += i + 1;
                }
                None => {
                    if header_bytes + rest.len() > max_header {
                        return HeadScan::HeadersTooLong;
                    }
                    return HeadScan::Incomplete;
                }
            }
        }
    }

    /// The parsed head: the request line plus the three headers the demo
    /// honours, and the keep-alive decision (explicit `Connection`
    /// header wins; otherwise HTTP/1.1 defaults to keep-alive, HTTP/1.0
    /// to close).
    struct Head {
        line: String,
        if_none_match: Option<String>,
        deadline_ms: Option<u64>,
        content_length: Option<usize>,
        keep_alive: bool,
    }

    fn parse_head(head: &str) -> Head {
        let mut it = head.lines();
        let line = it.next().unwrap_or("").to_string();
        let http11 = line
            .split_whitespace()
            .nth(2)
            .is_some_and(|v| v.eq_ignore_ascii_case("HTTP/1.1"));
        let mut if_none_match = None;
        let mut deadline_ms = None;
        let mut content_length = None;
        let mut ka_header: Option<bool> = None;
        for h in it {
            if h.is_empty() {
                break;
            }
            if let Some((name, value)) = h.split_once(':') {
                let name = name.trim();
                let value = value.trim();
                if name.eq_ignore_ascii_case("if-none-match") {
                    if_none_match = Some(value.to_string());
                } else if name.eq_ignore_ascii_case("x-request-deadline") {
                    // Advisory header; unparsable values are ignored.
                    deadline_ms = value.parse().ok();
                } else if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.parse().ok();
                } else if name.eq_ignore_ascii_case("connection") {
                    let v = value.to_ascii_lowercase();
                    if v.contains("keep-alive") {
                        ka_header = Some(true);
                    } else if v.contains("close") {
                        ka_header = Some(false);
                    }
                }
            }
        }
        Head {
            line,
            if_none_match,
            deadline_ms,
            content_length,
            keep_alive: ka_header.unwrap_or(http11),
        }
    }

    struct EventLoop {
        ep: Epoll,
        listener: TcpListener,
        server: Arc<SecureServer>,
        cfg: HttpConfig,
        admission: Arc<Admission>,
        depth: Arc<telemetry::Gauge>,
        open: Arc<telemetry::Gauge>,
        conns: HashMap<u64, Conn>,
        next_token: u64,
        tx: SyncSender<Job>,
        completions: Arc<Mutex<Vec<Done>>>,
        wake: Arc<File>,
        stop: Arc<AtomicBool>,
    }

    impl EventLoop {
        fn run(mut self) {
            let mut events = [sys::EpollEvent { events: 0, data: 0 }; 64];
            let mut draining: Option<Instant> = None;
            loop {
                if draining.is_none() && self.stop.load(Ordering::SeqCst) {
                    // Stop accepting; idle connections close now, busy
                    // ones get the drain window to finish.
                    let _ = self.ep.ctl(sys::EPOLL_CTL_DEL, self.listener.as_raw_fd(), 0, 0);
                    let idle: Vec<u64> = self
                        .conns
                        .iter()
                        .filter(|(_, c)| !c.computing && c.out_drained())
                        .map(|(t, _)| *t)
                        .collect();
                    for tok in idle {
                        if let Some(conn) = self.conns.remove(&tok) {
                            self.drop_conn(conn);
                        }
                    }
                    draining = Some(Instant::now() + self.cfg.drain_timeout);
                }
                if let Some(deadline) = draining {
                    let busy = self.conns.values().any(|c| c.computing || !c.out_drained());
                    if !busy || Instant::now() >= deadline {
                        break;
                    }
                }
                let n = self.ep.wait(&mut events, TICK_MS);
                for ev in events.iter().take(n) {
                    // Copy out of the (packed) event before use.
                    let mask = ev.events;
                    let tok = ev.data;
                    match tok {
                        TOK_LISTENER => self.on_accept(),
                        TOK_WAKE => {
                            let mut b = [0u8; 8];
                            let _ = (&*self.wake).read(&mut b);
                        }
                        _ => self.on_conn_event(tok, mask),
                    }
                }
                self.apply_completions();
                self.sweep();
            }
            // Whatever remains after the drain window closes abruptly.
            for (_, conn) in std::mem::take(&mut self.conns) {
                self.drop_conn(conn);
            }
        }

        fn on_accept(&mut self) {
            loop {
                match self.listener.accept() {
                    Ok((sock, peer)) => {
                        if sock.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let tok = self.next_token;
                        self.next_token += 1;
                        if self
                            .ep
                            .ctl(
                                sys::EPOLL_CTL_ADD,
                                sock.as_raw_fd(),
                                sys::EPOLLIN | sys::EPOLLRDHUP,
                                tok,
                            )
                            .is_err()
                        {
                            continue;
                        }
                        self.open.add(1);
                        let deadline = Instant::now() + self.cfg.read_timeout;
                        self.conns.insert(tok, Conn::new(sock, peer.ip().to_string(), deadline));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }

        fn on_conn_event(&mut self, tok: u64, mask: u32) {
            let Some(mut conn) = self.conns.remove(&tok) else { return };
            let mut close = false;
            if mask & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP | sys::EPOLLERR) != 0 {
                close = self.readable(tok, &mut conn);
            }
            if !close && mask & sys::EPOLLOUT != 0 {
                close = self.flush(tok, &mut conn);
            }
            if close {
                self.drop_conn(conn);
            } else {
                self.conns.insert(tok, conn);
            }
        }

        /// Drains the socket into the framing buffer and advances the
        /// state machine. Returns true when the connection should close.
        fn readable(&mut self, tok: u64, conn: &mut Conn) -> bool {
            let cap = self.cfg.max_request_line + self.cfg.max_header_bytes + 1024;
            let mut scratch = [0u8; 16 * 1024];
            loop {
                match conn.sock.read(&mut scratch) {
                    Ok(0) => return self.peer_closed(conn),
                    Ok(n) => {
                        if conn.lingering.is_some() || conn.gone {
                            continue; // discard: rejected or abandoned
                        }
                        if conn.buf.len() + n > cap {
                            // Pipelined backlog beyond every framing
                            // budget: drop the connection outright.
                            return true;
                        }
                        conn.buf.extend_from_slice(&scratch[..n]);
                        conn.read_deadline = Instant::now() + self.cfg.read_timeout;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => return self.peer_closed(conn),
                }
            }
            if !conn.computing && conn.lingering.is_none() && self.advance(tok, conn) {
                return true;
            }
            self.flush(tok, conn)
        }

        /// EOF/reset from the peer. A connection with compute in flight
        /// is kept (marked `gone`) so the completion can be discarded
        /// and the gauges settle; its token is cancelled `ClientGone` —
        /// the readiness-based replacement for the pool's per-request
        /// watchdog thread.
        fn peer_closed(&mut self, conn: &mut Conn) -> bool {
            if conn.computing {
                conn.gone = true;
                if let Some(cancel) = &conn.cancel {
                    cancel.cancel_with(CancelReason::ClientGone);
                }
                // Level-triggered EOF would re-fire every tick; drop the
                // fd from the interest set until the completion arrives.
                if !conn.deregistered
                    && self.ep.ctl(sys::EPOLL_CTL_DEL, conn.sock.as_raw_fd(), 0, 0).is_ok()
                {
                    conn.deregistered = true;
                }
                return false;
            }
            true
        }

        /// Parses as many complete requests out of the buffer as the
        /// serial-per-connection discipline allows. Returns true when
        /// the connection should close.
        fn advance(&mut self, tok: u64, conn: &mut Conn) -> bool {
            loop {
                if conn.computing || conn.close_after_write || conn.lingering.is_some() {
                    return false;
                }
                match scan_head(&conn.buf, self.cfg.max_request_line, self.cfg.max_header_bytes) {
                    HeadScan::Incomplete => return false,
                    HeadScan::LineTooLong => {
                        xmlsec_xml::limit_rejected("request_line");
                        conn.push_out(&http::render_response(
                            431,
                            "Request Header Fields Too Large",
                            "text/plain",
                            "request line too long\n",
                            &[],
                            false,
                        ));
                        conn.served += 1;
                        conn.close_after_write = true;
                        conn.lingering = Some(Instant::now() + LINGER);
                        conn.buf.clear();
                        return false;
                    }
                    HeadScan::HeadersTooLong => {
                        xmlsec_xml::limit_rejected("header_bytes");
                        conn.push_out(&http::render_response(
                            431,
                            "Request Header Fields Too Large",
                            "text/plain",
                            "header block too large\n",
                            &[],
                            false,
                        ));
                        conn.served += 1;
                        conn.close_after_write = true;
                        conn.lingering = Some(Instant::now() + LINGER);
                        conn.buf.clear();
                        return false;
                    }
                    HeadScan::Complete(len) => {
                        let head = parse_head(&String::from_utf8_lossy(&conn.buf[..len]));
                        // POST bodies are Content-Length framed: reject
                        // oversized declarations without waiting for the
                        // bytes, and wait for complete bodies before
                        // routing (the head stays buffered meanwhile).
                        let is_post = head.line.starts_with("POST ");
                        let body_len = if is_post {
                            match head.content_length {
                                Some(l) if l > http::MAX_UPDATE_BODY => {
                                    xmlsec_xml::limit_rejected("update_body");
                                    conn.push_out(&http::render_response(
                                        413,
                                        "Content Too Large",
                                        "text/plain",
                                        "update body too large\n",
                                        &[],
                                        false,
                                    ));
                                    conn.served += 1;
                                    conn.close_after_write = true;
                                    conn.lingering = Some(Instant::now() + LINGER);
                                    conn.buf.clear();
                                    return false;
                                }
                                Some(l) => l,
                                None => 0,
                            }
                        } else {
                            0
                        };
                        if conn.buf.len() < len + body_len {
                            return false; // body incomplete: keep reading
                        }
                        conn.buf.drain(..len);
                        let body: Vec<u8> = conn.buf.drain(..body_len).collect();
                        if self.route(tok, conn, head, body) {
                            return true;
                        }
                        if conn.close_after_write {
                            conn.buf.clear();
                        }
                    }
                }
            }
        }

        /// Answers one parsed request: inline when the bytes are already
        /// computed (metrics, 400s, cache hits, 304s, sheds), otherwise
        /// dispatched to the worker pool. Returns true to close now.
        fn route(&mut self, tok: u64, conn: &mut Conn, head: Head, body: Vec<u8>) -> bool {
            let ka = head.keep_alive;
            let target = head.line.split_whitespace().nth(1).unwrap_or("");
            if target == "/metrics" || target.starts_with("/metrics?") {
                let body = telemetry::global().render_prometheus();
                conn.push_out(&http::render_response(
                    200,
                    "OK",
                    "text/plain; version=0.0.4",
                    &body,
                    &[],
                    ka,
                ));
                conn.served += 1;
                conn.close_after_write = !ka;
                return false;
            }
            if head.line.starts_with("POST ") {
                return self.route_update(tok, conn, &head, &body);
            }
            let Some((client, query)) = http::parse_request_line(&head.line, &conn.peer_ip) else {
                conn.push_out(&http::render_response(
                    400,
                    "Bad Request",
                    "text/plain",
                    "malformed request line\n",
                    &[],
                    ka,
                ));
                conn.served += 1;
                conn.close_after_write = !ka;
                return false;
            };

            if query.is_none() {
                // Probe for already-computed state: warm hits and 304
                // revalidations never leave the loop thread.
                match self.server.handle_cache_only(&client, head.if_none_match.as_deref()) {
                    Ok(Some(ConditionalOutcome::NotModified { etag })) => {
                        http::not_modified_total().inc();
                        conn.push_out(&http::render_not_modified(&etag, ka));
                        conn.served += 1;
                        conn.close_after_write = !ka;
                        return false;
                    }
                    Ok(Some(ConditionalOutcome::Full(resp))) => {
                        conn.push_out(&http::render_view(resp, ka));
                        conn.served += 1;
                        conn.close_after_write = !ka;
                        return false;
                    }
                    Ok(None) => {} // cold: fall through to dispatch
                    Err(e) => {
                        conn.push_out(&http::render_err(&e, ka));
                        conn.served += 1;
                        conn.close_after_write = !ka;
                        return false;
                    }
                }
            }

            // Cache-miss compute: same deadline policy as the pool (the
            // tighter of server ceiling and client budget).
            let deadline =
                match (self.cfg.request_deadline, head.deadline_ms.map(Duration::from_millis)) {
                    (Some(server_d), Some(client_d)) => Some(server_d.min(client_d)),
                    (server_d, client_d) => server_d.or(client_d),
                };
            let token = match deadline {
                Some(d) => CancelToken::with_timeout(d),
                None => CancelToken::never(),
            };
            self.depth.add(1);
            let job = Job {
                conn: tok,
                client,
                query,
                update: None,
                update_lines: Vec::new(),
                if_none_match: head.if_none_match,
                cancel: token.clone(),
                keep_alive: ka,
                enqueued: Instant::now(),
            };
            self.dispatch(tok, conn, job)
        }

        /// Routes one `POST /update?doc=…` request: parse the op batch
        /// from the already-buffered body, then hand it to the worker
        /// pool exactly like cache-miss compute. Errors close the
        /// connection (no keep-alive reuse after a refused write).
        fn route_update(&mut self, tok: u64, conn: &mut Conn, head: &Head, body: &[u8]) -> bool {
            let Some(client) = http::parse_update_request_line(&head.line, &conn.peer_ip) else {
                conn.push_out(&http::render_response(
                    400,
                    "Bad Request",
                    "text/plain",
                    "malformed update request\n",
                    &[],
                    false,
                ));
                conn.served += 1;
                conn.close_after_write = true;
                return false;
            };
            if head.content_length.is_none() {
                conn.push_out(&http::render_response(
                    411,
                    "Length Required",
                    "text/plain",
                    "Content-Length required\n",
                    &[],
                    false,
                ));
                conn.served += 1;
                conn.close_after_write = true;
                return false;
            }
            let (lines, ops): (Vec<u32>, Vec<_>) =
                match http::parse_update_ops_with_lines(&String::from_utf8_lossy(body)) {
                    Ok(ops) => ops.into_iter().unzip(),
                    Err(e) => {
                        conn.push_out(&http::render_response(
                            400,
                            "Bad Request",
                            "text/plain",
                            &format!("{e}\n"),
                            &[],
                            false,
                        ));
                        conn.served += 1;
                        conn.close_after_write = true;
                        return false;
                    }
                };
            let deadline =
                match (self.cfg.request_deadline, head.deadline_ms.map(Duration::from_millis)) {
                    (Some(server_d), Some(client_d)) => Some(server_d.min(client_d)),
                    (server_d, client_d) => server_d.or(client_d),
                };
            let token = match deadline {
                Some(d) => CancelToken::with_timeout(d),
                None => CancelToken::never(),
            };
            self.depth.add(1);
            let job = Job {
                conn: tok,
                client,
                query: None,
                update: Some(ops),
                update_lines: lines,
                if_none_match: None,
                cancel: token.clone(),
                keep_alive: head.keep_alive,
                enqueued: Instant::now(),
            };
            self.dispatch(tok, conn, job)
        }

        /// Enqueues a job on the worker pool, shedding with 503 when the
        /// backlog is full. Returns true to close the connection now.
        fn dispatch(&mut self, _tok: u64, conn: &mut Conn, job: Job) -> bool {
            let token = job.cancel.clone();
            match self.tx.try_send(job) {
                Ok(()) => {
                    conn.computing = true;
                    conn.cancel = Some(token);
                    false
                }
                Err(TrySendError::Full(_)) => {
                    // Backlog full: shed exactly like the pool's accept
                    // loop (503 + computed Retry-After, then close).
                    self.depth.add(-1);
                    http::shed_total().inc();
                    let retry = self.admission.retry_after_secs(self.depth.get());
                    conn.push_out(&http::render_busy(retry));
                    conn.served += 1;
                    conn.close_after_write = true;
                    false
                }
                Err(TrySendError::Disconnected(_)) => {
                    self.depth.add(-1);
                    true
                }
            }
        }

        /// Writes as much buffered response as the socket accepts.
        /// Returns true when the connection should close.
        fn flush(&mut self, tok: u64, conn: &mut Conn) -> bool {
            while !conn.out_drained() {
                match conn.sock.write(&conn.out[conn.out_pos..]) {
                    Ok(0) => return true,
                    Ok(n) => {
                        conn.out_pos += n;
                        conn.write_deadline = Some(Instant::now() + self.cfg.write_timeout);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        if !conn.want_out
                            && !conn.deregistered
                            && self
                                .ep
                                .ctl(
                                    sys::EPOLL_CTL_MOD,
                                    conn.sock.as_raw_fd(),
                                    sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLOUT,
                                    tok,
                                )
                                .is_ok()
                        {
                            conn.want_out = true;
                        }
                        if conn.write_deadline.is_none() {
                            conn.write_deadline = Some(Instant::now() + self.cfg.write_timeout);
                        }
                        return false;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => return true,
                }
            }
            conn.out.clear();
            conn.out_pos = 0;
            conn.write_deadline = None;
            if conn.want_out
                && !conn.deregistered
                && self
                    .ep
                    .ctl(
                        sys::EPOLL_CTL_MOD,
                        conn.sock.as_raw_fd(),
                        sys::EPOLLIN | sys::EPOLLRDHUP,
                        tok,
                    )
                    .is_ok()
            {
                conn.want_out = false;
            }
            if conn.close_after_write {
                // A lingering (431) connection drains the peer's bytes
                // first; the sweep closes it at expiry.
                return conn.lingering.is_none();
            }
            // Keep-alive: rearm the idle clock for the next request.
            conn.read_deadline = Instant::now() + self.cfg.read_timeout;
            false
        }

        /// Applies worker completions: rendered bytes are queued on the
        /// owning connection (or discarded if the client vanished), then
        /// the connection advances to any pipelined follow-up.
        fn apply_completions(&mut self) {
            let done: Vec<Done> = match self.completions.lock() {
                Ok(mut guard) => std::mem::take(&mut *guard),
                Err(_) => return,
            };
            for d in done {
                let Some(mut conn) = self.conns.remove(&d.conn) else { continue };
                conn.computing = false;
                conn.cancel = None;
                if conn.gone || d.bytes.is_empty() {
                    self.drop_conn(conn);
                    continue;
                }
                conn.push_out(&d.bytes);
                conn.served += 1;
                if d.close {
                    conn.close_after_write = true;
                }
                let mut close = false;
                if !conn.close_after_write {
                    close = self.advance(d.conn, &mut conn);
                }
                if !close {
                    close = self.flush(d.conn, &mut conn);
                }
                if close {
                    self.drop_conn(conn);
                } else {
                    self.conns.insert(d.conn, conn);
                }
            }
        }

        /// Enforces the per-connection clocks: linger expiry, write
        /// stalls, and read deadlines (slow lorises get a best-effort
        /// 408; idle keep-alive connections close silently).
        fn sweep(&mut self) {
            let now = Instant::now();
            let toks: Vec<u64> = self.conns.keys().copied().collect();
            for tok in toks {
                let Some(mut conn) = self.conns.remove(&tok) else { continue };
                let mut close = false;
                if let Some(expiry) = conn.lingering {
                    close = now >= expiry;
                } else if conn.write_deadline.is_some_and(|d| now >= d) {
                    close = true; // client stopped draining its response
                } else if !conn.computing && conn.out_drained() && now >= conn.read_deadline {
                    if !conn.buf.is_empty() || conn.served == 0 {
                        // Slow loris: a request was started but never
                        // completed. Best-effort 408, then close.
                        conn.push_out(&http::render_response(
                            408,
                            "Request Timeout",
                            "text/plain",
                            "request timeout\n",
                            &[],
                            false,
                        ));
                        conn.close_after_write = true;
                        close = self.flush(tok, &mut conn);
                    } else {
                        close = true; // idle keep-alive: silent close
                    }
                }
                if close {
                    self.drop_conn(conn);
                } else {
                    self.conns.insert(tok, conn);
                }
            }
        }

        fn drop_conn(&mut self, conn: Conn) {
            // Dropping the socket closes the fd, which also removes it
            // from the epoll interest set.
            self.open.add(-1);
            drop(conn);
        }
    }

    /// Worker side: dequeue, CoDel admission on queue sojourn, run the
    /// cancellable pipeline, post the rendered completion, wake the loop.
    fn worker_loop(
        rx: &Mutex<Receiver<Job>>,
        server: &SecureServer,
        admission: &Admission,
        depth: &telemetry::Gauge,
        completions: &Mutex<Vec<Done>>,
        wake: &File,
    ) {
        loop {
            let job = match rx.lock() {
                Ok(guard) => guard.recv(),
                Err(_) => break,
            };
            let Ok(job) = job else { break };
            depth.add(-1);
            let now = Instant::now();
            let sojourn = now.duration_since(job.enqueued);
            http::sojourn_seconds().observe_duration(sojourn);
            let admitted = admission.admit(sojourn, now);
            if !admitted {
                http::adaptive_shed_total().inc();
            }
            let started = Instant::now();
            // Panic backstop, mirroring the pool's worker loop: one bad
            // request must not take the worker down.
            let done =
                match catch_unwind(AssertUnwindSafe(|| run_job(server, &job, admitted, admission)))
                {
                    Ok(done) => done,
                    Err(_) => {
                        http::panics_caught_total().inc();
                        Done {
                            conn: job.conn,
                            bytes: http::render_err(
                                &ServerError::Processing(
                                    "panic during request processing".to_string(),
                                ),
                                job.keep_alive,
                            ),
                            close: !job.keep_alive,
                        }
                    }
                };
            if admitted {
                admission.record_service(started.elapsed());
            }
            if let Ok(mut guard) = completions.lock() {
                guard.push(done);
            }
            let _ = (&*wake).write_all(&1u64.to_ne_bytes());
        }
    }

    /// One request's compute, rendered to bytes. The status mapping and
    /// fault points mirror the pool's `handle_connection` exactly.
    fn run_job(server: &SecureServer, job: &Job, admitted: bool, admission: &Admission) -> Done {
        let ka = job.keep_alive;
        let silent = Done { conn: job.conn, bytes: Vec::new(), close: true };
        if faults::check("handle.start") {
            return silent; // injected disconnect: drop without responding
        }
        if !admitted {
            // Degraded mode: serve only already-computed state; queries
            // and updates always compute, so they are always refused.
            if job.query.is_some() || job.update.is_some() {
                return respond(job, http::render_overloaded(admission, ka), ka);
            }
            return match server.handle_cache_only(&job.client, job.if_none_match.as_deref()) {
                Ok(Some(ConditionalOutcome::NotModified { etag })) => {
                    http::not_modified_total().inc();
                    http::degraded_hits_total().inc();
                    respond(job, http::render_not_modified(&etag, ka), ka)
                }
                Ok(Some(ConditionalOutcome::Full(resp))) => {
                    http::degraded_hits_total().inc();
                    respond(job, http::render_view(resp, ka), ka)
                }
                Ok(None) => respond(job, http::render_overloaded(admission, ka), ka),
                Err(e) => respond(job, http::render_err(&e, ka), ka),
            };
        }
        if let Some(ops) = &job.update {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let _ = faults::check("process.request");
                server.update_cancellable(&job.client, ops, Some(&job.cancel))
            }));
            return match outcome {
                Ok(Ok(touched)) => {
                    if faults::check("respond.write") {
                        return silent;
                    }
                    respond(
                        job,
                        http::render_response(
                            200,
                            "OK",
                            "text/plain",
                            &format!("updated {touched}\n"),
                            &[],
                            ka,
                        ),
                        ka,
                    )
                }
                // A static denial points back at the op's source line in
                // the batch the client actually sent.
                Ok(Err(ServerError::UpdateDeniedStatic { op, reason })) => {
                    let line = job.update_lines.get(op).copied().unwrap_or(0);
                    respond(
                        job,
                        http::render_response(
                            403,
                            "Forbidden",
                            "text/plain",
                            &format!("update denied: line {line}: {reason}\n"),
                            &[],
                            ka,
                        ),
                        ka,
                    )
                }
                Ok(Err(e)) => respond_err_cancellable(job, &e, admission, ka),
                Err(_) => {
                    http::panics_caught_total().inc();
                    let e = ServerError::Processing("panic during update processing".to_string());
                    respond(job, http::render_err(&e, ka), ka)
                }
            };
        }
        if let Some(path) = &job.query {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let _ = faults::check("process.request");
                server.query_cancellable(&job.client, path, Some(&job.cancel))
            }));
            return match outcome {
                Ok(Ok(resp)) => {
                    let mut body = String::new();
                    for m in &resp.matches {
                        body.push_str(m);
                        body.push('\n');
                    }
                    if faults::check("respond.write") {
                        return silent;
                    }
                    respond(job, http::render_response(200, "OK", "text/xml", &body, &[], ka), ka)
                }
                Ok(Err(e)) => respond_err_cancellable(job, &e, admission, ka),
                Err(_) => {
                    http::panics_caught_total().inc();
                    let e = ServerError::Processing("panic during query processing".to_string());
                    respond(job, http::render_err(&e, ka), ka)
                }
            };
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let _ = faults::check("process.request");
            server.handle_cancellable(&job.client, job.if_none_match.as_deref(), Some(&job.cancel))
        }));
        match outcome {
            Ok(Ok(ConditionalOutcome::NotModified { etag })) => {
                http::not_modified_total().inc();
                if faults::check("respond.write") {
                    return silent;
                }
                respond(job, http::render_not_modified(&etag, ka), ka)
            }
            Ok(Ok(ConditionalOutcome::Full(resp))) => {
                if faults::check("respond.write") {
                    return silent;
                }
                respond(job, http::render_view(resp, ka), ka)
            }
            Ok(Err(e)) => respond_err_cancellable(job, &e, admission, ka),
            Err(_) => {
                http::panics_caught_total().inc();
                let e = ServerError::Processing("panic during request processing".to_string());
                respond(job, http::render_err(&e, ka), ka)
            }
        }
    }

    fn respond(job: &Job, bytes: Vec<u8>, keep_alive: bool) -> Done {
        Done { conn: job.conn, bytes, close: !keep_alive }
    }

    /// The pool's `respond_err_cancellable`, rendered: a vanished client
    /// gets no bytes at all, deadline/explicit cancellations answer 503
    /// with a computed `Retry-After`.
    fn respond_err_cancellable(
        job: &Job,
        e: &ServerError,
        admission: &Admission,
        keep_alive: bool,
    ) -> Done {
        if let ServerError::Cancelled(reason) = e {
            http::cancelled_total(reason.as_str()).inc();
            return match reason {
                CancelReason::ClientGone => Done { conn: job.conn, bytes: Vec::new(), close: true },
                CancelReason::DeadlineExceeded | CancelReason::Explicit => {
                    respond(job, http::render_overloaded(admission, keep_alive), keep_alive)
                }
            };
        }
        respond(job, http::render_err(e, keep_alive), keep_alive)
    }

    /// Handle to a running event-loop demo server.
    pub struct EpollDemo {
        addr: SocketAddr,
        stop: Arc<AtomicBool>,
        wake: Arc<File>,
        handle: Option<JoinHandle<()>>,
        workers: Vec<JoinHandle<()>>,
        drain_timeout: Duration,
    }

    impl EpollDemo {
        /// Starts serving `server` on `addr` with default limits (use
        /// port 0 for an ephemeral port).
        pub fn start(server: SecureServer, addr: &str) -> std::io::Result<EpollDemo> {
            EpollDemo::start_with(server, addr, HttpConfig::default())
        }

        /// Starts serving with explicit resource bounds. The same
        /// [`HttpConfig`] drives both transports: `workers` bounds
        /// compute concurrency, `backlog` bounds queued compute, and the
        /// timeouts become per-connection deadlines enforced by the
        /// loop's sweep instead of socket options.
        pub fn start_with(
            server: SecureServer,
            addr: &str,
            cfg: HttpConfig,
        ) -> std::io::Result<EpollDemo> {
            let listener = TcpListener::bind(addr)?;
            let local = listener.local_addr()?;
            listener.set_nonblocking(true)?;
            let ep = Epoll::new()?;
            let wake = Arc::new(eventfd_file()?);
            ep.ctl(sys::EPOLL_CTL_ADD, listener.as_raw_fd(), sys::EPOLLIN, TOK_LISTENER)?;
            ep.ctl(sys::EPOLL_CTL_ADD, wake.as_raw_fd(), sys::EPOLLIN, TOK_WAKE)?;

            let stop = Arc::new(AtomicBool::new(false));
            let (tx, rx) = sync_channel::<Job>(cfg.backlog.max(1));
            let rx = Arc::new(Mutex::new(rx));
            let completions = Arc::new(Mutex::new(Vec::new()));
            let server = Arc::new(server);
            let admission = Arc::new(Admission::new(&cfg));
            let depth = http::queue_depth();

            let mut workers = Vec::with_capacity(cfg.workers.max(1));
            for _ in 0..cfg.workers.max(1) {
                let rx = Arc::clone(&rx);
                let server = Arc::clone(&server);
                let admission = Arc::clone(&admission);
                let depth = Arc::clone(&depth);
                let completions = Arc::clone(&completions);
                let wake = Arc::clone(&wake);
                workers.push(std::thread::spawn(move || {
                    worker_loop(&rx, &server, &admission, &depth, &completions, &wake);
                }));
            }

            let el = EventLoop {
                ep,
                listener,
                server,
                cfg,
                admission,
                depth,
                open: open_connections(),
                conns: HashMap::new(),
                next_token: TOK_FIRST_CONN,
                tx,
                completions,
                wake: Arc::clone(&wake),
                stop: Arc::clone(&stop),
            };
            let handle = std::thread::spawn(move || el.run());
            Ok(EpollDemo {
                addr: local,
                stop,
                wake,
                handle: Some(handle),
                workers,
                drain_timeout: cfg.drain_timeout,
            })
        }

        /// Where the demo is listening.
        pub fn addr(&self) -> SocketAddr {
            self.addr
        }

        /// Stops accepting, then drains: in-flight compute gets up to
        /// the configured drain deadline; workers still busy after that
        /// are detached so shutdown always returns.
        pub fn shutdown(&mut self) {
            self.stop.store(true, Ordering::SeqCst);
            // Kick the loop out of epoll_wait so it sees the flag now.
            let _ = (&*self.wake).write_all(&1u64.to_ne_bytes());
            if let Some(h) = self.handle.take() {
                let _ = h.join();
            }
            // The loop thread has exited and dropped the job sender, so
            // each worker finishes its backlog and returns. Join with a
            // deadline: a wedged request must not hang shutdown.
            let deadline = Instant::now() + self.drain_timeout;
            for h in std::mem::take(&mut self.workers) {
                while !h.is_finished() && Instant::now() < deadline {
                    std::thread::sleep(Duration::from_millis(2));
                }
                if h.is_finished() {
                    let _ = h.join();
                }
                // else: detached by drop.
            }
        }
    }

    impl Drop for EpollDemo {
        fn drop(&mut self) {
            self.shutdown();
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use crate::http::HttpConfig;
    use crate::server::SecureServer;
    use std::net::SocketAddr;

    /// Stub on non-Linux targets: the event loop needs `epoll`, so
    /// construction always fails with [`std::io::ErrorKind::Unsupported`].
    pub struct EpollDemo {
        addr: SocketAddr,
    }

    impl EpollDemo {
        /// Always fails on this platform.
        pub fn start(server: SecureServer, addr: &str) -> std::io::Result<EpollDemo> {
            EpollDemo::start_with(server, addr, HttpConfig::default())
        }

        /// Always fails on this platform.
        pub fn start_with(
            _server: SecureServer,
            _addr: &str,
            _cfg: HttpConfig,
        ) -> std::io::Result<EpollDemo> {
            Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "the epoll transport requires Linux; use --transport pool",
            ))
        }

        /// Where the demo is listening (unreachable: construction fails).
        pub fn addr(&self) -> SocketAddr {
            self.addr
        }

        /// No-op (construction fails, so there is nothing to stop).
        pub fn shutdown(&mut self) {}
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use crate::server::SecureServer;
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::time::Duration;
    use xmlsec_authz::{AuthType, Authorization, AuthorizationBase, ObjectSpec, Sign};
    use xmlsec_subjects::{Directory, Subject};

    const OK_TARGET: &str = "/doc.xml?user=tom&pass=pw&ip=1.2.3.4&host=h.x.org";

    fn test_server() -> SecureServer {
        let mut dir = Directory::new();
        dir.add_user("tom").unwrap();
        let mut base = AuthorizationBase::new();
        base.add(Authorization::new(
            Subject::new("tom", "*", "*").unwrap(),
            ObjectSpec::with_path("doc.xml", "/d").unwrap(),
            Sign::Plus,
            AuthType::Recursive,
        ));
        let mut s = SecureServer::new(dir, base);
        s.register_credentials("tom", "pw");
        s.repository_mut().put_document("doc.xml", "<d><pub>hello</pub></d>", None);
        s
    }

    fn demo() -> EpollDemo {
        EpollDemo::start(test_server(), "127.0.0.1:0").unwrap()
    }

    /// Reads exactly one HTTP response off a (possibly keep-alive)
    /// connection, using Content-Length to find the body's end.
    fn read_one_response(conn: &mut TcpStream) -> String {
        let mut buf = Vec::new();
        let mut one = [0u8; 1];
        // Headers.
        while !buf.ends_with(b"\r\n\r\n") {
            assert_eq!(conn.read(&mut one).unwrap(), 1, "eof inside headers");
            buf.push(one[0]);
        }
        let head = String::from_utf8_lossy(&buf).into_owned();
        let clen: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .map_or(0, |v| v.trim().parse().unwrap());
        let mut body = vec![0u8; clen];
        conn.read_exact(&mut body).unwrap();
        head + &String::from_utf8_lossy(&body)
    }

    fn get(demo: &EpollDemo, target: &str) -> String {
        let mut conn = TcpStream::connect(demo.addr()).unwrap();
        write!(conn, "GET {target} HTTP/1.0\r\nHost: t\r\n\r\n").unwrap();
        let mut buf = String::new();
        conn.read_to_string(&mut buf).unwrap();
        buf
    }

    #[test]
    fn serves_view_and_revalidates_304() {
        let demo = demo();
        let full = get(&demo, OK_TARGET);
        assert!(full.starts_with("HTTP/1.0 200"), "{full}");
        assert!(full.contains("hello"), "{full}");
        assert!(full.contains("Connection: close"), "{full}");
        let etag = full
            .lines()
            .find_map(|l| l.strip_prefix("ETag: "))
            .expect("200 carries an entity tag")
            .trim()
            .to_string();
        let mut conn = TcpStream::connect(demo.addr()).unwrap();
        write!(conn, "GET {OK_TARGET} HTTP/1.0\r\nIf-None-Match: {etag}\r\n\r\n").unwrap();
        let mut buf = String::new();
        conn.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.0 304"), "{buf}");
    }

    #[test]
    fn keep_alive_serves_sequential_requests_on_one_connection() {
        let demo = demo();
        let mut conn = TcpStream::connect(demo.addr()).unwrap();
        write!(conn, "GET {OK_TARGET} HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        let first = read_one_response(&mut conn);
        assert!(first.starts_with("HTTP/1.0 200"), "{first}");
        assert!(first.contains("Connection: keep-alive"), "{first}");
        write!(conn, "GET {OK_TARGET} HTTP/1.0\r\nConnection: close\r\n\r\n").unwrap();
        let second = read_one_response(&mut conn);
        assert!(second.starts_with("HTTP/1.0 200"), "{second}");
        assert!(second.contains("Connection: close"), "{second}");
    }

    #[test]
    fn pipelined_requests_are_answered_in_order() {
        let demo = demo();
        let mut conn = TcpStream::connect(demo.addr()).unwrap();
        // Both requests up front; the loop answers serially, in order.
        write!(
            conn,
            "GET {OK_TARGET} HTTP/1.0\r\nConnection: keep-alive\r\n\r\n\
             GET /metrics HTTP/1.0\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let first = read_one_response(&mut conn);
        assert!(first.starts_with("HTTP/1.0 200"), "{first}");
        assert!(first.contains("hello"), "{first}");
        let second = read_one_response(&mut conn);
        assert!(second.starts_with("HTTP/1.0 200"), "{second}");
        assert!(second.contains("xmlsec_server_open_connections"), "{second}");
    }

    #[test]
    fn slow_loris_gets_408() {
        let cfg = HttpConfig { read_timeout: Duration::from_millis(150), ..Default::default() };
        let demo = EpollDemo::start_with(test_server(), "127.0.0.1:0", cfg).unwrap();
        let mut conn = TcpStream::connect(demo.addr()).unwrap();
        write!(conn, "GET /doc.xml").unwrap(); // never completes the head
        let mut buf = String::new();
        conn.read_to_string(&mut buf).unwrap();
        assert!(buf.is_empty() || buf.starts_with("HTTP/1.0 408"), "{buf}");
    }

    #[test]
    fn transport_parses_and_rejects() {
        assert_eq!("pool".parse::<Transport>().unwrap(), Transport::Pool);
        assert_eq!("epoll".parse::<Transport>().unwrap(), Transport::Epoll);
        assert!("uring".parse::<Transport>().is_err());
        assert_eq!(Transport::Epoll.to_string(), "epoll");
        assert_eq!(Transport::default(), Transport::Pool);
    }

    // --- POST /update ---------------------------------------------------

    fn writable_server() -> SecureServer {
        let mut dir = Directory::new();
        dir.add_user("tom").unwrap();
        let mut base = AuthorizationBase::new();
        base.add(Authorization::new(
            Subject::new("tom", "*", "*").unwrap(),
            ObjectSpec::with_path("doc.xml", "/d").unwrap(),
            Sign::Plus,
            AuthType::Recursive,
        ));
        base.add(
            Authorization::new(
                Subject::new("tom", "*", "*").unwrap(),
                ObjectSpec::with_path("doc.xml", "/d").unwrap(),
                Sign::Plus,
                AuthType::Recursive,
            )
            .with_action(xmlsec_authz::Action::Write),
        );
        let mut s = SecureServer::new(dir, base);
        s.register_credentials("tom", "pw");
        s.repository_mut().put_document("doc.xml", "<d><pub>hello</pub></d>", None);
        s
    }

    const UPDATE_TARGET: &str = "/update?doc=doc.xml&user=tom&pass=pw&ip=1.2.3.4&host=h.x.org";

    fn post(demo: &EpollDemo, target: &str, body: &str) -> String {
        let mut conn = TcpStream::connect(demo.addr()).unwrap();
        write!(
            conn,
            "POST {target} HTTP/1.0\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut buf = String::new();
        conn.read_to_string(&mut buf).unwrap();
        buf
    }

    #[test]
    fn updates_over_the_event_loop() {
        let demo = EpollDemo::start(writable_server(), "127.0.0.1:0").unwrap();
        let resp = post(&demo, UPDATE_TARGET, "settext /d/pub\tpatched\n");
        assert!(resp.starts_with("HTTP/1.0 200"), "{resp}");
        assert!(resp.contains("updated 1"), "{resp}");
        // The committed batch is visible through the same event loop.
        let view = get(&demo, OK_TARGET);
        assert!(view.contains("patched"), "{view}");
        assert!(!view.contains("hello"), "{view}");
    }

    #[test]
    fn update_body_split_across_packets_is_reassembled() {
        let demo = EpollDemo::start(writable_server(), "127.0.0.1:0").unwrap();
        let body = "settext /d/pub\tlate\n";
        let mut conn = TcpStream::connect(demo.addr()).unwrap();
        write!(
            conn,
            "POST {UPDATE_TARGET} HTTP/1.0\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .unwrap();
        conn.flush().unwrap();
        // The head is complete but the body is not: the loop must keep
        // the connection in read state rather than answering early.
        std::thread::sleep(Duration::from_millis(50));
        let (a, b) = body.split_at(7);
        conn.write_all(a.as_bytes()).unwrap();
        conn.flush().unwrap();
        std::thread::sleep(Duration::from_millis(50));
        conn.write_all(b.as_bytes()).unwrap();
        let mut buf = String::new();
        conn.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.0 200"), "{buf}");
        assert!(buf.contains("updated 1"), "{buf}");
    }

    #[test]
    fn event_loop_update_errors_mirror_the_pool() {
        let demo = EpollDemo::start(writable_server(), "127.0.0.1:0").unwrap();
        // Malformed op line.
        let bad = post(&demo, UPDATE_TARGET, "frobnicate /d\n");
        assert!(bad.starts_with("HTTP/1.0 400"), "{bad}");
        // Missing doc parameter.
        let nodoc =
            post(&demo, "/update?user=tom&pass=pw&ip=1.2.3.4&host=h.x.org", "delete /d/pub\n");
        assert!(nodoc.starts_with("HTTP/1.0 400"), "{nodoc}");
        // Wrong password.
        let unauth = post(
            &demo,
            "/update?doc=doc.xml&user=tom&pass=oops&ip=1.2.3.4&host=h.x.org",
            "settext /d/pub\tx\n",
        );
        assert!(unauth.starts_with("HTTP/1.0 401"), "{unauth}");
        // No Content-Length.
        let mut conn = TcpStream::connect(demo.addr()).unwrap();
        write!(conn, "POST {UPDATE_TARGET} HTTP/1.0\r\nHost: t\r\n\r\n").unwrap();
        let mut buf = String::new();
        conn.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.0 411"), "{buf}");
        // Oversized declared body is refused before it is read.
        let mut conn2 = TcpStream::connect(demo.addr()).unwrap();
        write!(
            conn2,
            "POST {UPDATE_TARGET} HTTP/1.0\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
            crate::http::MAX_UPDATE_BODY + 1
        )
        .unwrap();
        let mut buf2 = String::new();
        conn2.read_to_string(&mut buf2).unwrap();
        assert!(buf2.starts_with("HTTP/1.0 413"), "{buf2}");
        // Nothing committed by any of the failures.
        let view = get(&demo, OK_TARGET);
        assert!(view.contains("hello"), "{view}");
    }
}
