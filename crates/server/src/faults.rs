//! Feature-gated fault injection for robustness testing.
//!
//! Compiled only with the `faults` feature (test builds enable it via a
//! dev-dependency; release builds never carry the hooks). Tests arm a
//! named injection point with an action and a shot count; the server's
//! request path calls [`check`] at those points and suffers the armed
//! fault. Points currently wired:
//!
//! - `"handle.start"` — start of per-connection handling (before the
//!   request line is read);
//! - `"process.request"` — immediately before the security processor is
//!   invoked for a view or query request;
//! - `"respond.write"` — immediately before the success response is
//!   written back.
//!
//! Arming is process-global, so tests that use it must not run
//! concurrently with each other (keep all fault scenarios in one `#[test]`
//! or serialize them explicitly).

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// What an armed injection point does when hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic at the point (exercises panic isolation).
    Panic,
    /// Sleep this many milliseconds (exercises timeouts/backpressure).
    SleepMs(u64),
    /// Abandon the connection without writing a response (exercises
    /// client-side handling of mid-stream disconnects).
    Disconnect,
}

fn registry() -> &'static Mutex<HashMap<&'static str, (FaultAction, u32)>> {
    static REG: OnceLock<Mutex<HashMap<&'static str, (FaultAction, u32)>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Arms `point` to fire `action` the next `times` times it is reached.
pub fn arm(point: &'static str, action: FaultAction, times: u32) {
    if let Ok(mut reg) = registry().lock() {
        reg.insert(point, (action, times));
    }
}

/// Disarms one point.
pub fn disarm(point: &str) {
    if let Ok(mut reg) = registry().lock() {
        reg.remove(point);
    }
}

/// Disarms everything.
pub fn clear() {
    if let Ok(mut reg) = registry().lock() {
        reg.clear();
    }
}

/// Called by the server at an injection point. Executes Panic/Sleep
/// inline; returns `true` when the caller should drop the connection.
pub(crate) fn check(point: &str) -> bool {
    let action = {
        let Ok(mut reg) = registry().lock() else { return false };
        match reg.get_mut(point) {
            Some((action, times)) => {
                let a = *action;
                *times -= 1;
                if *times == 0 {
                    reg.remove(point);
                }
                Some(a)
            }
            None => None,
        }
    };
    match action {
        Some(FaultAction::Panic) => panic!("injected fault at {point}"),
        Some(FaultAction::SleepMs(ms)) => {
            std::thread::sleep(Duration::from_millis(ms));
            false
        }
        Some(FaultAction::Disconnect) => true,
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn armed_points_fire_then_expire() {
        clear();
        arm("t.sleep", FaultAction::SleepMs(1), 2);
        assert!(!check("t.sleep"));
        assert!(!check("t.sleep"));
        // Exhausted after two shots.
        assert!(!check("t.sleep"));
        arm("t.disc", FaultAction::Disconnect, 1);
        assert!(check("t.disc"));
        assert!(!check("t.disc"));
        arm("t.gone", FaultAction::Disconnect, 1);
        disarm("t.gone");
        assert!(!check("t.gone"));
        clear();
    }

    #[test]
    fn panic_action_panics() {
        arm("t.panic", FaultAction::Panic, 1);
        let r = std::panic::catch_unwind(|| check("t.panic"));
        assert!(r.is_err());
    }
}
