//! Feature-gated fault injection for robustness testing.
//!
//! Compiled only with the `faults` feature (test builds enable it via a
//! dev-dependency; release builds never carry the hooks). Tests arm a
//! named injection point with an action and a shot count; the server's
//! request path calls [`check`] at those points and suffers the armed
//! fault. Points currently wired:
//!
//! - `"handle.start"` — start of per-connection handling (before the
//!   request line is read);
//! - `"process.request"` — immediately before the security processor is
//!   invoked for a view or query request;
//! - `"respond.write"` — immediately before the success response is
//!   written back.
//!
//! Two arming modes:
//!
//! - [`arm`] fires deterministically for the next `times` hits — for
//!   pinpoint scenario tests;
//! - [`arm_probabilistic`] fires each hit with a fixed probability from
//!   a seeded xorshift64* stream — for randomized chaos soaks. The
//!   stream is deterministic per seed, so a failing soak replays
//!   exactly.
//!
//! Arming is process-global, so tests that use it must not run
//! concurrently with each other (keep all fault scenarios in one `#[test]`
//! or serialize them explicitly).

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// What an armed injection point does when hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic at the point (exercises panic isolation).
    Panic,
    /// Sleep this many milliseconds (exercises timeouts/backpressure).
    SleepMs(u64),
    /// Abandon the connection without writing a response (exercises
    /// client-side handling of mid-stream disconnects).
    Disconnect,
    /// Sleep a uniformly random duration in `[min, max]` milliseconds,
    /// drawn from the armed point's seeded stream (exercises latency
    /// variance: deadline races, sojourn spikes, admission control).
    JitterMs(u64, u64),
}

/// One armed injection point.
struct Armed {
    action: FaultAction,
    /// Hits left before the point disarms itself; `u32::MAX` never
    /// exhausts (probabilistic soaks run until cleared).
    remaining: u32,
    /// Firing probability in parts per million (1_000_000 = always).
    per_million: u32,
    /// xorshift64* state for probability rolls and jitter draws.
    rng: u64,
}

fn registry() -> &'static Mutex<HashMap<&'static str, Armed>> {
    static REG: OnceLock<Mutex<HashMap<&'static str, Armed>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(HashMap::new()))
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// Arms `point` to fire `action` the next `times` times it is reached.
pub fn arm(point: &'static str, action: FaultAction, times: u32) {
    if let Ok(mut reg) = registry().lock() {
        reg.insert(point, Armed { action, remaining: times, per_million: 1_000_000, rng: 1 });
    }
}

/// Arms `point` to fire `action` with probability `per_million` /
/// 1 000 000 on each hit, forever (until [`disarm`]/[`clear`]). The
/// seeded stream makes a chaos run reproducible: the same seed and the
/// same hit sequence fire the same faults.
pub fn arm_probabilistic(point: &'static str, action: FaultAction, per_million: u32, seed: u64) {
    if let Ok(mut reg) = registry().lock() {
        reg.insert(
            point,
            Armed {
                action,
                remaining: u32::MAX,
                per_million: per_million.min(1_000_000),
                // xorshift must never be seeded with zero (it would stick).
                rng: seed | 1,
            },
        );
    }
}

/// Disarms one point.
pub fn disarm(point: &str) {
    if let Ok(mut reg) = registry().lock() {
        reg.remove(point);
    }
}

/// Disarms everything.
pub fn clear() {
    if let Ok(mut reg) = registry().lock() {
        reg.clear();
    }
}

/// Called by the server at an injection point. Executes Panic/Sleep
/// inline; returns `true` when the caller should drop the connection.
pub(crate) fn check(point: &str) -> bool {
    let action = {
        let Ok(mut reg) = registry().lock() else { return false };
        match reg.get_mut(point) {
            Some(armed) => {
                let fires = armed.per_million >= 1_000_000
                    || (xorshift(&mut armed.rng) % 1_000_000) < u64::from(armed.per_million);
                if !fires {
                    None
                } else {
                    let a = match armed.action {
                        // Resolve the jitter draw while we hold the state.
                        FaultAction::JitterMs(min, max) => {
                            let span = max.saturating_sub(min).saturating_add(1);
                            FaultAction::SleepMs(min + xorshift(&mut armed.rng) % span)
                        }
                        other => other,
                    };
                    if armed.remaining != u32::MAX {
                        armed.remaining -= 1;
                        if armed.remaining == 0 {
                            reg.remove(point);
                        }
                    }
                    Some(a)
                }
            }
            None => None,
        }
    };
    match action {
        Some(FaultAction::Panic) => panic!("injected fault at {point}"),
        Some(FaultAction::SleepMs(ms)) => {
            std::thread::sleep(Duration::from_millis(ms));
            false
        }
        Some(FaultAction::Disconnect) => true,
        // JitterMs is rewritten to SleepMs above.
        Some(FaultAction::JitterMs(..)) | None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn armed_points_fire_then_expire() {
        clear();
        arm("t.sleep", FaultAction::SleepMs(1), 2);
        assert!(!check("t.sleep"));
        assert!(!check("t.sleep"));
        // Exhausted after two shots.
        assert!(!check("t.sleep"));
        arm("t.disc", FaultAction::Disconnect, 1);
        assert!(check("t.disc"));
        assert!(!check("t.disc"));
        arm("t.gone", FaultAction::Disconnect, 1);
        disarm("t.gone");
        assert!(!check("t.gone"));
        clear();
    }

    #[test]
    fn panic_action_panics() {
        arm("t.panic", FaultAction::Panic, 1);
        let r = std::panic::catch_unwind(|| check("t.panic"));
        assert!(r.is_err());
    }

    #[test]
    fn probabilistic_arming_is_seeded_and_roughly_calibrated() {
        clear();
        // ~50% disconnects over 400 hits: comfortably inside [100, 300].
        arm_probabilistic("t.prob", FaultAction::Disconnect, 500_000, 42);
        let fired: u32 = (0..400).map(|_| u32::from(check("t.prob"))).sum();
        assert!((100..=300).contains(&fired), "fired {fired}/400");
        disarm("t.prob");

        // The same seed replays the same firing pattern.
        let pattern = |seed| {
            arm_probabilistic("t.replay", FaultAction::Disconnect, 250_000, seed);
            let p: Vec<bool> = (0..64).map(|_| check("t.replay")).collect();
            disarm("t.replay");
            p
        };
        assert_eq!(pattern(7), pattern(7));
        assert_ne!(pattern(7), pattern(8), "different seeds diverge");

        // Zero probability never fires.
        arm_probabilistic("t.never", FaultAction::Panic, 0, 3);
        for _ in 0..100 {
            assert!(!check("t.never"));
        }
        clear();
    }

    #[test]
    fn jitter_sleeps_within_bounds() {
        clear();
        arm("t.jit", FaultAction::JitterMs(0, 2), 8);
        let t = std::time::Instant::now();
        for _ in 0..8 {
            assert!(!check("t.jit"));
        }
        // 8 draws in [0, 2] ms must land well under a second.
        assert!(t.elapsed() < Duration::from_secs(1));
        clear();
    }
}
