//! Pins the multi-instance accounting of the `xmlsec_view_cache_entries`
//! gauge: two live `ViewCache`s must *sum* into the shared gauge instead
//! of clobbering each other's value (the old `set(len)` implementation
//! made whichever cache last changed win).
//!
//! This lives in its own integration-test binary with exactly one test
//! function: the telemetry registry is process-global, and sibling tests
//! running on other threads of a shared binary would race the gauge.

use xmlsec_server::{CachedView, ViewCache, ViewKey};
use xmlsec_telemetry as telemetry;

fn entries_gauge() -> i64 {
    telemetry::global()
        .render_prometheus()
        .lines()
        .find(|l| l.starts_with("xmlsec_view_cache_entries") && !l.starts_with('#'))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn key(uri: &str, fp: u64) -> ViewKey {
    ViewKey { uri: uri.to_string(), fingerprint: fp, content: 1 }
}

fn view() -> CachedView {
    CachedView { xml: "<v/>".to_string(), loosened_dtd: None, etag: "t".to_string() }
}

#[test]
fn two_live_caches_sum_into_the_entries_gauge() {
    let base = entries_gauge();

    let a = ViewCache::new();
    let b = ViewCache::with_capacity(8);
    a.put(key("a1", 1), view());
    a.put(key("a2", 1), view());
    a.put(key("a3", 1), view());
    b.put(key("b1", 1), view());
    b.put(key("b2", 1), view());
    assert_eq!(entries_gauge(), base + 5, "both caches contribute");

    // Touching one cache must not erase the other's contribution.
    assert_eq!(a.invalidate_uri("a1"), 1);
    assert_eq!(entries_gauge(), base + 4);

    // Overwriting an existing key changes nothing.
    b.put(key("b1", 1), view());
    assert_eq!(entries_gauge(), base + 4);

    // Eviction decrements.
    let c = ViewCache::with_capacity(1);
    c.put(key("c1", 1), view());
    c.put(key("c2", 1), view());
    assert_eq!(c.len(), 1);
    assert_eq!(entries_gauge(), base + 5);

    // A stale-twin sweep decrements.
    assert!(c.get(&ViewKey { uri: "c2".into(), fingerprint: 1, content: 2 }).is_none());
    assert_eq!(c.len(), 0);
    assert_eq!(entries_gauge(), base + 4);

    // Dropping a cache returns its remaining entries to the gauge.
    drop(b);
    assert_eq!(entries_gauge(), base + 2);

    a.clear();
    assert_eq!(entries_gauge(), base);
    drop(a);
    drop(c);
    assert_eq!(entries_gauge(), base, "drop after clear must not double-subtract");
}
