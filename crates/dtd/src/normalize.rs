//! Attribute-value normalization: injecting DTD default values.
//!
//! XML 1.0 §3.3.2: an attribute declared with a default value (plain
//! default or `#FIXED`) that is absent from an element is treated as
//! present with that value. The security processor normalizes documents
//! *before* labeling so that authorizations conditioned on defaulted
//! attributes (`project[./@status="active"]`) behave identically whether
//! the instance spells the attribute out or relies on the DTD.

use crate::ast::{DefaultDecl, Dtd};
use xmlsec_xml::Document;

/// Adds missing defaulted/fixed attributes throughout `doc`. Returns the
/// number of attributes injected.
pub fn normalize(dtd: &Dtd, doc: &mut Document) -> usize {
    let mut injected = 0usize;
    let mut stack = vec![doc.root()];
    while let Some(el) = stack.pop() {
        if let Some(name) = doc.element_name(el) {
            // Collect (name, value) pairs first: `doc` cannot be borrowed
            // mutably while iterating the declarations it owns.
            let missing: Vec<(String, String)> = dtd
                .attributes(name)
                .iter()
                .filter_map(|def| match &def.default {
                    DefaultDecl::Default(v) | DefaultDecl::Fixed(v)
                        if doc.attribute(el, &def.name).is_none() =>
                    {
                        Some((def.name.clone(), v.clone()))
                    }
                    _ => None,
                })
                .collect();
            for (n, v) in missing {
                doc.set_attribute(el, &n, &v).expect("element accepts attributes");
                injected += 1;
            }
        }
        for c in doc.child_elements(el) {
            stack.push(c);
        }
    }
    injected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_dtd;
    use xmlsec_xml::{parse, serialize, SerializeOptions};

    fn dtd() -> Dtd {
        parse_dtd(
            r#"<!ELEMENT lab (project*)>
               <!ELEMENT project EMPTY>
               <!ATTLIST project
                   status CDATA "active"
                   version CDATA #FIXED "1"
                   name CDATA #REQUIRED
                   note CDATA #IMPLIED>"#,
        )
        .expect("fixture DTD parses")
    }

    #[test]
    fn injects_default_and_fixed_only() {
        let mut doc = parse(r#"<lab><project name="p"/></lab>"#).unwrap();
        let n = normalize(&dtd(), &mut doc);
        assert_eq!(n, 2); // status + version; not name (#REQUIRED), not note (#IMPLIED)
        let out = serialize(&doc, &SerializeOptions::canonical());
        assert!(out.contains(r#"status="active""#), "{out}");
        assert!(out.contains(r#"version="1""#), "{out}");
        assert!(!out.contains("note"), "{out}");
    }

    #[test]
    fn explicit_values_win() {
        let mut doc = parse(r#"<lab><project name="p" status="done"/></lab>"#).unwrap();
        normalize(&dtd(), &mut doc);
        let p = doc.child_elements(doc.root()).next().unwrap();
        assert_eq!(doc.attribute(p, "status"), Some("done"));
    }

    #[test]
    fn undeclared_elements_untouched() {
        let mut doc = parse("<other><thing/></other>").unwrap();
        assert_eq!(normalize(&dtd(), &mut doc), 0);
    }

    #[test]
    fn normalization_is_idempotent() {
        let mut doc = parse(r#"<lab><project name="p"/><project name="q"/></lab>"#).unwrap();
        assert_eq!(normalize(&dtd(), &mut doc), 4);
        assert_eq!(normalize(&dtd(), &mut doc), 0);
    }

    #[test]
    fn conditions_see_injected_defaults() {
        let mut doc = parse(r#"<lab><project name="p"/></lab>"#).unwrap();
        normalize(&dtd(), &mut doc);
        let hits = xmlsec_xpath_select(&doc, r#"/lab/project[./@status="active"]"#);
        assert_eq!(hits, 1);
    }

    // The dtd crate cannot depend on xmlsec-xpath (xpath depends on dtd);
    // emulate the condition with direct attribute access.
    fn xmlsec_xpath_select(doc: &Document, _path: &str) -> usize {
        doc.child_elements(doc.root())
            .filter(|&p| doc.attribute(p, "status") == Some("active"))
            .count()
    }
}
