//! # xmlsec-dtd — DTD substrate for the *Securing XML Documents* system
//!
//! Document Type Definitions are the paper's *schemas*: schema-level
//! authorizations attach to them, instances validate against them, and the
//! §6.2 *loosening* transformation rewrites them so pruned views stay
//! valid without revealing what was hidden.
//!
//! - [`parser::parse_dtd`] — `<!ELEMENT>`/`<!ATTLIST>`/`<!ENTITY>`/
//!   `<!NOTATION>` declarations, parameter-entity expansion;
//! - [`glushkov::ContentAutomaton`] — content models compiled to Glushkov
//!   position automata (subset simulation, determinism check);
//! - [`validate::Validator`] — full validity: content models, attribute
//!   types, ID/IDREF consistency;
//! - [`loosen::loosen`] — the paper's loosening transformation;
//! - [`tree`] — the labeled-tree rendering of a DTD (paper Figure 1(b));
//! - [`serialize::serialize_dtd`] — write a DTD back to text.
//!
//! ```
//! use xmlsec_dtd::{parse_dtd, loosen, validate};
//!
//! let dtd = parse_dtd(r#"
//!     <!ELEMENT laboratory (project+)>
//!     <!ELEMENT project (#PCDATA)>
//!     <!ATTLIST project name CDATA #REQUIRED>
//! "#).unwrap();
//! let doc = xmlsec_xml::parse("<laboratory><project/></laboratory>").unwrap();
//! assert!(!validate(&dtd, &doc).is_empty());         // @name missing
//! assert!(validate(&loosen(&dtd), &doc).is_empty()); // fine once loosened
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod glushkov;
pub mod loosen;
pub mod normalize;
pub mod parser;
pub mod serialize;
pub mod tree;
pub mod validate;

pub use ast::{
    AttDef, AttType, Cardinality, ContentSpec, DefaultDecl, Dtd, ElementDecl, Particle,
    ParticleKind,
};
pub use error::{DtdError, ValidityError};
pub use loosen::loosen;
pub use normalize::normalize;
pub use parser::parse_dtd;
pub use serialize::serialize_dtd;
pub use tree::{dtd_tree, render_dtd_tree, DtdNodeKind, DtdTreeNode};
pub use validate::{validate, ValidateOptions, Validator};
