//! Tree representation of a DTD (the paper's Figure 1(b)).
//!
//! "A DTD is represented as a labeled tree containing a node for each
//! attribute and element in the DTD. There is an arc between elements and
//! each element/attribute belonging to them, labeled with the cardinality
//! of the relationship. Elements are represented as circles and attributes
//! as squares."
//!
//! Recursive element declarations are cut at the repeated element (the
//! node is rendered with a `^` back-reference marker) so the tree is
//! finite.

use crate::ast::{Cardinality, ContentSpec, DefaultDecl, Dtd, Particle, ParticleKind};

/// A node of the DTD tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DtdTreeNode {
    /// What the node is.
    pub kind: DtdNodeKind,
    /// Cardinality label on the arc from the parent (`One` for the root
    /// and for attributes, whose optionality is in `kind`).
    pub arc: Cardinality,
    /// Child nodes.
    pub children: Vec<DtdTreeNode>,
}

/// Node kinds in a DTD tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DtdNodeKind {
    /// An element (a "circle" in the paper's drawing).
    Element {
        /// Element name.
        name: String,
        /// Set when this element is an ancestor of itself (recursion cut).
        back_reference: bool,
    },
    /// An attribute (a "square"), with its optionality.
    Attribute {
        /// Attribute name.
        name: String,
        /// `true` for `#REQUIRED`/`#FIXED` (must be present/defaulted).
        required: bool,
    },
    /// `#PCDATA` content marker.
    Text,
}

/// Builds the tree rooted at `root_element`.
///
/// Returns `None` if `root_element` is not declared.
pub fn dtd_tree(dtd: &Dtd, root_element: &str) -> Option<DtdTreeNode> {
    dtd.element(root_element)?;
    let mut path = Vec::new();
    Some(build(dtd, root_element, Cardinality::One, &mut path))
}

fn build(dtd: &Dtd, name: &str, arc: Cardinality, path: &mut Vec<String>) -> DtdTreeNode {
    if path.iter().any(|p| p == name) {
        return DtdTreeNode {
            kind: DtdNodeKind::Element { name: name.to_string(), back_reference: true },
            arc,
            children: Vec::new(),
        };
    }
    path.push(name.to_string());
    let mut children = Vec::new();
    for def in dtd.attributes(name) {
        children.push(DtdTreeNode {
            kind: DtdNodeKind::Attribute {
                name: def.name.clone(),
                required: matches!(def.default, DefaultDecl::Required | DefaultDecl::Fixed(_)),
            },
            arc: Cardinality::One,
            children: Vec::new(),
        });
    }
    if let Some(decl) = dtd.element(name) {
        match &decl.content {
            ContentSpec::Empty | ContentSpec::Any => {}
            ContentSpec::Mixed(names) => {
                children.push(DtdTreeNode {
                    kind: DtdNodeKind::Text,
                    arc: Cardinality::One,
                    children: Vec::new(),
                });
                for n in names {
                    children.push(build(dtd, n, Cardinality::ZeroOrMore, path));
                }
            }
            ContentSpec::Children(p) => {
                collect_particle(dtd, p, Cardinality::One, path, &mut children);
            }
        }
    }
    path.pop();
    DtdTreeNode {
        kind: DtdNodeKind::Element { name: name.to_string(), back_reference: false },
        arc,
        children,
    }
}

/// Flattens a content particle into child arcs; group cardinalities
/// combine with inner ones (the stronger repetition / weaker requirement
/// wins so the arc label reflects effective occurrence).
fn collect_particle(
    dtd: &Dtd,
    p: &Particle,
    outer: Cardinality,
    path: &mut Vec<String>,
    out: &mut Vec<DtdTreeNode>,
) {
    let eff = combine(outer, p.card);
    match &p.kind {
        ParticleKind::Name(n) => out.push(build(dtd, n, eff, path)),
        ParticleKind::Seq(items) => {
            for i in items {
                collect_particle(dtd, i, eff, path, out);
            }
        }
        ParticleKind::Choice(items) => {
            // Members of a choice are individually optional.
            let inner = combine(eff, Cardinality::Optional);
            for i in items {
                collect_particle(dtd, i, inner, path, out);
            }
        }
    }
}

fn combine(a: Cardinality, b: Cardinality) -> Cardinality {
    use Cardinality::*;
    let zero = a.allows_zero() || b.allows_zero();
    let many = a.allows_many() || b.allows_many();
    match (zero, many) {
        (false, false) => One,
        (true, false) => Optional,
        (false, true) => OneOrMore,
        (true, true) => ZeroOrMore,
    }
}

/// Renders the tree as ASCII art in the style of the paper's figures.
pub fn render_dtd_tree(root: &DtdTreeNode) -> String {
    let mut out = String::new();
    render(root, "", true, true, &mut out);
    out
}

fn render(n: &DtdTreeNode, prefix: &str, is_last: bool, is_root: bool, out: &mut String) {
    let connector = if is_root {
        ""
    } else if is_last {
        "`-- "
    } else {
        "|-- "
    };
    let label = match &n.kind {
        DtdNodeKind::Element { name, back_reference: false } => format!("({name}){}", n.arc),
        DtdNodeKind::Element { name, back_reference: true } => format!("({name})^{}", n.arc),
        DtdNodeKind::Attribute { name, required } => {
            format!("[{name}]{}", if *required { "" } else { "?" })
        }
        DtdNodeKind::Text => "#PCDATA".to_string(),
    };
    out.push_str(prefix);
    out.push_str(connector);
    out.push_str(&label);
    out.push('\n');
    let child_prefix = if is_root {
        "  ".to_string()
    } else if is_last {
        format!("{prefix}    ")
    } else {
        format!("{prefix}|   ")
    };
    for (i, c) in n.children.iter().enumerate() {
        render(c, &child_prefix, i + 1 == n.children.len(), false, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_dtd;

    fn lab() -> Dtd {
        parse_dtd(
            r#"
            <!ELEMENT laboratory (project+)>
            <!ELEMENT project (manager, paper*)>
            <!ATTLIST project name CDATA #REQUIRED type CDATA #IMPLIED>
            <!ELEMENT manager (#PCDATA)>
            <!ELEMENT paper (#PCDATA)>
            "#,
        )
        .unwrap()
    }

    #[test]
    fn tree_shape() {
        let t = dtd_tree(&lab(), "laboratory").unwrap();
        assert!(matches!(&t.kind, DtdNodeKind::Element { name, .. } if name == "laboratory"));
        assert_eq!(t.children.len(), 1); // project
        let project = &t.children[0];
        assert_eq!(project.arc, Cardinality::OneOrMore);
        // attrs first: name, type; then manager, paper
        assert_eq!(project.children.len(), 4);
        assert!(matches!(&project.children[0].kind,
            DtdNodeKind::Attribute { name, required: true } if name == "name"));
        assert!(matches!(&project.children[1].kind,
            DtdNodeKind::Attribute { name, required: false } if name == "type"));
        assert_eq!(project.children[3].arc, Cardinality::ZeroOrMore);
    }

    #[test]
    fn unknown_root_is_none() {
        assert!(dtd_tree(&lab(), "nothere").is_none());
    }

    #[test]
    fn recursion_is_cut_with_back_reference() {
        let dtd = parse_dtd("<!ELEMENT part (part*)>").unwrap();
        let t = dtd_tree(&dtd, "part").unwrap();
        let child = &t.children[0];
        assert!(matches!(&child.kind, DtdNodeKind::Element { back_reference: true, .. }));
        assert!(child.children.is_empty());
    }

    #[test]
    fn choice_members_are_optional() {
        let dtd = parse_dtd("<!ELEMENT a (b | c)><!ELEMENT b EMPTY><!ELEMENT c EMPTY>").unwrap();
        let t = dtd_tree(&dtd, "a").unwrap();
        assert_eq!(t.children[0].arc, Cardinality::Optional);
        assert_eq!(t.children[1].arc, Cardinality::Optional);
    }

    #[test]
    fn mixed_content_adds_text_node() {
        let dtd = parse_dtd("<!ELEMENT p (#PCDATA|b)*><!ELEMENT b EMPTY>").unwrap();
        let t = dtd_tree(&dtd, "p").unwrap();
        assert!(matches!(t.children[0].kind, DtdNodeKind::Text));
        assert_eq!(t.children[1].arc, Cardinality::ZeroOrMore);
    }

    #[test]
    fn render_contains_figure_style_markers() {
        let t = dtd_tree(&lab(), "laboratory").unwrap();
        let s = render_dtd_tree(&t);
        assert!(s.contains("(laboratory)"), "{s}");
        assert!(s.contains("(project)+"), "{s}");
        assert!(s.contains("[name]"), "{s}");
        assert!(s.contains("[type]?"), "{s}");
        assert!(s.contains("(paper)*"), "{s}");
    }

    #[test]
    fn cardinality_combination() {
        use Cardinality::*;
        assert_eq!(combine(One, One), One);
        assert_eq!(combine(One, Optional), Optional);
        assert_eq!(combine(OneOrMore, Optional), ZeroOrMore);
        assert_eq!(combine(ZeroOrMore, One), ZeroOrMore);
        assert_eq!(combine(OneOrMore, OneOrMore), OneOrMore);
    }
}
