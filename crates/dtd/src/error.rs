//! DTD parsing and validation errors.

use std::fmt;

/// An error raised while parsing a DTD.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DtdError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the DTD text where the error was detected.
    pub offset: usize,
}

impl DtdError {
    /// Builds an error at `offset`.
    pub fn new(message: impl Into<String>, offset: usize) -> Self {
        DtdError { message: message.into(), offset }
    }
}

impl fmt::Display for DtdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DTD error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for DtdError {}

/// Result alias for DTD parsing.
pub type Result<T> = std::result::Result<T, DtdError>;

/// A single validity violation found when checking a document against a DTD.
///
/// Validation collects all violations rather than stopping at the first,
/// so a server can log a complete diagnosis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidityError {
    /// The document element does not match the DOCTYPE name.
    RootMismatch {
        /// Name in the DOCTYPE.
        declared: String,
        /// Actual document element.
        found: String,
    },
    /// An element with no `<!ELEMENT>` declaration.
    UndeclaredElement(String),
    /// An attribute with no `<!ATTLIST>` definition.
    UndeclaredAttribute {
        /// Owning element.
        element: String,
        /// Attribute name.
        attribute: String,
    },
    /// A `#REQUIRED` attribute is missing.
    MissingRequiredAttribute {
        /// Owning element.
        element: String,
        /// Attribute name.
        attribute: String,
    },
    /// A `#FIXED` attribute has the wrong value.
    FixedValueMismatch {
        /// Owning element.
        element: String,
        /// Attribute name.
        attribute: String,
        /// Declared fixed value.
        expected: String,
        /// Value found in the instance.
        found: String,
    },
    /// An enumerated attribute has a value outside the enumeration.
    InvalidEnumValue {
        /// Owning element.
        element: String,
        /// Attribute name.
        attribute: String,
        /// Offending value.
        value: String,
    },
    /// An attribute value is not a valid token for its declared type.
    InvalidTokenValue {
        /// Owning element.
        element: String,
        /// Attribute name.
        attribute: String,
        /// Offending value.
        value: String,
    },
    /// Two elements carry the same ID.
    DuplicateId(String),
    /// An IDREF points at no ID in the document.
    DanglingIdRef(String),
    /// An element's children do not match its content model.
    ContentModelMismatch {
        /// Owning element.
        element: String,
        /// The child-name sequence that failed.
        found: Vec<String>,
        /// Display form of the content model.
        model: String,
    },
    /// Text found inside an element declared with element-only content.
    UnexpectedText(String),
    /// Content found inside an element declared `EMPTY`.
    NonEmptyContent(String),
    /// A content model is not deterministic (XML 1.0 compatibility rule).
    NondeterministicModel {
        /// Owning element.
        element: String,
        /// The name that can be reached ambiguously.
        symbol: String,
    },
}

impl fmt::Display for ValidityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use ValidityError::*;
        match self {
            RootMismatch { declared, found } => {
                write!(f, "root element is <{found}> but DOCTYPE declares {declared}")
            }
            UndeclaredElement(e) => write!(f, "element <{e}> is not declared"),
            UndeclaredAttribute { element, attribute } => {
                write!(f, "attribute {attribute:?} on <{element}> is not declared")
            }
            MissingRequiredAttribute { element, attribute } => {
                write!(f, "required attribute {attribute:?} missing on <{element}>")
            }
            FixedValueMismatch { element, attribute, expected, found } => write!(
                f,
                "fixed attribute {attribute:?} on <{element}> must be {expected:?}, found {found:?}"
            ),
            InvalidEnumValue { element, attribute, value } => {
                write!(f, "value {value:?} of {attribute:?} on <{element}> not in enumeration")
            }
            InvalidTokenValue { element, attribute, value } => {
                write!(f, "value {value:?} of {attribute:?} on <{element}> is not a valid token")
            }
            DuplicateId(id) => write!(f, "duplicate ID {id:?}"),
            DanglingIdRef(id) => write!(f, "IDREF {id:?} matches no ID"),
            ContentModelMismatch { element, found, model } => write!(
                f,
                "children of <{element}> ({}) do not match content model {model}",
                found.join(",")
            ),
            UnexpectedText(e) => write!(f, "text content not allowed in <{e}>"),
            NonEmptyContent(e) => write!(f, "element <{e}> is declared EMPTY but has content"),
            NondeterministicModel { element, symbol } => {
                write!(f, "content model of <{element}> is nondeterministic on {symbol:?}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = ValidityError::MissingRequiredAttribute {
            element: "project".into(),
            attribute: "name".into(),
        };
        assert!(e.to_string().contains("project"));
        assert!(e.to_string().contains("name"));

        let d = DtdError::new("bad content model", 42);
        assert!(d.to_string().contains("42"));
    }
}
