//! DTD abstract syntax: element declarations with content models,
//! attribute-list declarations, and (captured but uninterpreted) entity and
//! notation declarations.
//!
//! The paper's §2 restricts the model to the logical structure — elements
//! and attributes — and notes that entities/notations "are not considered
//! in this paper"; we capture their declarations so DTDs round-trip, but we
//! do not expand general entities.

use std::collections::BTreeMap;
use std::fmt;

/// Occurrence indicator on a content particle (the paper's §2: `*`, `+`,
/// `?`, or no label for exactly one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cardinality {
    /// Exactly one (no label).
    One,
    /// Zero or one (`?`).
    Optional,
    /// Zero or more (`*`).
    ZeroOrMore,
    /// One or more (`+`).
    OneOrMore,
}

impl Cardinality {
    /// The suffix character, empty for [`Cardinality::One`].
    pub fn suffix(self) -> &'static str {
        match self {
            Cardinality::One => "",
            Cardinality::Optional => "?",
            Cardinality::ZeroOrMore => "*",
            Cardinality::OneOrMore => "+",
        }
    }

    /// `true` if the particle may be absent.
    pub fn allows_zero(self) -> bool {
        matches!(self, Cardinality::Optional | Cardinality::ZeroOrMore)
    }

    /// `true` if the particle may repeat.
    pub fn allows_many(self) -> bool {
        matches!(self, Cardinality::ZeroOrMore | Cardinality::OneOrMore)
    }

    /// The loosened form: anything required becomes optional
    /// (1 → ?, + → *). Used by the paper's §6.2 DTD loosening.
    pub fn loosened(self) -> Cardinality {
        match self {
            Cardinality::One => Cardinality::Optional,
            Cardinality::OneOrMore => Cardinality::ZeroOrMore,
            c => c,
        }
    }
}

impl fmt::Display for Cardinality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

/// A content particle: a name, a sequence, or a choice, with a cardinality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Particle {
    /// The particle body.
    pub kind: ParticleKind,
    /// Occurrence indicator.
    pub card: Cardinality,
}

/// The body of a [`Particle`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParticleKind {
    /// An element name.
    Name(String),
    /// `(a, b, c)` — ordered sequence.
    Seq(Vec<Particle>),
    /// `(a | b | c)` — exclusive choice.
    Choice(Vec<Particle>),
}

impl Particle {
    /// A bare element-name particle with cardinality one.
    pub fn name(n: &str) -> Particle {
        Particle { kind: ParticleKind::Name(n.to_string()), card: Cardinality::One }
    }

    /// Returns this particle with a different cardinality.
    pub fn with_card(mut self, card: Cardinality) -> Particle {
        self.card = card;
        self
    }

    /// All element names mentioned, in order of appearance (with repeats).
    pub fn names(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_names(&mut out);
        out
    }

    fn collect_names<'a>(&'a self, out: &mut Vec<&'a str>) {
        match &self.kind {
            ParticleKind::Name(n) => out.push(n),
            ParticleKind::Seq(ps) | ParticleKind::Choice(ps) => {
                for p in ps {
                    p.collect_names(out);
                }
            }
        }
    }
}

impl fmt::Display for Particle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ParticleKind::Name(n) => write!(f, "{n}{}", self.card)?,
            ParticleKind::Seq(ps) => {
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, "){}", self.card)?;
            }
            ParticleKind::Choice(ps) => {
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, "|")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, "){}", self.card)?;
            }
        }
        Ok(())
    }
}

/// The content specification of an element declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContentSpec {
    /// `EMPTY` — no content at all.
    Empty,
    /// `ANY` — any mixture of declared elements and text.
    Any,
    /// `(#PCDATA)` or `(#PCDATA | a | b)*` — text optionally interleaved
    /// with the listed elements.
    Mixed(Vec<String>),
    /// An element-content model.
    Children(Particle),
}

impl fmt::Display for ContentSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContentSpec::Empty => write!(f, "EMPTY"),
            ContentSpec::Any => write!(f, "ANY"),
            ContentSpec::Mixed(names) if names.is_empty() => write!(f, "(#PCDATA)"),
            ContentSpec::Mixed(names) => {
                write!(f, "(#PCDATA")?;
                for n in names {
                    write!(f, "|{n}")?;
                }
                write!(f, ")*")
            }
            // Element content must be parenthesized (XML 1.0 prod. 47):
            // a bare name particle prints as `(name)` with its
            // cardinality inside, which the parser collapses back.
            ContentSpec::Children(p) if matches!(p.kind, ParticleKind::Name(_)) => {
                write!(f, "({p})")
            }
            ContentSpec::Children(p) => write!(f, "{p}"),
        }
    }
}

/// `<!ELEMENT name contentspec>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElementDecl {
    /// Element name.
    pub name: String,
    /// Its content model.
    pub content: ContentSpec,
}

/// Declared type of an attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttType {
    /// `CDATA` — any string.
    Cdata,
    /// `ID` — unique per document.
    Id,
    /// `IDREF` — must match some ID.
    IdRef,
    /// `IDREFS` — whitespace-separated IDREFs.
    IdRefs,
    /// `NMTOKEN`.
    NmToken,
    /// `NMTOKENS`.
    NmTokens,
    /// `ENTITY` (captured; unexpanded).
    Entity,
    /// `ENTITIES` (captured; unexpanded).
    Entities,
    /// `(a|b|c)` enumeration.
    Enumeration(Vec<String>),
    /// `NOTATION (a|b)`.
    Notation(Vec<String>),
}

impl fmt::Display for AttType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttType::Cdata => write!(f, "CDATA"),
            AttType::Id => write!(f, "ID"),
            AttType::IdRef => write!(f, "IDREF"),
            AttType::IdRefs => write!(f, "IDREFS"),
            AttType::NmToken => write!(f, "NMTOKEN"),
            AttType::NmTokens => write!(f, "NMTOKENS"),
            AttType::Entity => write!(f, "ENTITY"),
            AttType::Entities => write!(f, "ENTITIES"),
            AttType::Enumeration(vs) => write!(f, "({})", vs.join("|")),
            AttType::Notation(vs) => write!(f, "NOTATION ({})", vs.join("|")),
        }
    }
}

/// Default declaration of an attribute (the paper's §2: *required*,
/// *implied*, or *fixed*).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DefaultDecl {
    /// `#REQUIRED` — must appear on every occurrence.
    Required,
    /// `#IMPLIED` — optional, no default.
    Implied,
    /// `#FIXED "v"` — if present must equal `v`; defaults to `v`.
    Fixed(String),
    /// `"v"` — optional with default `v`.
    Default(String),
}

impl fmt::Display for DefaultDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DefaultDecl::Required => write!(f, "#REQUIRED"),
            DefaultDecl::Implied => write!(f, "#IMPLIED"),
            DefaultDecl::Fixed(v) => write!(f, "#FIXED \"{v}\""),
            DefaultDecl::Default(v) => write!(f, "\"{v}\""),
        }
    }
}

/// One attribute definition within an `<!ATTLIST>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttDef {
    /// Attribute name.
    pub name: String,
    /// Declared type.
    pub ty: AttType,
    /// Default declaration.
    pub default: DefaultDecl,
}

/// A captured `<!ENTITY ...>` declaration (kept verbatim).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntityDecl {
    /// Entity name (with `%` prefix for parameter entities).
    pub name: String,
    /// Raw replacement/definition text.
    pub definition: String,
}

/// A captured `<!NOTATION ...>` declaration (kept verbatim).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotationDecl {
    /// Notation name.
    pub name: String,
    /// Raw definition text.
    pub definition: String,
}

/// A parsed DTD: the schema against which instances validate.
///
/// `BTreeMap` keeps declarations ordered by name so serialization and
/// tree-rendering are deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Dtd {
    /// Element declarations by name.
    pub elements: BTreeMap<String, ElementDecl>,
    /// Attribute definitions by element name (merged across ATTLISTs).
    pub attlists: BTreeMap<String, Vec<AttDef>>,
    /// Captured entity declarations.
    pub entities: Vec<EntityDecl>,
    /// Captured notation declarations.
    pub notations: Vec<NotationDecl>,
    /// Declaration order of elements (for faithful serialization).
    pub element_order: Vec<String>,
}

impl Dtd {
    /// The declaration for `element`, if any.
    pub fn element(&self, element: &str) -> Option<&ElementDecl> {
        self.elements.get(element)
    }

    /// The attribute definitions for `element` (empty slice if none).
    pub fn attributes(&self, element: &str) -> &[AttDef] {
        self.attlists.get(element).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The definition of attribute `attr` on `element`.
    pub fn attribute(&self, element: &str, attr: &str) -> Option<&AttDef> {
        self.attributes(element).iter().find(|a| a.name == attr)
    }

    /// Adds an element declaration (first declaration wins, per XML 1.0).
    pub fn add_element(&mut self, decl: ElementDecl) -> bool {
        if self.elements.contains_key(&decl.name) {
            return false;
        }
        self.element_order.push(decl.name.clone());
        self.elements.insert(decl.name.clone(), decl);
        true
    }

    /// Adds attribute definitions for `element` (first def per name wins).
    pub fn add_attlist(&mut self, element: &str, defs: Vec<AttDef>) {
        let list = self.attlists.entry(element.to_string()).or_default();
        for d in defs {
            if !list.iter().any(|e| e.name == d.name) {
                list.push(d);
            }
        }
    }

    /// The root element candidates: declared elements that appear in no
    /// other element's content model. Useful when no DOCTYPE names a root.
    pub fn root_candidates(&self) -> Vec<&str> {
        let mut referenced: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
        for decl in self.elements.values() {
            match &decl.content {
                ContentSpec::Children(p) => referenced.extend(p.names()),
                ContentSpec::Mixed(ns) => referenced.extend(ns.iter().map(String::as_str)),
                _ => {}
            }
        }
        self.element_order
            .iter()
            .map(String::as_str)
            .filter(|n| !referenced.contains(n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinality_suffix_and_loosening() {
        assert_eq!(Cardinality::One.suffix(), "");
        assert_eq!(Cardinality::OneOrMore.suffix(), "+");
        assert_eq!(Cardinality::One.loosened(), Cardinality::Optional);
        assert_eq!(Cardinality::OneOrMore.loosened(), Cardinality::ZeroOrMore);
        assert_eq!(Cardinality::Optional.loosened(), Cardinality::Optional);
        assert_eq!(Cardinality::ZeroOrMore.loosened(), Cardinality::ZeroOrMore);
    }

    #[test]
    fn particle_display() {
        let p = Particle {
            kind: ParticleKind::Seq(vec![
                Particle::name("manager"),
                Particle::name("paper").with_card(Cardinality::ZeroOrMore),
            ]),
            card: Cardinality::One,
        };
        assert_eq!(p.to_string(), "(manager,paper*)");
    }

    #[test]
    fn choice_display() {
        let p = Particle {
            kind: ParticleKind::Choice(vec![Particle::name("a"), Particle::name("b")]),
            card: Cardinality::Optional,
        };
        assert_eq!(p.to_string(), "(a|b)?");
    }

    #[test]
    fn content_spec_display() {
        assert_eq!(ContentSpec::Empty.to_string(), "EMPTY");
        assert_eq!(ContentSpec::Any.to_string(), "ANY");
        assert_eq!(ContentSpec::Mixed(vec![]).to_string(), "(#PCDATA)");
        assert_eq!(ContentSpec::Mixed(vec!["b".into(), "i".into()]).to_string(), "(#PCDATA|b|i)*");
    }

    #[test]
    fn first_element_declaration_wins() {
        let mut d = Dtd::default();
        assert!(d.add_element(ElementDecl { name: "a".into(), content: ContentSpec::Empty }));
        assert!(!d.add_element(ElementDecl { name: "a".into(), content: ContentSpec::Any }));
        assert_eq!(d.element("a").unwrap().content, ContentSpec::Empty);
    }

    #[test]
    fn attlist_merging() {
        let mut d = Dtd::default();
        d.add_attlist(
            "p",
            vec![AttDef { name: "x".into(), ty: AttType::Cdata, default: DefaultDecl::Implied }],
        );
        d.add_attlist(
            "p",
            vec![
                AttDef { name: "x".into(), ty: AttType::Id, default: DefaultDecl::Required },
                AttDef { name: "y".into(), ty: AttType::Cdata, default: DefaultDecl::Implied },
            ],
        );
        assert_eq!(d.attributes("p").len(), 2);
        // first definition of x wins
        assert_eq!(d.attribute("p", "x").unwrap().ty, AttType::Cdata);
    }

    #[test]
    fn root_candidates() {
        let mut d = Dtd::default();
        d.add_element(ElementDecl {
            name: "lab".into(),
            content: ContentSpec::Children(
                Particle::name("project").with_card(Cardinality::OneOrMore),
            ),
        });
        d.add_element(ElementDecl { name: "project".into(), content: ContentSpec::Mixed(vec![]) });
        assert_eq!(d.root_candidates(), vec!["lab"]);
    }

    #[test]
    fn particle_names_in_order() {
        let p = Particle {
            kind: ParticleKind::Seq(vec![
                Particle::name("a"),
                Particle {
                    kind: ParticleKind::Choice(vec![Particle::name("b"), Particle::name("a")]),
                    card: Cardinality::One,
                },
            ]),
            card: Cardinality::One,
        };
        assert_eq!(p.names(), vec!["a", "b", "a"]);
    }
}
