//! DTD parser: `<!ELEMENT>`, `<!ATTLIST>`, `<!ENTITY>`, `<!NOTATION>`
//! declarations, comments, and one-level parameter-entity expansion.
//!
//! Parses both standalone DTD files and internal subsets captured by the
//! XML parser's DOCTYPE handling.

use crate::ast::*;
use crate::error::{DtdError, Result};

/// Parses a DTD from its textual form.
pub fn parse_dtd(input: &str) -> Result<Dtd> {
    // Parameter entities are textually expanded first (bounded depth) so
    // that common DTD idioms like `<!ENTITY % person "(flname,email?)">`
    // work; anything deeper than 16 levels is almost certainly a cycle.
    let expanded = expand_parameter_entities(input)?;
    let mut p = DtdParser { input: &expanded, pos: 0, dtd: Dtd::default() };
    p.run()?;
    Ok(p.dtd)
}

fn expand_parameter_entities(input: &str) -> Result<String> {
    let mut text = input.to_string();
    for _round in 0..16 {
        let defs = collect_pe_defs(&text);
        if defs.is_empty() {
            return Ok(text);
        }
        let mut replaced = false;
        let mut out = String::with_capacity(text.len());
        let mut rest = text.as_str();
        while let Some(i) = rest.find('%') {
            let (head, tail) = rest.split_at(i);
            out.push_str(head);
            // A PE reference is %name; — anything else (e.g. '%' inside an
            // entity definition string) is copied through.
            if let Some(semi) = tail[1..].find(';') {
                let name = &tail[1..1 + semi];
                if !name.is_empty()
                    && name.chars().all(|c| c.is_alphanumeric() || c == '-' || c == '_' || c == '.')
                {
                    if let Some(rep) = defs.get(name) {
                        out.push_str(rep);
                        rest = &tail[1 + semi + 1..];
                        replaced = true;
                        continue;
                    }
                }
            }
            out.push('%');
            rest = &tail[1..];
        }
        out.push_str(rest);
        text = out;
        if !replaced {
            return Ok(text);
        }
    }
    Err(DtdError::new("parameter entity expansion exceeded depth 16 (cycle?)", 0))
}

/// Extracts `<!ENTITY % name "replacement">` definitions.
fn collect_pe_defs(text: &str) -> std::collections::HashMap<String, String> {
    let mut defs = std::collections::HashMap::new();
    let mut rest = text;
    while let Some(i) = rest.find("<!ENTITY") {
        rest = &rest[i + 8..];
        let t = rest.trim_start();
        if let Some(t) = t.strip_prefix('%') {
            let t = t.trim_start();
            let name_end = t.find(|c: char| c.is_whitespace()).unwrap_or(t.len());
            let name = &t[..name_end];
            let t2 = t[name_end..].trim_start();
            if let Some(q) = t2.chars().next() {
                if q == '"' || q == '\'' {
                    if let Some(end) = t2[1..].find(q) {
                        defs.insert(name.to_string(), t2[1..1 + end].to_string());
                    }
                }
            }
        }
    }
    defs
}

struct DtdParser<'a> {
    input: &'a str,
    pos: usize,
    dtd: Dtd,
}

impl<'a> DtdParser<'a> {
    fn run(&mut self) -> Result<()> {
        loop {
            self.skip_ws_and_comments();
            if self.pos >= self.input.len() {
                return Ok(());
            }
            if self.starts_with("<!ELEMENT") {
                self.advance(9);
                self.parse_element_decl()?;
            } else if self.starts_with("<!ATTLIST") {
                self.advance(9);
                self.parse_attlist_decl()?;
            } else if self.starts_with("<!ENTITY") {
                self.advance(8);
                self.parse_entity_decl()?;
            } else if self.starts_with("<!NOTATION") {
                self.advance(10);
                self.parse_notation_decl()?;
            } else if self.starts_with("<?") {
                // Processing instruction in the subset: skip to '?>'.
                match self.input[self.pos..].find("?>") {
                    Some(i) => self.pos += i + 2,
                    None => return Err(self.err("unterminated processing instruction")),
                }
            } else {
                return Err(self.err("expected a declaration"));
            }
        }
    }

    // -- lexing helpers --------------------------------------------------

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn starts_with(&self, s: &str) -> bool {
        self.rest().starts_with(s)
    }

    fn advance(&mut self, n: usize) {
        self.pos += n;
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    fn skip_ws_and_comments(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                match self.input[self.pos + 4..].find("-->") {
                    Some(i) => self.pos += 4 + i + 3,
                    None => {
                        // Unterminated comment: consume to end; run() will
                        // finish at EOF.
                        self.pos = self.input.len();
                    }
                }
            } else {
                return;
            }
        }
    }

    fn err(&self, msg: impl Into<String>) -> DtdError {
        DtdError::new(msg, self.pos)
    }

    fn expect(&mut self, c: char) -> Result<()> {
        if self.peek() == Some(c) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {c:?}, found {:?}", self.peek())))
        }
    }

    fn read_name(&mut self) -> Result<String> {
        let start = self.pos;
        match self.peek() {
            Some(c) if xmlsec_xml::name::is_name_start_char(c) => {
                self.bump();
            }
            other => return Err(self.err(format!("expected a name, found {other:?}"))),
        }
        while matches!(self.peek(), Some(c) if xmlsec_xml::name::is_name_char(c)) {
            self.bump();
        }
        Ok(self.input[start..self.pos].to_string())
    }

    fn read_quoted(&mut self) -> Result<String> {
        let q = match self.bump() {
            Some(q @ ('"' | '\'')) => q,
            other => return Err(self.err(format!("expected a quoted string, found {other:?}"))),
        };
        let start = self.pos;
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(c) if c == q => {
                    return Ok(self.input[start..self.pos - c.len_utf8()].to_string())
                }
                Some(_) => {}
            }
        }
    }

    // -- declarations ----------------------------------------------------

    fn parse_element_decl(&mut self) -> Result<()> {
        self.skip_ws();
        let name = self.read_name()?;
        self.skip_ws();
        let content = self.parse_content_spec()?;
        self.skip_ws();
        self.expect('>')?;
        self.dtd.add_element(ElementDecl { name, content });
        Ok(())
    }

    fn parse_content_spec(&mut self) -> Result<ContentSpec> {
        if self.starts_with("EMPTY") {
            self.advance(5);
            return Ok(ContentSpec::Empty);
        }
        if self.starts_with("ANY") {
            self.advance(3);
            return Ok(ContentSpec::Any);
        }
        // Both Mixed and children start with '('.
        let save = self.pos;
        self.expect('(')?;
        self.skip_ws();
        if self.starts_with("#PCDATA") {
            self.advance(7);
            let mut names = Vec::new();
            loop {
                self.skip_ws();
                match self.peek() {
                    Some('|') => {
                        self.bump();
                        self.skip_ws();
                        names.push(self.read_name()?);
                    }
                    Some(')') => {
                        self.bump();
                        // '(#PCDATA|a)*' requires the trailing '*';
                        // '(#PCDATA)' allows omitting it.
                        if self.peek() == Some('*') {
                            self.bump();
                        } else if !names.is_empty() {
                            return Err(self.err("mixed content with elements requires ')*'"));
                        }
                        return Ok(ContentSpec::Mixed(names));
                    }
                    other => return Err(self.err(format!("unexpected {other:?} in mixed content"))),
                }
            }
        }
        // Element content: rewind and parse a particle.
        self.pos = save;
        let particle = self.parse_particle()?;
        Ok(ContentSpec::Children(particle))
    }

    fn parse_particle(&mut self) -> Result<Particle> {
        self.skip_ws();
        let kind = if self.peek() == Some('(') {
            self.bump();
            let first = self.parse_particle()?;
            self.skip_ws();
            match self.peek() {
                Some(',') => {
                    let mut items = vec![first];
                    while self.peek() == Some(',') {
                        self.bump();
                        items.push(self.parse_particle()?);
                        self.skip_ws();
                    }
                    self.expect(')')?;
                    ParticleKind::Seq(items)
                }
                Some('|') => {
                    let mut items = vec![first];
                    while self.peek() == Some('|') {
                        self.bump();
                        items.push(self.parse_particle()?);
                        self.skip_ws();
                    }
                    self.expect(')')?;
                    ParticleKind::Choice(items)
                }
                Some(')') => {
                    self.bump();
                    // A parenthesized single particle: a 1-ary seq so the
                    // outer cardinality applies to the group (collapsed
                    // below when the group adds no cardinality).
                    ParticleKind::Seq(vec![first])
                }
                other => return Err(self.err(format!("unexpected {other:?} in content model"))),
            }
        } else {
            ParticleKind::Name(self.read_name()?)
        };
        let card = match self.peek() {
            Some('?') => {
                self.bump();
                Cardinality::Optional
            }
            Some('*') => {
                self.bump();
                Cardinality::ZeroOrMore
            }
            Some('+') => {
                self.bump();
                Cardinality::OneOrMore
            }
            _ => Cardinality::One,
        };
        // `(p)` with no outer cardinality is just `p`.
        if card == Cardinality::One {
            if let ParticleKind::Seq(items) = &kind {
                if items.len() == 1 {
                    return Ok(items[0].clone());
                }
            }
        }
        Ok(Particle { kind, card })
    }

    fn parse_attlist_decl(&mut self) -> Result<()> {
        self.skip_ws();
        let element = self.read_name()?;
        let mut defs = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some('>') {
                self.bump();
                break;
            }
            let name = self.read_name()?;
            self.skip_ws();
            let ty = self.parse_att_type()?;
            self.skip_ws();
            let default = self.parse_default_decl()?;
            defs.push(AttDef { name, ty, default });
        }
        self.dtd.add_attlist(&element, defs);
        Ok(())
    }

    fn parse_att_type(&mut self) -> Result<AttType> {
        // Keyword types. Order matters (IDREFS before IDREF before ID).
        const KEYWORDS: &[(&str, AttType)] = &[
            ("CDATA", AttType::Cdata),
            ("IDREFS", AttType::IdRefs),
            ("IDREF", AttType::IdRef),
            ("ID", AttType::Id),
            ("ENTITIES", AttType::Entities),
            ("ENTITY", AttType::Entity),
            ("NMTOKENS", AttType::NmTokens),
            ("NMTOKEN", AttType::NmToken),
        ];
        for (kw, ty) in KEYWORDS {
            if self.starts_with(kw) {
                // Ensure the keyword is not a prefix of a longer name.
                let after = self.input[self.pos + kw.len()..].chars().next();
                if !matches!(after, Some(c) if xmlsec_xml::name::is_name_char(c)) {
                    self.advance(kw.len());
                    return Ok(ty.clone());
                }
            }
        }
        if self.starts_with("NOTATION") {
            self.advance(8);
            self.skip_ws();
            let names = self.parse_enumeration()?;
            return Ok(AttType::Notation(names));
        }
        if self.peek() == Some('(') {
            let names = self.parse_enumeration()?;
            return Ok(AttType::Enumeration(names));
        }
        Err(self.err("expected an attribute type"))
    }

    fn parse_enumeration(&mut self) -> Result<Vec<String>> {
        self.expect('(')?;
        let mut names = Vec::new();
        loop {
            self.skip_ws();
            // Enumeration tokens are Nmtokens (may start with a digit).
            let start = self.pos;
            while matches!(self.peek(), Some(c) if xmlsec_xml::name::is_name_char(c)) {
                self.bump();
            }
            if start == self.pos {
                return Err(self.err("expected an enumeration token"));
            }
            names.push(self.input[start..self.pos].to_string());
            self.skip_ws();
            match self.bump() {
                Some('|') => continue,
                Some(')') => return Ok(names),
                other => return Err(self.err(format!("unexpected {other:?} in enumeration"))),
            }
        }
    }

    fn parse_default_decl(&mut self) -> Result<DefaultDecl> {
        if self.starts_with("#REQUIRED") {
            self.advance(9);
            return Ok(DefaultDecl::Required);
        }
        if self.starts_with("#IMPLIED") {
            self.advance(8);
            return Ok(DefaultDecl::Implied);
        }
        if self.starts_with("#FIXED") {
            self.advance(6);
            self.skip_ws();
            let v = self.read_quoted()?;
            return Ok(DefaultDecl::Fixed(v));
        }
        let v = self.read_quoted()?;
        Ok(DefaultDecl::Default(v))
    }

    fn parse_entity_decl(&mut self) -> Result<()> {
        self.skip_ws();
        let mut name = String::new();
        if self.peek() == Some('%') {
            self.bump();
            self.skip_ws();
            name.push('%');
        }
        name.push_str(&self.read_name()?);
        self.skip_ws();
        // Definition: either a quoted value or SYSTEM/PUBLIC external id;
        // captured verbatim to '>'.
        let start = self.pos;
        let mut depth = 0usize;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated entity declaration")),
                Some(q @ ('"' | '\'')) => {
                    self.bump();
                    loop {
                        match self.bump() {
                            None => return Err(self.err("unterminated entity value")),
                            Some(c) if c == q => break,
                            Some(_) => {}
                        }
                    }
                }
                Some('>') if depth == 0 => {
                    let definition = self.input[start..self.pos].trim().to_string();
                    self.bump();
                    self.dtd.entities.push(EntityDecl { name, definition });
                    return Ok(());
                }
                Some('(') => {
                    depth += 1;
                    self.bump();
                }
                Some(')') => {
                    depth = depth.saturating_sub(1);
                    self.bump();
                }
                Some(_) => {
                    self.bump();
                }
            }
        }
    }

    fn parse_notation_decl(&mut self) -> Result<()> {
        self.skip_ws();
        let name = self.read_name()?;
        let start = self.pos;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated notation declaration")),
                Some('>') => {
                    let definition = self.input[start..self.pos].trim().to_string();
                    self.bump();
                    self.dtd.notations.push(NotationDecl { name, definition });
                    return Ok(());
                }
                Some(_) => {
                    self.bump();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_elements() {
        let dtd = parse_dtd(
            r#"
            <!ELEMENT laboratory (project+)>
            <!ELEMENT project (manager, paper*)>
            <!ELEMENT manager (#PCDATA)>
            <!ELEMENT paper EMPTY>
            "#,
        )
        .unwrap();
        assert_eq!(dtd.elements.len(), 4);
        assert_eq!(dtd.element("laboratory").unwrap().content.to_string(), "(project+)");
        assert_eq!(dtd.element("project").unwrap().content.to_string(), "(manager,paper*)");
        assert_eq!(dtd.element("manager").unwrap().content, ContentSpec::Mixed(vec![]));
        assert_eq!(dtd.element("paper").unwrap().content, ContentSpec::Empty);
    }

    #[test]
    fn parse_attlist() {
        let dtd = parse_dtd(
            r#"<!ELEMENT project EMPTY>
               <!ATTLIST project
                   name CDATA #REQUIRED
                   type (internal|public) #REQUIRED
                   status CDATA "active"
                   version CDATA #FIXED "1">"#,
        )
        .unwrap();
        let atts = dtd.attributes("project");
        assert_eq!(atts.len(), 4);
        assert_eq!(atts[0].default, DefaultDecl::Required);
        assert_eq!(atts[1].ty, AttType::Enumeration(vec!["internal".into(), "public".into()]));
        assert_eq!(atts[2].default, DefaultDecl::Default("active".into()));
        assert_eq!(atts[3].default, DefaultDecl::Fixed("1".into()));
    }

    #[test]
    fn parse_mixed_with_elements() {
        let dtd = parse_dtd("<!ELEMENT p (#PCDATA | b | i)*>").unwrap();
        assert_eq!(
            dtd.element("p").unwrap().content,
            ContentSpec::Mixed(vec!["b".into(), "i".into()])
        );
    }

    #[test]
    fn mixed_requires_star_with_elements() {
        assert!(parse_dtd("<!ELEMENT p (#PCDATA | b)>").is_err());
    }

    #[test]
    fn nested_groups_and_choice() {
        let dtd = parse_dtd("<!ELEMENT a ((b | c)+, d?)>").unwrap();
        assert_eq!(dtd.element("a").unwrap().content.to_string(), "((b|c)+,d?)");
    }

    #[test]
    fn any_content() {
        let dtd = parse_dtd("<!ELEMENT a ANY>").unwrap();
        assert_eq!(dtd.element("a").unwrap().content, ContentSpec::Any);
    }

    #[test]
    fn comments_and_pis_skipped() {
        let dtd =
            parse_dtd("<!-- schema --><?build keep?><!ELEMENT a EMPTY><!-- done -->").unwrap();
        assert_eq!(dtd.elements.len(), 1);
    }

    #[test]
    fn entity_and_notation_captured() {
        let dtd = parse_dtd(
            r#"<!ENTITY copyright "(c) 2000 CSlab">
               <!NOTATION gif SYSTEM "image/gif">
               <!ELEMENT a EMPTY>"#,
        )
        .unwrap();
        assert_eq!(dtd.entities.len(), 1);
        assert_eq!(dtd.entities[0].name, "copyright");
        assert_eq!(dtd.notations.len(), 1);
        assert_eq!(dtd.notations[0].name, "gif");
    }

    #[test]
    fn parameter_entity_expansion() {
        let dtd = parse_dtd(
            r#"<!ENTITY % person "(flname, email?)">
               <!ELEMENT manager %person;>
               <!ELEMENT member %person;>
               <!ELEMENT flname (#PCDATA)>
               <!ELEMENT email (#PCDATA)>"#,
        )
        .unwrap();
        assert_eq!(dtd.element("manager").unwrap().content.to_string(), "(flname,email?)");
        assert_eq!(dtd.element("member").unwrap().content.to_string(), "(flname,email?)");
    }

    #[test]
    fn cyclic_parameter_entities_rejected() {
        let e = parse_dtd(r#"<!ENTITY % a "%b;"><!ENTITY % b "%a;"><!ELEMENT x %a;>"#);
        assert!(e.is_err());
    }

    #[test]
    fn duplicate_element_first_wins() {
        let dtd = parse_dtd("<!ELEMENT a EMPTY><!ELEMENT a ANY>").unwrap();
        assert_eq!(dtd.element("a").unwrap().content, ContentSpec::Empty);
    }

    #[test]
    fn garbage_rejected_with_offset() {
        let e = parse_dtd("<!ELEMENT a EMPTY> junk").unwrap_err();
        assert!(e.offset > 0);
    }

    #[test]
    fn parenthesized_single_child_keeps_group_cardinality() {
        let dtd = parse_dtd("<!ELEMENT a (b)*>").unwrap();
        match &dtd.element("a").unwrap().content {
            ContentSpec::Children(p) => {
                assert_eq!(p.card, Cardinality::ZeroOrMore);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn idrefs_vs_idref_vs_id() {
        let dtd = parse_dtd(
            "<!ELEMENT a EMPTY><!ATTLIST a x ID #REQUIRED y IDREF #IMPLIED z IDREFS #IMPLIED>",
        )
        .unwrap();
        let atts = dtd.attributes("a");
        assert_eq!(atts[0].ty, AttType::Id);
        assert_eq!(atts[1].ty, AttType::IdRef);
        assert_eq!(atts[2].ty, AttType::IdRefs);
    }
}
