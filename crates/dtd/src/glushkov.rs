//! Glushkov position automata for DTD content models.
//!
//! XML 1.0 element-content models are regular expressions over element
//! names. We compile each model into its Glushkov automaton (one state per
//! name *position*), which gives us:
//!
//! - membership testing of a child-name sequence by subset simulation
//!   (works even for nondeterministic models, which matters after the
//!   loosening transformation can introduce ambiguity);
//! - the XML 1.0 determinism ("1-unambiguity") check: a model is
//!   deterministic iff no two distinct positions with the same name are
//!   simultaneously reachable as successors.

use crate::ast::{Cardinality, Particle, ParticleKind};

/// Compiled automaton for one content model.
#[derive(Debug, Clone)]
pub struct ContentAutomaton {
    /// Name of each position, indexed by position id.
    names: Vec<String>,
    /// Positions that can start a match.
    first: Vec<usize>,
    /// Positions that can end a match.
    last: Vec<bool>,
    /// follow[p] = positions that may come right after position p.
    follow: Vec<Vec<usize>>,
    /// Whether the empty sequence matches.
    nullable: bool,
}

/// Intermediate result of the recursive Glushkov construction.
struct Frag {
    nullable: bool,
    first: Vec<usize>,
    last: Vec<usize>,
}

impl ContentAutomaton {
    /// Compiles `particle` (the body of a `Children` content spec).
    pub fn compile(particle: &Particle) -> ContentAutomaton {
        let mut a = ContentAutomaton {
            names: Vec::new(),
            first: Vec::new(),
            last: Vec::new(),
            follow: Vec::new(),
            nullable: false,
        };
        let frag = a.build(particle);
        a.nullable = frag.nullable;
        a.first = frag.first;
        let mut last_flags = vec![false; a.names.len()];
        for &p in &frag.last {
            last_flags[p] = true;
        }
        a.last = last_flags;
        a
    }

    fn build(&mut self, particle: &Particle) -> Frag {
        let base = match &particle.kind {
            ParticleKind::Name(n) => {
                let p = self.names.len();
                self.names.push(n.clone());
                self.follow.push(Vec::new());
                Frag { nullable: false, first: vec![p], last: vec![p] }
            }
            ParticleKind::Seq(items) => {
                let mut frag = Frag { nullable: true, first: Vec::new(), last: Vec::new() };
                for item in items {
                    let f = self.build(item);
                    // Every last of the prefix connects to every first of f.
                    for &l in &frag.last {
                        for &r in &f.first {
                            if !self.follow[l].contains(&r) {
                                self.follow[l].push(r);
                            }
                        }
                    }
                    if frag.nullable {
                        frag.first.extend_from_slice(&f.first);
                    }
                    if f.nullable {
                        frag.last.extend_from_slice(&f.last);
                    } else {
                        frag.last = f.last;
                    }
                    frag.nullable &= f.nullable;
                }
                frag
            }
            ParticleKind::Choice(items) => {
                let mut frag = Frag { nullable: false, first: Vec::new(), last: Vec::new() };
                for item in items {
                    let f = self.build(item);
                    frag.nullable |= f.nullable;
                    frag.first.extend(f.first);
                    frag.last.extend(f.last);
                }
                frag
            }
        };
        self.apply_cardinality(base, particle.card)
    }

    fn apply_cardinality(&mut self, mut frag: Frag, card: Cardinality) -> Frag {
        if card.allows_many() {
            // last → first loops.
            for &l in &frag.last {
                for &r in &frag.first {
                    if !self.follow[l].contains(&r) {
                        self.follow[l].push(r);
                    }
                }
            }
        }
        if card.allows_zero() {
            frag.nullable = true;
        }
        frag
    }

    /// Tests whether the name sequence `children` matches the model.
    pub fn matches(&self, children: &[&str]) -> bool {
        if children.is_empty() {
            return self.nullable;
        }
        // Subset simulation over positions. `current` holds positions
        // matched by the symbol just consumed.
        let mut current: Vec<usize> = Vec::new();
        let mut scratch: Vec<usize> = Vec::new();
        for (i, &sym) in children.iter().enumerate() {
            scratch.clear();
            if i == 0 {
                for &p in &self.first {
                    if self.names[p] == sym && !scratch.contains(&p) {
                        scratch.push(p);
                    }
                }
            } else {
                for &p in &current {
                    for &q in &self.follow[p] {
                        if self.names[q] == sym && !scratch.contains(&q) {
                            scratch.push(q);
                        }
                    }
                }
            }
            if scratch.is_empty() {
                return false;
            }
            std::mem::swap(&mut current, &mut scratch);
        }
        current.iter().any(|&p| self.last[p])
    }

    /// Checks the XML 1.0 determinism rule. Returns the offending element
    /// name if two distinct positions with the same name are reachable
    /// from the same point.
    pub fn nondeterminism(&self) -> Option<String> {
        if let Some(n) = duplicate_name(&self.first, &self.names) {
            return Some(n);
        }
        for f in &self.follow {
            if let Some(n) = duplicate_name(f, &self.names) {
                return Some(n);
            }
        }
        None
    }

    /// Number of positions (diagnostics/benchmarks).
    pub fn positions(&self) -> usize {
        self.names.len()
    }
}

fn duplicate_name(positions: &[usize], names: &[String]) -> Option<String> {
    for (i, &p) in positions.iter().enumerate() {
        for &q in &positions[i + 1..] {
            if p != q && names[p] == names[q] {
                return Some(names[p].clone());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ContentSpec;
    use crate::parser::parse_dtd;

    fn automaton(model: &str) -> ContentAutomaton {
        let dtd = parse_dtd(&format!("<!ELEMENT a {model}>")).unwrap();
        match &dtd.element("a").unwrap().content {
            ContentSpec::Children(p) => ContentAutomaton::compile(p),
            other => panic!("expected children model, got {other:?}"),
        }
    }

    #[test]
    fn simple_sequence() {
        let a = automaton("(b, c)");
        assert!(a.matches(&["b", "c"]));
        assert!(!a.matches(&["b"]));
        assert!(!a.matches(&["c", "b"]));
        assert!(!a.matches(&[]));
        assert!(!a.matches(&["b", "c", "c"]));
    }

    #[test]
    fn optional_and_star() {
        let a = automaton("(b?, c*)");
        assert!(a.matches(&[]));
        assert!(a.matches(&["b"]));
        assert!(a.matches(&["c", "c", "c"]));
        assert!(a.matches(&["b", "c"]));
        assert!(!a.matches(&["c", "b"]));
    }

    #[test]
    fn plus_requires_one() {
        let a = automaton("(b+)");
        assert!(!a.matches(&[]));
        assert!(a.matches(&["b"]));
        assert!(a.matches(&["b", "b", "b"]));
    }

    #[test]
    fn choice() {
        let a = automaton("(b | c)");
        assert!(a.matches(&["b"]));
        assert!(a.matches(&["c"]));
        assert!(!a.matches(&["b", "c"]));
        assert!(!a.matches(&[]));
    }

    #[test]
    fn nested_model() {
        // the laboratory project model
        let a = automaton("(manager, member*, fund*, paper*)");
        assert!(a.matches(&["manager"]));
        assert!(a.matches(&["manager", "member", "member", "fund", "paper"]));
        assert!(!a.matches(&["member", "manager"]));
        assert!(!a.matches(&["manager", "paper", "fund"]));
    }

    #[test]
    fn group_repetition() {
        let a = automaton("((b, c)+)");
        assert!(a.matches(&["b", "c"]));
        assert!(a.matches(&["b", "c", "b", "c"]));
        assert!(!a.matches(&["b", "c", "b"]));
    }

    #[test]
    fn deterministic_model_passes_check() {
        assert!(automaton("(b?, c*, d)").nondeterminism().is_none());
    }

    #[test]
    fn classic_nondeterministic_model_detected() {
        // (b, b?) is fine; ((b, c) | (b, d)) is the classic 1-ambiguous model.
        let a = automaton("((b, c) | (b, d))");
        assert_eq!(a.nondeterminism().as_deref(), Some("b"));
        // Still matchable by subset simulation.
        assert!(a.matches(&["b", "c"]));
        assert!(a.matches(&["b", "d"]));
        assert!(!a.matches(&["b"]));
    }

    #[test]
    fn loosened_style_ambiguity_still_matches() {
        // (b?, b?) arises from loosening (b, b); ambiguous but matchable.
        let a = automaton("(b?, b?)");
        assert!(a.matches(&[]));
        assert!(a.matches(&["b"]));
        assert!(a.matches(&["b", "b"]));
        assert!(!a.matches(&["b", "b", "b"]));
        assert!(a.nondeterminism().is_some());
    }

    #[test]
    fn empty_sequence_of_optionals_is_nullable() {
        let a = automaton("(b*, c?)");
        assert!(a.matches(&[]));
    }
}
