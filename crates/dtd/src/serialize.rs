//! DTD serialization: writes a [`Dtd`] back to declaration text, so the
//! security processor can ship the loosened DTD to the requester alongside
//! the computed view (paper §7: "the resulting XML document, together with
//! the loosened DTD, can then be transmitted to the user").

use crate::ast::{AttDef, Dtd};

/// Serializes `dtd` as declaration text, one declaration per line,
/// elements in original declaration order.
pub fn serialize_dtd(dtd: &Dtd) -> String {
    let mut out = String::new();
    for name in &dtd.element_order {
        let Some(decl) = dtd.element(name) else { continue };
        out.push_str(&format!("<!ELEMENT {} {}>\n", decl.name, decl.content));
        if let Some(defs) = dtd.attlists.get(name) {
            if !defs.is_empty() {
                out.push_str(&format!("<!ATTLIST {}", decl.name));
                for d in defs {
                    out.push_str(&format!("\n    {}", attdef(d)));
                }
                out.push_str(">\n");
            }
        }
    }
    // Attlists for elements without a (parsed) element declaration.
    for (el, defs) in &dtd.attlists {
        if dtd.element(el).is_none() && !defs.is_empty() {
            out.push_str(&format!("<!ATTLIST {el}"));
            for d in defs {
                out.push_str(&format!("\n    {}", attdef(d)));
            }
            out.push_str(">\n");
        }
    }
    for e in &dtd.entities {
        if let Some(pe) = e.name.strip_prefix('%') {
            out.push_str(&format!("<!ENTITY % {} {}>\n", pe, e.definition));
        } else {
            out.push_str(&format!("<!ENTITY {} {}>\n", e.name, e.definition));
        }
    }
    for n in &dtd.notations {
        out.push_str(&format!("<!NOTATION {} {}>\n", n.name, n.definition));
    }
    out
}

fn attdef(d: &AttDef) -> String {
    format!("{} {} {}", d.name, d.ty, d.default)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_dtd;

    #[test]
    fn round_trip_preserves_semantics() {
        let src = r#"
            <!ELEMENT laboratory (project+)>
            <!ELEMENT project (manager, (member | guest)*, paper?)>
            <!ATTLIST project name CDATA #REQUIRED type (internal|public) #REQUIRED>
            <!ELEMENT manager (#PCDATA)>
            <!ELEMENT member (#PCDATA)>
            <!ELEMENT guest (#PCDATA)>
            <!ELEMENT paper (#PCDATA | emph)*>
            <!ELEMENT emph (#PCDATA)>
        "#;
        let d1 = parse_dtd(src).unwrap();
        let text = serialize_dtd(&d1);
        let d2 = parse_dtd(&text).unwrap();
        assert_eq!(d1, d2);
    }

    #[test]
    fn declaration_order_preserved() {
        let d = parse_dtd("<!ELEMENT z EMPTY><!ELEMENT a EMPTY>").unwrap();
        let text = serialize_dtd(&d);
        let zi = text.find("<!ELEMENT z").unwrap();
        let ai = text.find("<!ELEMENT a").unwrap();
        assert!(zi < ai, "{text}");
    }

    #[test]
    fn entities_and_notations_serialized() {
        let d = parse_dtd(r#"<!ENTITY lab "CSlab"><!NOTATION gif SYSTEM "gif"><!ELEMENT a EMPTY>"#)
            .unwrap();
        let text = serialize_dtd(&d);
        assert!(text.contains("<!ENTITY lab \"CSlab\">"), "{text}");
        assert!(text.contains("<!NOTATION gif SYSTEM \"gif\">"), "{text}");
        // And it parses back.
        parse_dtd(&text).unwrap();
    }

    #[test]
    fn fixed_and_default_attribute_values() {
        let d =
            parse_dtd(r#"<!ELEMENT a EMPTY><!ATTLIST a v CDATA #FIXED "1" w CDATA "x">"#).unwrap();
        let text = serialize_dtd(&d);
        assert!(text.contains("#FIXED \"1\""), "{text}");
        assert!(text.contains("w CDATA \"x\""), "{text}");
        assert_eq!(parse_dtd(&text).unwrap(), d);
    }
}
