//! The DTD *loosening* transformation (paper §6.2).
//!
//! > "Loosening a DTD simply means to define as *optional* all the
//! > elements and attributes marked as *required* in the original DTD.
//! > The DTD loosening prevents users from detecting whether information
//! > was hidden by the security enforcement or simply missing in the
//! > original document."
//!
//! Concretely: every `#REQUIRED` attribute becomes `#IMPLIED`, and every
//! content particle that must occur (`1` or `+`) becomes optional
//! (`?` or `*` respectively), recursively through groups. Loosened models
//! may be 1-ambiguous; our validator tolerates that (subset simulation).

use crate::ast::{AttDef, ContentSpec, DefaultDecl, Dtd, ElementDecl, Particle, ParticleKind};

/// Returns the loosened version of `dtd`.
pub fn loosen(dtd: &Dtd) -> Dtd {
    let mut out = Dtd {
        elements: Default::default(),
        attlists: Default::default(),
        entities: dtd.entities.clone(),
        notations: dtd.notations.clone(),
        element_order: dtd.element_order.clone(),
    };
    for (name, decl) in &dtd.elements {
        out.elements.insert(
            name.clone(),
            ElementDecl { name: decl.name.clone(), content: loosen_content(&decl.content) },
        );
    }
    for (el, defs) in &dtd.attlists {
        out.attlists.insert(el.clone(), defs.iter().map(loosen_attdef).collect());
    }
    out
}

fn loosen_content(c: &ContentSpec) -> ContentSpec {
    match c {
        ContentSpec::Children(p) => ContentSpec::Children(loosen_particle(p)),
        other => other.clone(),
    }
}

fn loosen_particle(p: &Particle) -> Particle {
    let kind = match &p.kind {
        ParticleKind::Name(n) => ParticleKind::Name(n.clone()),
        ParticleKind::Seq(items) => ParticleKind::Seq(items.iter().map(loosen_particle).collect()),
        ParticleKind::Choice(items) => {
            ParticleKind::Choice(items.iter().map(loosen_particle).collect())
        }
    };
    Particle { kind, card: p.card.loosened() }
}

fn loosen_attdef(d: &AttDef) -> AttDef {
    let default = match &d.default {
        DefaultDecl::Required => DefaultDecl::Implied,
        // A fixed attribute has a default value, so its absence never
        // invalidates an instance; keep the constraint.
        other => other.clone(),
    };
    AttDef { name: d.name.clone(), ty: d.ty.clone(), default }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_dtd;
    use crate::validate::validate;
    use xmlsec_xml::parse;

    #[test]
    fn required_attributes_become_implied() {
        let dtd = parse_dtd(
            r#"<!ELEMENT a EMPTY>
               <!ATTLIST a x CDATA #REQUIRED y CDATA #IMPLIED z CDATA "d" w CDATA #FIXED "f">"#,
        )
        .unwrap();
        let l = loosen(&dtd);
        let atts = l.attributes("a");
        assert_eq!(atts[0].default, DefaultDecl::Implied);
        assert_eq!(atts[1].default, DefaultDecl::Implied);
        assert_eq!(atts[2].default, DefaultDecl::Default("d".into()));
        assert_eq!(atts[3].default, DefaultDecl::Fixed("f".into()));
    }

    #[test]
    fn content_cardinalities_loosened_recursively() {
        let dtd = parse_dtd("<!ELEMENT a (b, (c | d)+, e*)>").unwrap();
        let l = loosen(&dtd);
        assert_eq!(l.element("a").unwrap().content.to_string(), "(b?,(c?|d?)*,e*)?");
    }

    #[test]
    fn mixed_and_empty_unchanged() {
        let dtd = parse_dtd(
            "<!ELEMENT p (#PCDATA|b)*><!ELEMENT e EMPTY><!ELEMENT x ANY><!ELEMENT b (#PCDATA)>",
        )
        .unwrap();
        let l = loosen(&dtd);
        assert_eq!(l.element("p").unwrap().content, dtd.element("p").unwrap().content);
        assert_eq!(l.element("e").unwrap().content, ContentSpec::Empty);
        assert_eq!(l.element("x").unwrap().content, ContentSpec::Any);
    }

    #[test]
    fn pruned_documents_validate_against_loosened_dtd() {
        let dtd = parse_dtd(
            r#"<!ELEMENT lab (project+)>
               <!ELEMENT project (manager, paper*)>
               <!ATTLIST project name CDATA #REQUIRED>
               <!ELEMENT manager (#PCDATA)>
               <!ELEMENT paper (#PCDATA)>"#,
        )
        .unwrap();
        // A "view" where manager and @name were pruned away.
        let view = parse(r#"<lab><project><paper>X</paper></project></lab>"#).unwrap();
        assert!(!validate(&dtd, &view).is_empty(), "invalid against original");
        assert!(validate(&loosen(&dtd), &view).is_empty(), "valid against loosened");
        // Even an entirely empty lab is fine after loosening.
        let empty = parse("<lab/>").unwrap();
        assert!(validate(&loosen(&dtd), &empty).is_empty());
    }

    #[test]
    fn valid_documents_stay_valid_after_loosening() {
        let dtd = parse_dtd(
            r#"<!ELEMENT lab (project+)>
               <!ELEMENT project EMPTY>
               <!ATTLIST project name CDATA #REQUIRED>"#,
        )
        .unwrap();
        let doc = parse(r#"<lab><project name="p"/></lab>"#).unwrap();
        assert!(validate(&dtd, &doc).is_empty());
        assert!(validate(&loosen(&dtd), &doc).is_empty());
    }

    #[test]
    fn loosening_is_idempotent() {
        let dtd = parse_dtd("<!ELEMENT a (b+, c)><!ELEMENT b EMPTY><!ELEMENT c EMPTY>").unwrap();
        let once = loosen(&dtd);
        let twice = loosen(&once);
        assert_eq!(once, twice);
    }
}
