//! Document validation against a DTD (the paper's "valid XML document"
//! prerequisite: the processor takes *valid* documents as input, §7 step 1).
//!
//! Collects every violation instead of stopping at the first, and caches
//! one compiled [`ContentAutomaton`] per element declaration.

use crate::ast::{AttType, ContentSpec, DefaultDecl, Dtd};
use crate::error::ValidityError;
use crate::glushkov::ContentAutomaton;
use std::collections::{HashMap, HashSet};
use xmlsec_xml::{Document, NodeData, NodeId};

/// Validator configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct ValidateOptions {
    /// Also report content models violating the XML 1.0 determinism rule.
    /// Off by default because loosened DTDs are legitimately ambiguous.
    pub check_determinism: bool,
}

/// A DTD together with its compiled content-model automata.
///
/// Compile once, validate many documents — the shape the secure server
/// needs (one DTD typically guards many instances).
pub struct Validator<'d> {
    dtd: &'d Dtd,
    automata: HashMap<&'d str, ContentAutomaton>,
    opts: ValidateOptions,
}

impl<'d> Validator<'d> {
    /// Compiles all `Children` content models of `dtd`.
    pub fn new(dtd: &'d Dtd) -> Self {
        Self::with_options(dtd, ValidateOptions::default())
    }

    /// Compiles with explicit options.
    pub fn with_options(dtd: &'d Dtd, opts: ValidateOptions) -> Self {
        let mut automata = HashMap::new();
        for (name, decl) in &dtd.elements {
            if let ContentSpec::Children(p) = &decl.content {
                automata.insert(name.as_str(), ContentAutomaton::compile(p));
            }
        }
        Validator { dtd, automata, opts }
    }

    /// The underlying DTD.
    pub fn dtd(&self) -> &'d Dtd {
        self.dtd
    }

    /// Validates `doc`, returning all violations (empty = valid).
    pub fn validate(&self, doc: &Document) -> Vec<ValidityError> {
        let mut errors = Vec::new();

        if self.opts.check_determinism {
            for (name, a) in &self.automata {
                if let Some(symbol) = a.nondeterminism() {
                    errors.push(ValidityError::NondeterministicModel {
                        element: name.to_string(),
                        symbol,
                    });
                }
            }
        }

        if let Some(dt) = &doc.doctype {
            let root_name = doc.element_name(doc.root()).unwrap_or_default();
            if dt.name != root_name {
                errors.push(ValidityError::RootMismatch {
                    declared: dt.name.clone(),
                    found: root_name.to_string(),
                });
            }
        }

        let mut ids: HashSet<String> = HashSet::new();
        let mut idrefs: Vec<String> = Vec::new();
        let mut stack = vec![doc.root()];
        while let Some(el) = stack.pop() {
            self.validate_element(doc, el, &mut ids, &mut idrefs, &mut errors);
            for c in doc.child_elements(el) {
                stack.push(c);
            }
        }
        for r in idrefs {
            if !ids.contains(&r) {
                errors.push(ValidityError::DanglingIdRef(r));
            }
        }
        errors
    }

    /// `true` when `doc` has no violations.
    pub fn is_valid(&self, doc: &Document) -> bool {
        self.validate(doc).is_empty()
    }

    fn validate_element(
        &self,
        doc: &Document,
        el: NodeId,
        ids: &mut HashSet<String>,
        idrefs: &mut Vec<String>,
        errors: &mut Vec<ValidityError>,
    ) {
        let name = doc.element_name(el).expect("stack holds elements only");
        let Some(decl) = self.dtd.element(name) else {
            errors.push(ValidityError::UndeclaredElement(name.to_string()));
            return;
        };

        // --- attributes -------------------------------------------------
        let defs = self.dtd.attributes(name);
        for &attr in doc.attributes(el) {
            let NodeData::Attr { name: an, value } = &doc.node(attr).data else { continue };
            let Some(def) = defs.iter().find(|d| &d.name == an) else {
                errors.push(ValidityError::UndeclaredAttribute {
                    element: name.to_string(),
                    attribute: an.clone(),
                });
                continue;
            };
            match &def.ty {
                AttType::Id => {
                    if !xmlsec_xml::name::is_valid_name(value) {
                        errors.push(ValidityError::InvalidTokenValue {
                            element: name.to_string(),
                            attribute: an.clone(),
                            value: value.clone(),
                        });
                    } else if !ids.insert(value.clone()) {
                        errors.push(ValidityError::DuplicateId(value.clone()));
                    }
                }
                AttType::IdRef => idrefs.push(value.clone()),
                AttType::IdRefs => {
                    idrefs.extend(value.split_whitespace().map(str::to_string));
                }
                AttType::NmToken => {
                    if !xmlsec_xml::name::is_valid_nmtoken(value) {
                        errors.push(ValidityError::InvalidTokenValue {
                            element: name.to_string(),
                            attribute: an.clone(),
                            value: value.clone(),
                        });
                    }
                }
                AttType::NmTokens => {
                    if value.split_whitespace().any(|t| !xmlsec_xml::name::is_valid_nmtoken(t))
                        || value.trim().is_empty()
                    {
                        errors.push(ValidityError::InvalidTokenValue {
                            element: name.to_string(),
                            attribute: an.clone(),
                            value: value.clone(),
                        });
                    }
                }
                AttType::Enumeration(allowed) | AttType::Notation(allowed) => {
                    if !allowed.iter().any(|v| v == value) {
                        errors.push(ValidityError::InvalidEnumValue {
                            element: name.to_string(),
                            attribute: an.clone(),
                            value: value.clone(),
                        });
                    }
                }
                AttType::Cdata | AttType::Entity | AttType::Entities => {}
            }
            if let DefaultDecl::Fixed(expected) = &def.default {
                if value != expected {
                    errors.push(ValidityError::FixedValueMismatch {
                        element: name.to_string(),
                        attribute: an.clone(),
                        expected: expected.clone(),
                        found: value.clone(),
                    });
                }
            }
        }
        for def in defs {
            if matches!(def.default, DefaultDecl::Required)
                && doc.attribute(el, &def.name).is_none()
            {
                errors.push(ValidityError::MissingRequiredAttribute {
                    element: name.to_string(),
                    attribute: def.name.clone(),
                });
            }
        }

        // --- content ----------------------------------------------------
        match &decl.content {
            ContentSpec::Any => {}
            ContentSpec::Empty => {
                let has_content = doc.children(el).iter().any(|&c| {
                    matches!(doc.node(c).data, NodeData::Element { .. } | NodeData::Text(_))
                });
                if has_content {
                    errors.push(ValidityError::NonEmptyContent(name.to_string()));
                }
            }
            ContentSpec::Mixed(allowed) => {
                for &c in doc.children(el) {
                    if let NodeData::Element { name: cn, .. } = &doc.node(c).data {
                        if !allowed.iter().any(|a| a == cn) {
                            errors.push(ValidityError::ContentModelMismatch {
                                element: name.to_string(),
                                found: vec![cn.clone()],
                                model: decl.content.to_string(),
                            });
                        }
                    }
                }
            }
            ContentSpec::Children(_) => {
                let mut child_names: Vec<&str> = Vec::new();
                let mut has_text = false;
                for &c in doc.children(el) {
                    match &doc.node(c).data {
                        NodeData::Element { name: cn, .. } => child_names.push(cn),
                        NodeData::Text(t) if !t.trim().is_empty() => has_text = true,
                        _ => {}
                    }
                }
                if has_text {
                    errors.push(ValidityError::UnexpectedText(name.to_string()));
                }
                let a = self.automata.get(name).expect("automaton compiled for children model");
                if !a.matches(&child_names) {
                    errors.push(ValidityError::ContentModelMismatch {
                        element: name.to_string(),
                        found: child_names.iter().map(|s| s.to_string()).collect(),
                        model: decl.content.to_string(),
                    });
                }
            }
        }
    }
}

/// One-shot validation convenience.
pub fn validate(dtd: &Dtd, doc: &Document) -> Vec<ValidityError> {
    Validator::new(dtd).validate(doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_dtd;
    use xmlsec_xml::parse;

    const LAB: &str = r#"
        <!ELEMENT laboratory (project+)>
        <!ELEMENT project (manager, member*, paper*)>
        <!ATTLIST project name CDATA #REQUIRED type (internal|public) #REQUIRED>
        <!ELEMENT manager (#PCDATA)>
        <!ELEMENT member (#PCDATA)>
        <!ELEMENT paper (#PCDATA)>
        <!ATTLIST paper category (private|public) #REQUIRED>
    "#;

    fn lab() -> Dtd {
        parse_dtd(LAB).unwrap()
    }

    #[test]
    fn valid_document_passes() {
        let doc = parse(
            r#"<laboratory>
                 <project name="p" type="internal"><manager>Sam</manager>
                   <paper category="private">X</paper>
                 </project>
               </laboratory>"#,
        )
        .unwrap();
        assert_eq!(validate(&lab(), &doc), vec![]);
    }

    #[test]
    fn missing_required_attribute() {
        let doc = parse(
            r#"<laboratory><project type="internal"><manager>S</manager></project></laboratory>"#,
        )
        .unwrap();
        let errs = validate(&lab(), &doc);
        assert!(errs.iter().any(|e| matches!(e,
            ValidityError::MissingRequiredAttribute { element, attribute }
                if element == "project" && attribute == "name")));
    }

    #[test]
    fn enumeration_violation() {
        let doc = parse(
            r#"<laboratory><project name="p" type="secret"><manager>S</manager></project></laboratory>"#,
        )
        .unwrap();
        let errs = validate(&lab(), &doc);
        assert!(errs.iter().any(
            |e| matches!(e, ValidityError::InvalidEnumValue { value, .. } if value == "secret")
        ));
    }

    #[test]
    fn content_model_violation() {
        // member before manager
        let doc = parse(
            r#"<laboratory><project name="p" type="public"><member>M</member><manager>S</manager></project></laboratory>"#,
        )
        .unwrap();
        let errs = validate(&lab(), &doc);
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidityError::ContentModelMismatch { element, .. } if element == "project")));
    }

    #[test]
    fn undeclared_element_and_attribute() {
        let doc = parse(
            r#"<laboratory><project name="p" type="public" owner="x"><manager>S</manager><budget/></project></laboratory>"#,
        )
        .unwrap();
        let errs = validate(&lab(), &doc);
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidityError::UndeclaredElement(n) if n == "budget")));
        assert!(errs.iter().any(|e| matches!(e,
            ValidityError::UndeclaredAttribute { attribute, .. } if attribute == "owner")));
    }

    #[test]
    fn text_in_element_content() {
        let doc = parse(
            r#"<laboratory>stray<project name="p" type="public"><manager>S</manager></project></laboratory>"#,
        )
        .unwrap();
        let errs = validate(&lab(), &doc);
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidityError::UnexpectedText(n) if n == "laboratory")));
    }

    #[test]
    fn id_uniqueness_and_idref_resolution() {
        let dtd = parse_dtd(
            r#"<!ELEMENT r (e*)><!ELEMENT e EMPTY>
               <!ATTLIST e id ID #REQUIRED ref IDREF #IMPLIED>"#,
        )
        .unwrap();
        let doc = parse(r#"<r><e id="a"/><e id="a" ref="zz"/></r>"#).unwrap();
        let errs = validate(&dtd, &doc);
        assert!(errs.iter().any(|e| matches!(e, ValidityError::DuplicateId(i) if i == "a")));
        assert!(errs.iter().any(|e| matches!(e, ValidityError::DanglingIdRef(i) if i == "zz")));
    }

    #[test]
    fn fixed_value_mismatch() {
        let dtd = parse_dtd(r#"<!ELEMENT a EMPTY><!ATTLIST a v CDATA #FIXED "1">"#).unwrap();
        let ok = parse(r#"<a v="1"/>"#).unwrap();
        assert!(validate(&dtd, &ok).is_empty());
        let bad = parse(r#"<a v="2"/>"#).unwrap();
        assert!(matches!(validate(&dtd, &bad)[0], ValidityError::FixedValueMismatch { .. }));
    }

    #[test]
    fn empty_element_content_rejected() {
        let dtd = parse_dtd("<!ELEMENT a EMPTY>").unwrap();
        let doc = parse("<a>text</a>").unwrap();
        assert!(matches!(validate(&dtd, &doc)[0], ValidityError::NonEmptyContent(_)));
        // Comments are permitted inside EMPTY per common practice.
        let doc2 = parse("<a><!--c--></a>").unwrap();
        assert!(validate(&dtd, &doc2).is_empty());
    }

    #[test]
    fn root_mismatch_against_doctype() {
        let doc = parse("<!DOCTYPE laboratory><project/>").unwrap();
        let dtd = lab();
        let errs = validate(&dtd, &doc);
        assert!(errs.iter().any(|e| matches!(e, ValidityError::RootMismatch { .. })));
    }

    #[test]
    fn determinism_check_optional() {
        let dtd = parse_dtd(
            "<!ELEMENT a ((b,c)|(b,d))><!ELEMENT b EMPTY><!ELEMENT c EMPTY><!ELEMENT d EMPTY>",
        )
        .unwrap();
        let doc = parse("<a><b/><c/></a>").unwrap();
        // Default: ambiguity tolerated, document matches.
        assert!(Validator::new(&dtd).validate(&doc).is_empty());
        // Opt-in: ambiguity reported.
        let v = Validator::with_options(&dtd, ValidateOptions { check_determinism: true });
        assert!(v
            .validate(&doc)
            .iter()
            .any(|e| matches!(e, ValidityError::NondeterministicModel { .. })));
    }

    #[test]
    fn mixed_content_allows_listed_elements_only() {
        let dtd = parse_dtd("<!ELEMENT p (#PCDATA|b)*><!ELEMENT b (#PCDATA)>").unwrap();
        let ok = parse("<p>t<b>u</b>v</p>").unwrap();
        assert!(validate(&dtd, &ok).is_empty());
        let bad = parse("<p><i>x</i></p>").unwrap();
        let errs = validate(&dtd, &bad);
        // <i> is both undeclared and not allowed in the mixed model.
        assert!(errs.iter().any(|e| matches!(e, ValidityError::ContentModelMismatch { .. })));
    }

    #[test]
    fn nmtoken_value_checked() {
        let dtd = parse_dtd(r#"<!ELEMENT a EMPTY><!ATTLIST a t NMTOKEN #IMPLIED>"#).unwrap();
        let bad = parse(r#"<a t="has space"/>"#).unwrap();
        assert!(matches!(validate(&dtd, &bad)[0], ValidityError::InvalidTokenValue { .. }));
        let ok = parse(r#"<a t="tok-1"/>"#).unwrap();
        assert!(validate(&dtd, &ok).is_empty());
    }
}
