//! Robustness: the DTD parser never panics, and validator/loosener
//! behave on adversarial schemas.

use proptest::prelude::*;
use xmlsec_dtd::{loosen, parse_dtd, serialize_dtd};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary strings never panic the DTD parser.
    #[test]
    fn parse_dtd_never_panics(s in ".{0,300}") {
        let _ = parse_dtd(&s);
    }

    /// DTD-ish soup never panics.
    #[test]
    fn parse_dtd_never_panics_on_decl_soup(
        s in "[<>!A-Z a-z()\\[\\]|,?*+#\"%;-]{0,300}"
    ) {
        let _ = parse_dtd(&s);
    }

    /// Anything that parses can be loosened and re-serialized, and the
    /// result re-parses to the same loosened schema.
    #[test]
    fn loosen_serialize_reparse(s in "[<>!A-Za-z ()|,?*+#\"]{0,200}") {
        if let Ok(dtd) = parse_dtd(&s) {
            let l = loosen(&dtd);
            let text = serialize_dtd(&l);
            if let Ok(re) = parse_dtd(&text) {
                prop_assert_eq!(l, re);
            } else {
                prop_assert!(false, "loosened DTD did not re-parse:\n{}", text);
            }
        }
    }
}

#[test]
fn deeply_nested_content_model() {
    // 200 nested groups: parser must not blow the stack or mangle it.
    let mut model = String::from("x");
    for _ in 0..200 {
        model = format!("({model})?");
    }
    let dtd = parse_dtd(&format!("<!ELEMENT a {model}><!ELEMENT x EMPTY>")).unwrap();
    assert!(dtd.element("a").is_some());
    let _ = loosen(&dtd);
}

#[test]
fn huge_choice_compiles_and_matches() {
    let names: Vec<String> = (0..500).map(|i| format!("e{i}")).collect();
    let model = format!("({})*", names.join("|"));
    let mut text = format!("<!ELEMENT a {model}>");
    for n in &names {
        text.push_str(&format!("<!ELEMENT {n} EMPTY>"));
    }
    let dtd = parse_dtd(&text).unwrap();
    let doc = xmlsec_xml::parse("<a><e0/><e499/><e250/></a>").unwrap();
    assert!(xmlsec_dtd::validate(&dtd, &doc).is_empty());
}

#[test]
fn pathological_ambiguity_still_terminates() {
    // (a?, a?, ..., a?) — exponential derivations, linear subset states.
    let model = format!("({})", vec!["a?"; 64].join(","));
    let dtd = parse_dtd(&format!("<!ELEMENT r {model}><!ELEMENT a EMPTY>")).unwrap();
    let doc = xmlsec_xml::parse(&format!("<r>{}</r>", "<a/>".repeat(64))).unwrap();
    assert!(xmlsec_dtd::validate(&dtd, &doc).is_empty());
    let over = xmlsec_xml::parse(&format!("<r>{}</r>", "<a/>".repeat(65))).unwrap();
    assert!(!xmlsec_dtd::validate(&dtd, &over).is_empty());
}
