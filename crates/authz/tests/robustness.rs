//! Robustness: XACL and object-spec parsing never panic.

use proptest::prelude::*;
use xmlsec_authz::{parse_xacl, ObjectSpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn parse_xacl_never_panics(s in ".{0,300}") {
        let _ = parse_xacl(&s);
    }

    #[test]
    fn parse_xacl_never_panics_on_xmlish(s in "[<>/=a-z\" ]{0,300}") {
        let _ = parse_xacl(&s);
    }

    #[test]
    fn object_spec_parse_never_panics(s in "[a-z0-9:/@.\\[\\]='\"*]{0,120}") {
        let _ = ObjectSpec::parse(&s);
    }

    /// Mutated well-formed XACLs either parse or error, never panic, and
    /// whatever parses re-serializes.
    #[test]
    fn mutated_xacl_graceful(pos in 0usize..200, noise in "[<>a-z\"=]{1,6}") {
        let src = r#"<xacl><authorization sign="+" type="R">
            <subject user-group="G" ip="1.2.*" sym="*.org"/>
            <object uri="d.xml" path="/a/b"/>
            <action>read</action></authorization></xacl>"#;
        let pos = pos.min(src.len());
        if src.is_char_boundary(pos) {
            let mutated = format!("{}{}{}", &src[..pos], noise, &src[pos..]);
            if let Ok(auths) = parse_xacl(&mutated) {
                let _ = xmlsec_authz::serialize_xacl(&auths);
            }
        }
    }
}
