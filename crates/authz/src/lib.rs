//! # xmlsec-authz — access authorizations (paper §5)
//!
//! The authorization side of the model: the 5-tuple
//! `(subject, object, action, sign, type)` of Definition 3
//! ([`Authorization`]), objects as `URI:path-expression`
//! ([`ObjectSpec`]), the XML-native **XACL** markup the paper's processor
//! consumes ([`xacl`]), the server-wide authorization base indexed by URI
//! ([`AuthorizationBase`]), and the pluggable conflict-resolution and
//! completeness policies of §5/§6.2 ([`policy`]).
//!
//! ```
//! use xmlsec_authz::{parse_xacl, serialize_xacl, Authorization, ObjectSpec, Sign, AuthType};
//! use xmlsec_subjects::Subject;
//!
//! let auth = Authorization::new(
//!     Subject::new("Foreign", "*", "*").unwrap(),
//!     ObjectSpec::parse(r#"laboratory.xml:/laboratory//paper[./@category="private"]"#).unwrap(),
//!     Sign::Minus,
//!     AuthType::Recursive,
//! );
//! let xml = serialize_xacl(&[auth]);
//! assert_eq!(parse_xacl(&xml).unwrap().len(), 1);
//! ```

#![warn(missing_docs)]

pub mod finding;
pub mod lint;
pub mod model;
pub mod policy;
pub mod store;
pub mod temporal;
pub mod xacl;

pub use finding::{severity_counts, Finding, Severity, Span};
pub use lint::lint_policy;
pub use model::{Action, AuthType, Authorization, ObjectSpec, Sign};
pub use policy::{resolve_sign, CompletenessPolicy, ConflictResolution, PolicyConfig};
pub use store::AuthorizationBase;
pub use temporal::{in_force_at, TimedAuthorization, Validity};
pub use xacl::{parse_xacl, parse_xacl_doc, serialize_xacl, XaclError};
