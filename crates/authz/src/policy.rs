//! Conflict-resolution and completeness policies (paper §5 and §6.2).
//!
//! The paper's reference policy is: *most specific subject takes
//! precedence*, and where conflicts remain (incomparable subjects),
//! *denials take precedence*. It stresses that "this specific choice does
//! not restrict in any way our model, which can support any of the
//! policies discussed" — so the resolution step is pluggable here, with
//! the constraint the paper imposes: one policy per document.

use crate::model::{Authorization, Sign};
use xmlsec_subjects::Directory;

/// How conflicting authorizations (same node, same type) combine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConflictResolution {
    /// The paper's reference policy: discard authorizations whose subject
    /// is strictly dominated by another applicable authorization's
    /// subject, then let denials win among the survivors.
    #[default]
    MostSpecificThenDenials,
    /// Same most-specific filtering, then permissions win.
    MostSpecificThenPermissions,
    /// Any applicable denial wins, regardless of specificity.
    DenialsTakePrecedence,
    /// Any applicable permission wins, regardless of specificity.
    PermissionsTakePrecedence,
    /// Unresolved conflicts yield *no* authorization (`ε`), deferring to
    /// propagation/completeness.
    NothingTakesPrecedence,
    /// The paper's §5 aside: "considering the sign of the authorizations
    /// that are in larger number". Ties yield `ε`.
    MajoritySign,
}

/// What an undefined label means at the end of labeling (paper §6.2:
/// "Value ε can be interpreted either as a negation or as a permission,
/// corresponding to the enforcement of the closed and the open policy").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompletenessPolicy {
    /// Undefined ⇒ access denied (the paper's assumption).
    #[default]
    Closed,
    /// Undefined ⇒ access granted.
    Open,
}

/// The per-document policy configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PolicyConfig {
    /// Conflict resolution among same-type authorizations on one node.
    pub conflict: ConflictResolution,
    /// Interpretation of unlabeled nodes.
    pub completeness: CompletenessPolicy,
}

impl PolicyConfig {
    /// The paper's reference configuration (most-specific + denials,
    /// closed).
    pub fn paper_default() -> PolicyConfig {
        PolicyConfig::default()
    }
}

/// Resolves the sign for one node/type group of applicable authorizations.
///
/// `auths` are the authorizations of one type whose object contains the
/// node and whose subject covers the requester. Returns `None` for "no
/// authorization" (`ε`).
pub fn resolve_sign(
    auths: &[&Authorization],
    dir: &Directory,
    policy: ConflictResolution,
) -> Option<Sign> {
    if auths.is_empty() {
        return None;
    }
    match policy {
        ConflictResolution::MostSpecificThenDenials
        | ConflictResolution::MostSpecificThenPermissions => {
            // Step 1b of the paper's initial_label: discard a if some a'
            // has a strictly more specific subject.
            let survivors: Vec<&Authorization> = auths
                .iter()
                .copied()
                .filter(|a| !auths.iter().any(|a2| a2.subject.strictly_leq(&a.subject, dir)))
                .collect();
            let has_minus = survivors.iter().any(|a| a.sign == Sign::Minus);
            let has_plus = survivors.iter().any(|a| a.sign == Sign::Plus);
            match (has_minus, has_plus, policy) {
                (false, false, _) => None,
                (true, false, _) => Some(Sign::Minus),
                (false, true, _) => Some(Sign::Plus),
                (true, true, ConflictResolution::MostSpecificThenDenials) => Some(Sign::Minus),
                (true, true, _) => Some(Sign::Plus),
            }
        }
        ConflictResolution::DenialsTakePrecedence => {
            if auths.iter().any(|a| a.sign == Sign::Minus) {
                Some(Sign::Minus)
            } else {
                Some(Sign::Plus)
            }
        }
        ConflictResolution::PermissionsTakePrecedence => {
            if auths.iter().any(|a| a.sign == Sign::Plus) {
                Some(Sign::Plus)
            } else {
                Some(Sign::Minus)
            }
        }
        ConflictResolution::NothingTakesPrecedence => {
            let has_minus = auths.iter().any(|a| a.sign == Sign::Minus);
            let has_plus = auths.iter().any(|a| a.sign == Sign::Plus);
            match (has_minus, has_plus) {
                (true, true) => None,
                (true, false) => Some(Sign::Minus),
                (false, true) => Some(Sign::Plus),
                (false, false) => None,
            }
        }
        ConflictResolution::MajoritySign => {
            let minus = auths.iter().filter(|a| a.sign == Sign::Minus).count();
            let plus = auths.len() - minus;
            match plus.cmp(&minus) {
                std::cmp::Ordering::Greater => Some(Sign::Plus),
                std::cmp::Ordering::Less => Some(Sign::Minus),
                std::cmp::Ordering::Equal => None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AuthType, ObjectSpec};
    use xmlsec_subjects::Subject;

    fn dir() -> Directory {
        let mut d = Directory::new();
        d.add_user("Tom").unwrap();
        d.add_group("Foreign").unwrap();
        d.add_group("Public").unwrap();
        d.add_member("Tom", "Foreign").unwrap();
        d.add_member("Tom", "Public").unwrap();
        d
    }

    fn auth(subj: &str, sign: Sign) -> Authorization {
        Authorization::new(
            Subject::new(subj, "*", "*").unwrap(),
            ObjectSpec::whole("d.xml"),
            sign,
            AuthType::Recursive,
        )
    }

    #[test]
    fn most_specific_subject_wins() {
        let d = dir();
        // Tom (specific) permitted, Foreign (general) denied → permitted.
        let a1 = auth("Tom", Sign::Plus);
        let a2 = auth("Foreign", Sign::Minus);
        let r = resolve_sign(&[&a1, &a2], &d, ConflictResolution::MostSpecificThenDenials);
        assert_eq!(r, Some(Sign::Plus));
    }

    #[test]
    fn incomparable_subjects_fall_to_denials() {
        let d = dir();
        // Foreign vs Public are incomparable: denial wins.
        let a1 = auth("Foreign", Sign::Plus);
        let a2 = auth("Public", Sign::Minus);
        let r = resolve_sign(&[&a1, &a2], &d, ConflictResolution::MostSpecificThenDenials);
        assert_eq!(r, Some(Sign::Minus));
        // ... unless the policy prefers permissions.
        let r2 = resolve_sign(&[&a1, &a2], &d, ConflictResolution::MostSpecificThenPermissions);
        assert_eq!(r2, Some(Sign::Plus));
    }

    #[test]
    fn flat_denials_and_permissions_policies_ignore_specificity() {
        let d = dir();
        let a1 = auth("Tom", Sign::Plus);
        let a2 = auth("Foreign", Sign::Minus);
        assert_eq!(
            resolve_sign(&[&a1, &a2], &d, ConflictResolution::DenialsTakePrecedence),
            Some(Sign::Minus)
        );
        let a3 = auth("Tom", Sign::Minus);
        let a4 = auth("Foreign", Sign::Plus);
        assert_eq!(
            resolve_sign(&[&a3, &a4], &d, ConflictResolution::PermissionsTakePrecedence),
            Some(Sign::Plus)
        );
    }

    #[test]
    fn nothing_takes_precedence_cancels_conflicts() {
        let d = dir();
        let a1 = auth("Foreign", Sign::Plus);
        let a2 = auth("Public", Sign::Minus);
        assert_eq!(resolve_sign(&[&a1, &a2], &d, ConflictResolution::NothingTakesPrecedence), None);
        assert_eq!(
            resolve_sign(&[&a1], &d, ConflictResolution::NothingTakesPrecedence),
            Some(Sign::Plus)
        );
    }

    #[test]
    fn empty_set_is_epsilon() {
        let d = dir();
        for p in [
            ConflictResolution::MostSpecificThenDenials,
            ConflictResolution::DenialsTakePrecedence,
            ConflictResolution::PermissionsTakePrecedence,
            ConflictResolution::NothingTakesPrecedence,
            ConflictResolution::MajoritySign,
        ] {
            assert_eq!(resolve_sign(&[], &d, p), None);
        }
    }

    #[test]
    fn majority_sign_counts_votes() {
        let d = dir();
        let plus1 = auth("Tom", Sign::Plus);
        let plus2 = auth("Foreign", Sign::Plus);
        let minus = auth("Public", Sign::Minus);
        assert_eq!(
            resolve_sign(&[&plus1, &plus2, &minus], &d, ConflictResolution::MajoritySign),
            Some(Sign::Plus)
        );
        assert_eq!(
            resolve_sign(&[&plus1, &minus], &d, ConflictResolution::MajoritySign),
            None,
            "ties cancel"
        );
        assert_eq!(
            resolve_sign(&[&minus], &d, ConflictResolution::MajoritySign),
            Some(Sign::Minus)
        );
    }

    #[test]
    fn equal_subjects_conflict_falls_to_denials() {
        let d = dir();
        let a1 = auth("Tom", Sign::Plus);
        let a2 = auth("Tom", Sign::Minus);
        assert_eq!(
            resolve_sign(&[&a1, &a2], &d, ConflictResolution::MostSpecificThenDenials),
            Some(Sign::Minus)
        );
    }

    #[test]
    fn location_refinement_counts_as_more_specific() {
        let d = dir();
        let coarse = Authorization::new(
            Subject::new("Tom", "*", "*").unwrap(),
            ObjectSpec::whole("d.xml"),
            Sign::Minus,
            AuthType::Recursive,
        );
        let fine = Authorization::new(
            Subject::new("Tom", "150.100.*", "*").unwrap(),
            ObjectSpec::whole("d.xml"),
            Sign::Plus,
            AuthType::Recursive,
        );
        assert_eq!(
            resolve_sign(&[&coarse, &fine], &d, ConflictResolution::MostSpecificThenDenials),
            Some(Sign::Plus)
        );
    }

    #[test]
    fn default_is_paper_policy() {
        let p = PolicyConfig::paper_default();
        assert_eq!(p.conflict, ConflictResolution::MostSpecificThenDenials);
        assert_eq!(p.completeness, CompletenessPolicy::Closed);
    }
}
