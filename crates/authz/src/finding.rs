//! The shared finding model for every static check in the workspace.
//!
//! Three families of checks report through this one type so front ends
//! (the CLI `analyze` command, the server's grant/revoke pre-flight, CI)
//! can consume a single stream:
//!
//! - per-rule lints ([`crate::lint`]): unknown subjects, duplicates,
//!   shadowing, contradictions;
//! - schema coverage (dead object paths, in `xmlsec-core`);
//! - the whole-policy static analyzer (decision tables, empty views,
//!   context-stripped exposure, semantic shadowing, overlap conflicts —
//!   also in `xmlsec-core`).
//!
//! Severity is the contract with CI: `Error` findings fail the build
//! (deny by default), `Warning` findings are surfaced for review,
//! `Info` findings are informational only.

use std::fmt;

/// How serious a finding is. Orders from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The policy is broken: a rule can never apply, an object can never
    /// select anything. CI fails on these.
    Error,
    /// The policy is suspicious: semantically dead rules, subjects that
    /// can never see anything, structure-revealing exposure.
    Warning,
    /// Worth knowing, usually intentional: contradictions that encode
    /// exceptions, conflicts confined to subject overlaps.
    Info,
}

impl Severity {
    /// The lowercase name used in human and JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where a finding points: any combination of an authorization index
/// (into the analyzed slice), a schema node (rendered `<e>` / `<e>/@a`),
/// and a subject (rendered `⟨ug, ip, sn⟩`). All optional — a whole-policy
/// finding may concern a subject with no specific rule, a rule-level lint
/// no schema node.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Span {
    /// Index of the primary authorization concerned.
    pub auth: Option<usize>,
    /// Index of a second authorization (pairs: shadowing, conflicts).
    pub other_auth: Option<usize>,
    /// The schema node concerned, in display form.
    pub node: Option<String>,
    /// The subject concerned, in display form.
    pub subject: Option<String>,
}

/// One finding from any static check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// How serious it is.
    pub severity: Severity,
    /// Stable kebab-case identifier of the finding family (e.g.
    /// `dead-path`, `empty-view`, `context-stripped`). The JSON contract
    /// keys off this.
    pub kind: String,
    /// What the finding points at.
    pub span: Span,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// Builds a finding with an empty span.
    pub fn new(severity: Severity, kind: &str, message: impl Into<String>) -> Finding {
        Finding { severity, kind: kind.to_string(), span: Span::default(), message: message.into() }
    }

    /// Sets the primary authorization index.
    pub fn with_auth(mut self, auth: usize) -> Finding {
        self.span.auth = Some(auth);
        self
    }

    /// Sets the secondary authorization index (pair findings).
    pub fn with_other_auth(mut self, other: usize) -> Finding {
        self.span.other_auth = Some(other);
        self
    }

    /// Sets the schema node.
    pub fn with_node(mut self, node: impl Into<String>) -> Finding {
        self.span.node = Some(node.into());
        self
    }

    /// Sets the subject.
    pub fn with_subject(mut self, subject: impl Into<String>) -> Finding {
        self.span.subject = Some(subject.into());
        self
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.kind)?;
        if let Some(a) = self.span.auth {
            write!(f, " #{a}")?;
        }
        if let Some(b) = self.span.other_auth {
            write!(f, "/#{b}")?;
        }
        if let Some(n) = &self.span.node {
            write!(f, " {n}")?;
        }
        if let Some(s) = &self.span.subject {
            write!(f, " {s}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Counts findings by severity: `(errors, warnings, infos)`.
pub fn severity_counts(findings: &[Finding]) -> (usize, usize, usize) {
    let mut counts = (0, 0, 0);
    for f in findings {
        match f.severity {
            Severity::Error => counts.0 += 1,
            Severity::Warning => counts.1 += 1,
            Severity::Info => counts.2 += 1,
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_span() {
        let f = Finding::new(Severity::Error, "dead-path", "selects nothing")
            .with_auth(3)
            .with_node("<paper>");
        assert_eq!(f.to_string(), "error[dead-path] #3 <paper>: selects nothing");
        let pair = Finding::new(Severity::Warning, "shadowed", "redundant")
            .with_auth(1)
            .with_other_auth(2);
        assert_eq!(pair.to_string(), "warning[shadowed] #1/#2: redundant");
    }

    #[test]
    fn severities_order_and_count() {
        assert!(Severity::Error < Severity::Warning);
        let fs = vec![
            Finding::new(Severity::Error, "a", ""),
            Finding::new(Severity::Warning, "b", ""),
            Finding::new(Severity::Warning, "c", ""),
            Finding::new(Severity::Info, "d", ""),
        ];
        assert_eq!(severity_counts(&fs), (1, 2, 1));
    }
}
