//! The authorization base: the server-wide set `Auth` of access
//! authorizations, indexed by protected URI (paper §5: "at each server, a
//! set Auth of access authorizations...").

use crate::model::{Action, Authorization};
use std::collections::HashMap;
use xmlsec_subjects::{Directory, Requester};

/// Holds all authorizations at a server, keyed by object URI.
///
/// Both instance-level sets (keyed by document URI) and schema-level sets
/// (keyed by DTD URI) live here; the processor queries each with the
/// appropriate URI (steps 1–2 of the compute-view algorithm).
#[derive(Debug, Clone, Default)]
pub struct AuthorizationBase {
    by_uri: HashMap<String, Vec<Authorization>>,
}

impl AuthorizationBase {
    /// An empty base.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one authorization.
    pub fn add(&mut self, auth: Authorization) {
        self.by_uri.entry(auth.object.uri.clone()).or_default().push(auth);
    }

    /// Adds many authorizations.
    pub fn extend(&mut self, auths: impl IntoIterator<Item = Authorization>) {
        for a in auths {
            self.add(a);
        }
    }

    /// All authorizations protecting `uri` (any subject).
    pub fn for_uri(&self, uri: &str) -> &[Authorization] {
        self.by_uri.get(uri).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The authorizations protecting `uri` that are applicable to
    /// `requester` — the sets `Axml` / `Adtd` of the compute-view
    /// algorithm (steps 1 and 2), computed with the given directory.
    pub fn applicable<'a>(
        &'a self,
        uri: &str,
        requester: &Requester,
        dir: &Directory,
    ) -> Vec<&'a Authorization> {
        self.for_uri(uri)
            .iter()
            .filter(|a| requester.is_covered_by(&a.subject, dir))
            .collect()
    }

    /// Removes every authorization equal to `auth`; returns how many
    /// were removed. (Revocation in this model is deletion — signs
    /// already encode denial.)
    pub fn remove(&mut self, auth: &Authorization) -> usize {
        let Some(list) = self.by_uri.get_mut(&auth.object.uri) else { return 0 };
        let before = list.len();
        list.retain(|a| a != auth);
        let removed = before - list.len();
        if list.is_empty() {
            self.by_uri.remove(&auth.object.uri);
        }
        removed
    }

    /// Like [`AuthorizationBase::applicable`], restricted to one action
    /// (the processor labels reads and writes separately).
    pub fn applicable_for_action<'a>(
        &'a self,
        uri: &str,
        requester: &Requester,
        dir: &Directory,
        action: Action,
    ) -> Vec<&'a Authorization> {
        self.for_uri(uri)
            .iter()
            .filter(|a| a.action == action && requester.is_covered_by(&a.subject, dir))
            .collect()
    }

    /// Number of authorizations across all URIs.
    pub fn len(&self) -> usize {
        self.by_uri.values().map(Vec::len).sum()
    }

    /// `true` when the base holds no authorizations.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The URIs with at least one authorization.
    pub fn uris(&self) -> impl Iterator<Item = &str> {
        self.by_uri.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AuthType, ObjectSpec, Sign};
    use xmlsec_subjects::Subject;

    fn base() -> (AuthorizationBase, Directory) {
        let mut d = Directory::new();
        d.add_user("Tom").unwrap();
        d.add_user("Alice").unwrap();
        d.add_group("Foreign").unwrap();
        d.add_group("Admin").unwrap();
        d.add_member("Tom", "Foreign").unwrap();
        d.add_member("Alice", "Admin").unwrap();

        let mut b = AuthorizationBase::new();
        b.add(Authorization::new(
            Subject::new("Foreign", "*", "*").unwrap(),
            ObjectSpec::whole("doc.xml"),
            Sign::Minus,
            AuthType::Recursive,
        ));
        b.add(Authorization::new(
            Subject::new("Admin", "130.89.56.8", "*").unwrap(),
            ObjectSpec::whole("doc.xml"),
            Sign::Plus,
            AuthType::Recursive,
        ));
        b.add(Authorization::new(
            Subject::new("Admin", "*", "*").unwrap(),
            ObjectSpec::whole("schema.dtd"),
            Sign::Plus,
            AuthType::LocalWeak,
        ));
        (b, d)
    }

    #[test]
    fn indexing_by_uri() {
        let (b, _) = base();
        assert_eq!(b.for_uri("doc.xml").len(), 2);
        assert_eq!(b.for_uri("schema.dtd").len(), 1);
        assert_eq!(b.for_uri("other.xml").len(), 0);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        let mut uris: Vec<_> = b.uris().collect();
        uris.sort_unstable();
        assert_eq!(uris, vec!["doc.xml", "schema.dtd"]);
    }

    #[test]
    fn applicable_filters_by_subject_coverage() {
        let (b, d) = base();
        let tom = Requester::new("Tom", "1.2.3.4", "x.example.it").unwrap();
        let tom_auths = b.applicable("doc.xml", &tom, &d);
        assert_eq!(tom_auths.len(), 1); // only the Foreign denial
        assert_eq!(tom_auths[0].sign, Sign::Minus);

        // Alice from the right host gets the Admin permission.
        let alice = Requester::new("Alice", "130.89.56.8", "h.lab.com").unwrap();
        assert_eq!(b.applicable("doc.xml", &alice, &d).len(), 1);
        // ...but not from another host.
        let alice_far = Requester::new("Alice", "130.89.56.9", "h.lab.com").unwrap();
        assert_eq!(b.applicable("doc.xml", &alice_far, &d).len(), 0);
    }

    #[test]
    fn schema_level_lookup_uses_dtd_uri() {
        let (b, d) = base();
        let alice = Requester::new("Alice", "9.9.9.9", "a.b.c").unwrap();
        assert_eq!(b.applicable("schema.dtd", &alice, &d).len(), 1);
        let tom = Requester::new("Tom", "9.9.9.9", "a.b.c").unwrap();
        assert_eq!(b.applicable("schema.dtd", &tom, &d).len(), 0);
    }
}

#[cfg(test)]
mod remove_tests {
    use super::*;
    use crate::model::{AuthType, Authorization, ObjectSpec, Sign};
    use xmlsec_subjects::Subject;

    #[test]
    fn remove_deletes_exact_matches_only() {
        let mut b = AuthorizationBase::new();
        let a1 = Authorization::new(
            Subject::new("g", "*", "*").unwrap(),
            ObjectSpec::with_path("d.xml", "/a").unwrap(),
            Sign::Plus,
            AuthType::Recursive,
        );
        let a2 = Authorization::new(
            Subject::new("g", "*", "*").unwrap(),
            ObjectSpec::with_path("d.xml", "/b").unwrap(),
            Sign::Plus,
            AuthType::Recursive,
        );
        b.add(a1.clone());
        b.add(a1.clone());
        b.add(a2.clone());
        assert_eq!(b.remove(&a1), 2);
        assert_eq!(b.len(), 1);
        assert_eq!(b.remove(&a1), 0);
        assert_eq!(b.remove(&a2), 1);
        assert!(b.is_empty());
        assert_eq!(b.uris().count(), 0, "empty URI buckets are dropped");
    }
}
