//! XACL — the XML Access Control List format (paper §7: "our processor
//! takes as input a valid XML document requested by the user, together
//! with its XML Access Control List (XACL) listing the associated access
//! authorizations").
//!
//! The paper's rationale is to "exploit XML's own capabilities, defining
//! an XML markup for a set of security elements": authorizations are
//! themselves stored as XML. The markup:
//!
//! ```xml
//! <xacl>
//!   <authorization sign="-" type="R">
//!     <subject user-group="Foreign" ip="*" sym="*"/>
//!     <object uri="laboratory.xml"
//!             path="/laboratory//paper[./@category=&quot;private&quot;]"/>
//!     <action>read</action>
//!   </authorization>
//! </xacl>
//! ```

use crate::model::{Action, AuthType, Authorization, ObjectSpec, Sign};
use std::fmt;
use xmlsec_subjects::Subject;
use xmlsec_xml::{escape::escape_attr, Document, NodeId};

/// Error raised when parsing an XACL document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XaclError(pub String);

impl fmt::Display for XaclError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XACL error: {}", self.0)
    }
}

impl std::error::Error for XaclError {}

/// Parses an XACL document into its authorization list.
pub fn parse_xacl(text: &str) -> Result<Vec<Authorization>, XaclError> {
    let doc = xmlsec_xml::parse(text).map_err(|e| XaclError(e.to_string()))?;
    parse_xacl_doc(&doc)
}

/// Parses an already-parsed XACL DOM.
pub fn parse_xacl_doc(doc: &Document) -> Result<Vec<Authorization>, XaclError> {
    if doc.element_name(doc.root()) != Some("xacl") {
        return Err(XaclError("root element must be <xacl>".into()));
    }
    let mut out = Vec::new();
    for auth_el in doc.child_elements(doc.root()) {
        if doc.element_name(auth_el) != Some("authorization") {
            return Err(XaclError(format!(
                "unexpected element <{}> in <xacl>",
                doc.element_name(auth_el).unwrap_or("?")
            )));
        }
        out.push(parse_authorization(doc, auth_el)?);
    }
    Ok(out)
}

fn parse_authorization(doc: &Document, el: NodeId) -> Result<Authorization, XaclError> {
    let sign = match doc.attribute(el, "sign") {
        Some("+") => Sign::Plus,
        Some("-") => Sign::Minus,
        other => return Err(XaclError(format!("bad or missing sign attribute: {other:?}"))),
    };
    let ty = doc
        .attribute(el, "type")
        .and_then(AuthType::from_code)
        .ok_or_else(|| XaclError("bad or missing type attribute".into()))?;

    let mut subject = None;
    let mut object = None;
    let mut action = Action::Read;
    for child in doc.child_elements(el) {
        match doc.element_name(child) {
            Some("subject") => {
                let ug = doc
                    .attribute(child, "user-group")
                    .ok_or_else(|| XaclError("subject missing user-group".into()))?;
                let ip = doc.attribute(child, "ip").unwrap_or("*");
                let sym = doc.attribute(child, "sym").unwrap_or("*");
                subject = Some(Subject::new(ug, ip, sym).map_err(|e| XaclError(e.to_string()))?);
            }
            Some("object") => {
                let uri = doc
                    .attribute(child, "uri")
                    .ok_or_else(|| XaclError("object missing uri".into()))?;
                object = Some(match doc.attribute(child, "path") {
                    Some(p) => {
                        ObjectSpec::with_path(uri, p).map_err(|e| XaclError(e.to_string()))?
                    }
                    None => ObjectSpec::whole(uri),
                });
            }
            Some("action") => {
                let a = doc.text_value(child);
                action = Action::from_name(a.trim())
                    .ok_or_else(|| XaclError(format!("unsupported action {a:?}")))?;
            }
            Some(other) => {
                return Err(XaclError(format!("unexpected element <{other}> in <authorization>")))
            }
            None => {}
        }
    }
    Ok(Authorization {
        subject: subject.ok_or_else(|| XaclError("authorization missing <subject>".into()))?,
        object: object.ok_or_else(|| XaclError("authorization missing <object>".into()))?,
        action,
        sign,
        ty,
    })
}

/// Serializes authorizations as an XACL document.
pub fn serialize_xacl(auths: &[Authorization]) -> String {
    let mut out = String::from("<xacl>\n");
    for a in auths {
        out.push_str(&format!("  <authorization sign=\"{}\" type=\"{}\">\n", a.sign, a.ty.code()));
        out.push_str(&format!(
            "    <subject user-group=\"{}\" ip=\"{}\" sym=\"{}\"/>\n",
            escape_attr(&a.subject.user_group),
            a.subject.ip,
            a.subject.sym
        ));
        match &a.object.path_text {
            Some(p) => out.push_str(&format!(
                "    <object uri=\"{}\" path=\"{}\"/>\n",
                escape_attr(&a.object.uri),
                escape_attr(p)
            )),
            None => {
                out.push_str(&format!("    <object uri=\"{}\"/>\n", escape_attr(&a.object.uri)))
            }
        }
        out.push_str(&format!("    <action>{}</action>\n", a.action));
        out.push_str("  </authorization>\n");
    }
    out.push_str("</xacl>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_auths() -> Vec<Authorization> {
        vec![
            Authorization::new(
                Subject::new("Foreign", "*", "*").unwrap(),
                ObjectSpec::with_path(
                    "laboratory.xml",
                    r#"/laboratory//paper[./@category="private"]"#,
                )
                .unwrap(),
                Sign::Minus,
                AuthType::Recursive,
            ),
            Authorization::new(
                Subject::new("Admin", "130.89.56.8", "*").unwrap(),
                ObjectSpec::with_path("CSlab.xml", r#"project[./@type="internal"]"#).unwrap(),
                Sign::Plus,
                AuthType::Recursive,
            ),
            Authorization::new(
                Subject::new("Public", "*", "*.it").unwrap(),
                ObjectSpec::whole("CSlab.xml"),
                Sign::Plus,
                AuthType::LocalWeak,
            ),
        ]
    }

    #[test]
    fn round_trip() {
        let auths = sample_auths();
        let text = serialize_xacl(&auths);
        let parsed = parse_xacl(&text).unwrap();
        assert_eq!(parsed.len(), auths.len());
        for (a, b) in auths.iter().zip(&parsed) {
            assert_eq!(a.subject, b.subject);
            assert_eq!(a.object.uri, b.object.uri);
            assert_eq!(a.object.path_text, b.object.path_text);
            assert_eq!(a.sign, b.sign);
            assert_eq!(a.ty, b.ty);
        }
    }

    #[test]
    fn parse_handwritten_xacl() {
        let text = r#"<xacl>
            <authorization sign="-" type="RW">
                <subject user-group="Foreign"/>
                <object uri="doc.xml" path="//paper"/>
                <action>read</action>
            </authorization>
        </xacl>"#;
        let auths = parse_xacl(text).unwrap();
        assert_eq!(auths.len(), 1);
        assert_eq!(auths[0].ty, AuthType::RecursiveWeak);
        assert_eq!(auths[0].subject.ip.to_string(), "*"); // ip defaults to *
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse_xacl("<notxacl/>").unwrap_err().0.contains("xacl"));
        let bad_sign = r#"<xacl><authorization sign="?" type="R">
            <subject user-group="X"/><object uri="d"/></authorization></xacl>"#;
        assert!(parse_xacl(bad_sign).unwrap_err().0.contains("sign"));
        let bad_type = r#"<xacl><authorization sign="+" type="Q">
            <subject user-group="X"/><object uri="d"/></authorization></xacl>"#;
        assert!(parse_xacl(bad_type).unwrap_err().0.contains("type"));
        let no_subject = r#"<xacl><authorization sign="+" type="R">
            <object uri="d"/></authorization></xacl>"#;
        assert!(parse_xacl(no_subject).unwrap_err().0.contains("subject"));
        let bad_action = r#"<xacl><authorization sign="+" type="R">
            <subject user-group="X"/><object uri="d"/>
            <action>delete</action></authorization></xacl>"#;
        assert!(parse_xacl(bad_action).unwrap_err().0.contains("action"));
        // `write` is a supported action (the §8 extension).
        let write_action = r#"<xacl><authorization sign="+" type="R">
            <subject user-group="X"/><object uri="d"/>
            <action>write</action></authorization></xacl>"#;
        assert_eq!(parse_xacl(write_action).unwrap()[0].action, Action::Write);
    }

    #[test]
    fn quotes_in_paths_survive_round_trip() {
        let a = Authorization::new(
            Subject::new("Public", "*", "*").unwrap(),
            ObjectSpec::with_path("d.xml", r#"//paper[./@category="public"]"#).unwrap(),
            Sign::Plus,
            AuthType::RecursiveWeak,
        );
        let text = serialize_xacl(std::slice::from_ref(&a));
        assert!(text.contains("&quot;"), "{text}");
        let parsed = parse_xacl(&text).unwrap();
        assert_eq!(parsed[0].object.path_text, a.object.path_text);
    }
}
