//! Access authorizations (paper §5, Definition 3): 5-tuples
//! `(subject, object, action, sign, type)`.

use std::fmt;
use xmlsec_subjects::Subject;
use xmlsec_xpath::{parse_path, PathExpr, XPathError};

/// The sign of an authorization: permission or denial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// `+` — permission.
    Plus,
    /// `-` — denial.
    Minus,
}

impl fmt::Display for Sign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Sign::Plus => "+",
            Sign::Minus => "-",
        })
    }
}

/// The authorization type (Definition 3): Local, Recursive, Local Weak,
/// Recursive Weak.
///
/// - **Local** authorizations on an element apply to the element and its
///   direct attributes, not to sub-elements.
/// - **Recursive** authorizations propagate to the whole subtree until
///   overridden by a conflicting authorization on a more specific object.
/// - **Weak** variants obey the most-specific principle within the
///   document but are overridden by schema (DTD) level authorizations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AuthType {
    /// `L`
    Local,
    /// `R`
    Recursive,
    /// `LW`
    LocalWeak,
    /// `RW`
    RecursiveWeak,
}

impl AuthType {
    /// The short code used in XACLs and the paper (`L`, `R`, `LW`, `RW`).
    pub fn code(self) -> &'static str {
        match self {
            AuthType::Local => "L",
            AuthType::Recursive => "R",
            AuthType::LocalWeak => "LW",
            AuthType::RecursiveWeak => "RW",
        }
    }

    /// Parses a short code.
    pub fn from_code(s: &str) -> Option<AuthType> {
        Some(match s {
            "L" => AuthType::Local,
            "R" => AuthType::Recursive,
            "LW" => AuthType::LocalWeak,
            "RW" => AuthType::RecursiveWeak,
            _ => return None,
        })
    }

    /// `true` for `R` and `RW`.
    pub fn is_recursive(self) -> bool {
        matches!(self, AuthType::Recursive | AuthType::RecursiveWeak)
    }

    /// `true` for `LW` and `RW`.
    pub fn is_weak(self) -> bool {
        matches!(self, AuthType::LocalWeak | AuthType::RecursiveWeak)
    }
}

impl fmt::Display for AuthType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// The action an authorization covers.
///
/// The paper limits its presentation to `read` (its footnote 2) and lists
/// "support for write and update operations" as further work (§8); this
/// implementation provides both. Read labeling drives view computation;
/// write labeling gates the update operations in `xmlsec-core::update`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Action {
    /// Read access (the paper's model).
    #[default]
    Read,
    /// Write/update access (the paper's §8 extension).
    Write,
}

impl Action {
    /// Parses the lowercase action name.
    pub fn from_name(s: &str) -> Option<Action> {
        match s {
            "read" => Some(Action::Read),
            "write" => Some(Action::Write),
            _ => None,
        }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Action::Read => "read",
            Action::Write => "write",
        })
    }
}

/// An authorization object: a URI, optionally extended with a path
/// expression (`URI:PE`, Definition 3).
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectSpec {
    /// The protected resource's URI.
    pub uri: String,
    /// Original text of the path expression, kept for serialization.
    pub path_text: Option<String>,
    /// The parsed path expression.
    pub path: Option<PathExpr>,
}

impl ObjectSpec {
    /// The whole document at `uri`.
    pub fn whole(uri: &str) -> ObjectSpec {
        ObjectSpec { uri: uri.to_string(), path_text: None, path: None }
    }

    /// `uri:path` with a parsed path expression.
    pub fn with_path(uri: &str, path: &str) -> Result<ObjectSpec, XPathError> {
        Ok(ObjectSpec {
            uri: uri.to_string(),
            path_text: Some(path.to_string()),
            path: Some(parse_path(path)?),
        })
    }

    /// Parses the `URI:PE` form used by the paper ("laboratory.xml:/laboratory//paper").
    ///
    /// The separator is the first `:` followed by `/`, `.`, `@` or a name
    /// start — URIs with schemes (`http://...`) are handled by looking for
    /// the *last* `:` that starts a path expression.
    pub fn parse(spec: &str) -> Result<ObjectSpec, XPathError> {
        // Find a ':' such that everything after it parses as a path.
        // Scan left-to-right, skipping scheme separators (`://`) — the
        // first candidate that parses wins, which keeps `::` axis
        // separators inside the path intact.
        let mut split_at = None;
        for (i, c) in spec.char_indices() {
            if c == ':' {
                let candidate = &spec[i + 1..];
                // `http://host/x` — a ':' followed by '//' is a scheme
                // separator when what precedes it is a scheme token
                // (letters/digits/+/-/. starting with a letter, no '/' or
                // '.'); `doc.xml://paper` is a URI with a descendant path.
                if candidate.starts_with("//") && is_scheme(&spec[..i]) {
                    continue;
                }
                if !candidate.is_empty() && parse_path(candidate).is_ok() {
                    split_at = Some(i);
                    break;
                }
            }
        }
        match split_at {
            Some(i) => ObjectSpec::with_path(&spec[..i], &spec[i + 1..]),
            None => Ok(ObjectSpec::whole(spec)),
        }
    }
}

/// `true` when `s` is a URI scheme token (RFC 2396: letter followed by
/// letters, digits, `+`, `-`, `.` — but we exclude `.` so file names like
/// `doc.xml` never read as schemes).
fn is_scheme(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic())
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '+' || c == '-')
}

impl fmt::Display for ObjectSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.path_text {
            Some(p) => write!(f, "{}:{}", self.uri, p),
            None => write!(f, "{}", self.uri),
        }
    }
}

/// An access authorization: the 5-tuple of Definition 3.
#[derive(Debug, Clone, PartialEq)]
pub struct Authorization {
    /// To whom it is granted.
    pub subject: Subject,
    /// What it protects.
    pub object: ObjectSpec,
    /// The action (always `read` in the paper's model).
    pub action: Action,
    /// Permission or denial.
    pub sign: Sign,
    /// Local/Recursive × strong/Weak.
    pub ty: AuthType,
}

impl Authorization {
    /// Convenience constructor for `read` authorizations (the common case).
    pub fn new(subject: Subject, object: ObjectSpec, sign: Sign, ty: AuthType) -> Authorization {
        Authorization { subject, object, action: Action::Read, sign, ty }
    }

    /// The same authorization for a different action.
    pub fn with_action(mut self, action: Action) -> Authorization {
        self.action = action;
        self
    }
}

impl fmt::Display for Authorization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "⟨{}, {}, {}, {}, {}⟩",
            self.subject, self.object, self.action, self.sign, self.ty
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlsec_subjects::Subject;

    #[test]
    fn auth_type_codes() {
        for t in
            [AuthType::Local, AuthType::Recursive, AuthType::LocalWeak, AuthType::RecursiveWeak]
        {
            assert_eq!(AuthType::from_code(t.code()), Some(t));
        }
        assert_eq!(AuthType::from_code("X"), None);
        assert!(AuthType::Recursive.is_recursive());
        assert!(!AuthType::Local.is_recursive());
        assert!(AuthType::LocalWeak.is_weak());
        assert!(!AuthType::Recursive.is_weak());
    }

    #[test]
    fn object_spec_plain_uri() {
        let o = ObjectSpec::parse("laboratory.xml").unwrap();
        assert_eq!(o.uri, "laboratory.xml");
        assert!(o.path.is_none());
        assert_eq!(o.to_string(), "laboratory.xml");
    }

    #[test]
    fn object_spec_with_path() {
        // the paper's Example 1 object
        let o = ObjectSpec::parse(r#"laboratory.xml:/laboratory//paper[./@category="private"]"#)
            .unwrap();
        assert_eq!(o.uri, "laboratory.xml");
        assert!(o.path.is_some());
        assert!(o.path_text.as_deref().unwrap().starts_with("/laboratory"));
    }

    #[test]
    fn object_spec_with_scheme_uri() {
        let o = ObjectSpec::parse("http://www.lab.com/CSlab.xml:/laboratory/project").unwrap();
        assert_eq!(o.uri, "http://www.lab.com/CSlab.xml");
        assert!(o.path.is_some());
        // No path at all:
        let o2 = ObjectSpec::parse("http://www.lab.com/CSlab.xml").unwrap();
        assert_eq!(o2.uri, "http://www.lab.com/CSlab.xml");
        assert!(o2.path.is_none());
    }

    #[test]
    fn object_spec_relative_path() {
        let o = ObjectSpec::parse(r#"CSlab.xml:project[./@type="internal"]"#).unwrap();
        assert_eq!(o.uri, "CSlab.xml");
        assert!(!o.path.as_ref().unwrap().absolute);
    }

    #[test]
    fn object_spec_descendant_path_not_a_scheme() {
        // `doc.xml://paper` is URI + descendant path, not a scheme.
        let o = ObjectSpec::parse("doc.xml://paper").unwrap();
        assert_eq!(o.uri, "doc.xml");
        assert_eq!(o.path_text.as_deref(), Some("//paper"));
        // but `http://...` keeps its scheme.
        let o2 = ObjectSpec::parse("http://lab.com/CSlab.xml://paper").unwrap();
        assert_eq!(o2.uri, "http://lab.com/CSlab.xml");
        assert_eq!(o2.path_text.as_deref(), Some("//paper"));
    }

    #[test]
    fn object_spec_with_axis_double_colon() {
        // '::' inside the path must not be mistaken for the URI separator.
        let o = ObjectSpec::parse("lab.xml:fund/ancestor::project").unwrap();
        assert_eq!(o.uri, "lab.xml");
        assert_eq!(o.path_text.as_deref(), Some("fund/ancestor::project"));
    }

    #[test]
    fn display_matches_paper_notation() {
        let a = Authorization::new(
            Subject::new("Foreign", "*", "*").unwrap(),
            ObjectSpec::parse("laboratory.xml:/laboratory//paper").unwrap(),
            Sign::Minus,
            AuthType::Recursive,
        );
        let s = a.to_string();
        assert!(s.contains("⟨Foreign, *, *⟩"), "{s}");
        assert!(s.contains("read"), "{s}");
        assert!(s.contains("-"), "{s}");
        assert!(s.ends_with("R⟩"), "{s}");
    }
}
