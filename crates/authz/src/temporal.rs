//! Time-based restrictions on access — the paper's §8 extension
//! ("the enforcement of credentials and history- and time-based
//! restrictions on access").
//!
//! An authorization may carry a [`Validity`] constraint built from two
//! orthogonal pieces:
//!
//! - an absolute window (`not_before ≤ t < not_after`, in seconds since
//!   the epoch — the unit is opaque to the library);
//! - a recurring daily window in minutes-of-day (`09:00–17:00`
//!   office-hours style, possibly wrapping midnight).
//!
//! The server evaluates each request at a timestamp; authorizations whose
//! validity excludes that instant are simply not applicable — the rest of
//! the model (propagation, conflicts, policies) is untouched. This keeps
//! the extension orthogonal, exactly as the paper's modular design
//! suggests.

use crate::model::Authorization;
use std::fmt;

/// Minutes in one day.
const DAY_MINUTES: u32 = 24 * 60;

/// When an authorization is in force.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Validity {
    /// Earliest instant (inclusive), if bounded below.
    pub not_before: Option<u64>,
    /// Latest instant (exclusive), if bounded above.
    pub not_after: Option<u64>,
    /// Recurring daily window `(from_minute, to_minute)`; `from > to`
    /// wraps midnight (e.g. `(22*60, 6*60)` = nights).
    pub daily: Option<(u32, u32)>,
}

impl Validity {
    /// Always valid (the default).
    pub fn always() -> Validity {
        Validity::default()
    }

    /// Valid in `[from, to)`.
    pub fn window(from: u64, to: u64) -> Validity {
        Validity { not_before: Some(from), not_after: Some(to), daily: None }
    }

    /// Valid daily between `from_minute` and `to_minute` (minutes of day,
    /// `to` exclusive; wraps midnight when `from > to`).
    pub fn daily(from_minute: u32, to_minute: u32) -> Validity {
        Validity {
            not_before: None,
            not_after: None,
            daily: Some((from_minute % DAY_MINUTES, to_minute % DAY_MINUTES)),
        }
    }

    /// Whether instant `t` (seconds) falls inside the validity.
    pub fn contains(&self, t: u64) -> bool {
        if let Some(nb) = self.not_before {
            if t < nb {
                return false;
            }
        }
        if let Some(na) = self.not_after {
            if t >= na {
                return false;
            }
        }
        if let Some((from, to)) = self.daily {
            let minute_of_day = ((t / 60) % u64::from(DAY_MINUTES)) as u32;
            let inside = if from <= to {
                (from..to).contains(&minute_of_day)
            } else {
                minute_of_day >= from || minute_of_day < to
            };
            if !inside {
                return false;
            }
        }
        true
    }
}

impl fmt::Display for Validity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.not_before, self.not_after, self.daily) {
            (None, None, None) => write!(f, "always"),
            _ => {
                if let (Some(a), Some(b)) = (self.not_before, self.not_after) {
                    write!(f, "[{a},{b})")?;
                } else if let Some(a) = self.not_before {
                    write!(f, "[{a},∞)")?;
                } else if let Some(b) = self.not_after {
                    write!(f, "(-∞,{b})")?;
                }
                if let Some((from, to)) = self.daily {
                    write!(
                        f,
                        " daily {:02}:{:02}-{:02}:{:02}",
                        from / 60,
                        from % 60,
                        to / 60,
                        to % 60
                    )?;
                }
                Ok(())
            }
        }
    }
}

/// An authorization with a validity constraint.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedAuthorization {
    /// The underlying authorization.
    pub auth: Authorization,
    /// When it is in force.
    pub validity: Validity,
}

impl TimedAuthorization {
    /// A permanently valid authorization.
    pub fn permanent(auth: Authorization) -> TimedAuthorization {
        TimedAuthorization { auth, validity: Validity::always() }
    }

    /// Restricts `auth` to `validity`.
    pub fn new(auth: Authorization, validity: Validity) -> TimedAuthorization {
        TimedAuthorization { auth, validity }
    }
}

/// Filters a timed set down to the authorizations in force at `t`
/// (feed the result to the ordinary labeling machinery).
pub fn in_force_at(timed: &[TimedAuthorization], t: u64) -> Vec<&Authorization> {
    timed.iter().filter(|ta| ta.validity.contains(t)).map(|ta| &ta.auth).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AuthType, ObjectSpec, Sign};
    use xmlsec_subjects::Subject;

    fn auth() -> Authorization {
        Authorization::new(
            Subject::new("u", "*", "*").unwrap(),
            ObjectSpec::whole("d.xml"),
            Sign::Plus,
            AuthType::Recursive,
        )
    }

    #[test]
    fn absolute_window() {
        let v = Validity::window(100, 200);
        assert!(!v.contains(99));
        assert!(v.contains(100));
        assert!(v.contains(199));
        assert!(!v.contains(200));
    }

    #[test]
    fn half_open_bounds() {
        let from_only = Validity { not_before: Some(50), ..Default::default() };
        assert!(!from_only.contains(49));
        assert!(from_only.contains(1_000_000));
        let to_only = Validity { not_after: Some(50), ..Default::default() };
        assert!(to_only.contains(0));
        assert!(!to_only.contains(50));
    }

    #[test]
    fn daily_window() {
        // 09:00–17:00
        let v = Validity::daily(9 * 60, 17 * 60);
        let at = |h: u64, m: u64| h * 3600 + m * 60;
        assert!(v.contains(at(9, 0)));
        assert!(v.contains(at(12, 30)));
        assert!(!v.contains(at(17, 0)));
        assert!(!v.contains(at(3, 0)));
        // The window recurs the next day (t + 86400).
        assert!(v.contains(86_400 + at(10, 0)));
    }

    #[test]
    fn daily_window_wrapping_midnight() {
        // 22:00–06:00
        let v = Validity::daily(22 * 60, 6 * 60);
        let at = |h: u64| h * 3600;
        assert!(v.contains(at(23)));
        assert!(v.contains(at(2)));
        assert!(!v.contains(at(12)));
    }

    #[test]
    fn combined_window_and_daily() {
        let v = Validity {
            not_before: Some(0),
            not_after: Some(7 * 86_400), // one week
            daily: Some((9 * 60, 17 * 60)),
        };
        assert!(v.contains(2 * 86_400 + 10 * 3600)); // day 3, 10:00
        assert!(!v.contains(2 * 86_400 + 20 * 3600)); // day 3, 20:00
        assert!(!v.contains(8 * 86_400 + 10 * 3600)); // after the week
    }

    #[test]
    fn in_force_filtering() {
        let timed = vec![
            TimedAuthorization::permanent(auth()),
            TimedAuthorization::new(auth(), Validity::window(100, 200)),
            TimedAuthorization::new(auth(), Validity::daily(9 * 60, 17 * 60)),
        ];
        assert_eq!(in_force_at(&timed, 150).len(), 2); // permanent + window (00:02 — outside office hours)
        assert_eq!(in_force_at(&timed, 10 * 3600).len(), 2); // permanent + daily (window expired)
        assert_eq!(in_force_at(&timed, 300).len(), 1); // permanent only
    }

    #[test]
    fn display_forms() {
        assert_eq!(Validity::always().to_string(), "always");
        assert_eq!(Validity::window(1, 2).to_string(), "[1,2)");
        assert!(Validity::daily(9 * 60, 17 * 60).to_string().contains("09:00-17:00"));
    }
}
