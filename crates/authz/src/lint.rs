//! Administrative consistency checks ("lint") for authorization bases.
//!
//! The paper's model is permissive about what an administrator may
//! write down; experience with ACL systems says most incidents are
//! mis-specifications rather than engine bugs. This module flags the
//! classic ones *before* they silently change views:
//!
//! - subjects naming users/groups the directory does not know (the
//!   authorization can never apply);
//! - groups with no members (applies to nobody today);
//! - exact duplicates;
//! - *shadowed* authorizations: same object/action/type/sign as another
//!   authorization with a more general subject — the specific one is
//!   redundant under every policy;
//! - *contradicted pairs*: identical object/action/type and comparable
//!   subjects with opposite signs — legal (that is how exceptions are
//!   written) but worth surfacing, since the outcome then hinges on the
//!   conflict-resolution policy when the subjects are *equal*.

use crate::finding::{Finding, Severity};
use crate::model::Authorization;
use std::fmt;
use xmlsec_subjects::Directory;

/// One finding.
#[deprecated(
    since = "0.5.0",
    note = "use `lint_policy` and the shared `xmlsec_authz::Finding` type"
)]
#[derive(Debug, Clone, PartialEq)]
pub enum LintFinding {
    /// The subject's user/group is not in the directory.
    UnknownSubject {
        /// Index into the linted slice.
        index: usize,
        /// The unknown identifier.
        user_group: String,
    },
    /// The subject's group exists but has no (transitive) members.
    EmptyGroup {
        /// Index into the linted slice.
        index: usize,
        /// The empty group.
        group: String,
    },
    /// Authorizations `first` and `second` are byte-for-byte identical.
    Duplicate {
        /// Earlier index.
        first: usize,
        /// Later index.
        second: usize,
    },
    /// `shadowed` adds nothing: `by` has the same object/action/type/sign
    /// and a subject at least as general.
    Shadowed {
        /// Index of the redundant authorization.
        shadowed: usize,
        /// Index of the authorization that subsumes it.
        by: usize,
    },
    /// Same object/action/type, comparable subjects, opposite signs.
    Contradiction {
        /// Index of the permission.
        plus: usize,
        /// Index of the denial.
        minus: usize,
        /// `true` when the subjects are exactly equal (the outcome then
        /// depends only on the conflict-resolution policy).
        same_subject: bool,
    },
}

#[allow(deprecated)]
impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintFinding::UnknownSubject { index, user_group } => {
                write!(f, "#{index}: subject {user_group:?} is not in the directory")
            }
            LintFinding::EmptyGroup { index, group } => {
                write!(f, "#{index}: group {group:?} has no members")
            }
            LintFinding::Duplicate { first, second } => {
                write!(f, "#{second} duplicates #{first}")
            }
            LintFinding::Shadowed { shadowed, by } => {
                write!(f, "#{shadowed} is shadowed by the more general #{by}")
            }
            LintFinding::Contradiction { plus, minus, same_subject } => write!(
                f,
                "#{plus} (+) and #{minus} (-) contradict on the same object{}",
                if *same_subject { " with the same subject" } else { "" }
            ),
        }
    }
}

/// Lints `auths` against `dir`, returning all findings.
#[deprecated(
    since = "0.5.0",
    note = "use `lint_policy` and the shared `xmlsec_authz::Finding` type"
)]
#[allow(deprecated)]
pub fn lint(auths: &[Authorization], dir: &Directory) -> Vec<LintFinding> {
    lint_impl(auths, dir)
}

/// Lints `auths` against `dir`, reporting through the shared
/// [`Finding`] model (severities: unknown subject is an error — the rule
/// can never apply; empty groups, duplicates, and shadowing are
/// warnings; contradictions are informational, since that is how
/// exceptions are written).
pub fn lint_policy(auths: &[Authorization], dir: &Directory) -> Vec<Finding> {
    #[allow(deprecated)]
    lint_impl(auths, dir)
        .into_iter()
        .map(|f| {
            #[allow(deprecated)]
            match f {
                LintFinding::UnknownSubject { index, user_group } => Finding::new(
                    Severity::Error,
                    "unknown-subject",
                    format!("subject {user_group:?} is not in the directory"),
                )
                .with_auth(index),
                LintFinding::EmptyGroup { index, group } => Finding::new(
                    Severity::Warning,
                    "empty-group",
                    format!("group {group:?} has no members; the authorization applies to nobody"),
                )
                .with_auth(index),
                LintFinding::Duplicate { first, second } => Finding::new(
                    Severity::Warning,
                    "duplicate",
                    "duplicates an earlier identical authorization",
                )
                .with_auth(second)
                .with_other_auth(first),
                LintFinding::Shadowed { shadowed, by } => Finding::new(
                    Severity::Warning,
                    "shadowed",
                    "redundant: a more general authorization has the same object, action, type, and sign",
                )
                .with_auth(shadowed)
                .with_other_auth(by),
                LintFinding::Contradiction { plus, minus, same_subject } => Finding::new(
                    Severity::Info,
                    "contradiction",
                    if same_subject {
                        "permission and denial on the same object with the same subject; the outcome depends only on the conflict-resolution policy"
                    } else {
                        "permission and denial on the same object with comparable subjects (this is how exceptions are written)"
                    },
                )
                .with_auth(plus)
                .with_other_auth(minus),
            }
        })
        .collect()
}

#[allow(deprecated)]
fn lint_impl(auths: &[Authorization], dir: &Directory) -> Vec<LintFinding> {
    let mut out = Vec::new();

    for (i, a) in auths.iter().enumerate() {
        let ug = &a.subject.user_group;
        match dir.kind(ug) {
            None => out.push(LintFinding::UnknownSubject { index: i, user_group: ug.clone() }),
            Some(xmlsec_subjects::PrincipalKind::Group) => {
                let has_member =
                    dir.principals().any(|(p, _)| p != ug.as_str() && dir.is_member(p, ug));
                if !has_member {
                    out.push(LintFinding::EmptyGroup { index: i, group: ug.clone() });
                }
            }
            Some(xmlsec_subjects::PrincipalKind::User) => {}
        }
    }

    for i in 0..auths.len() {
        for j in (i + 1)..auths.len() {
            let (a, b) = (&auths[i], &auths[j]);
            if a == b {
                out.push(LintFinding::Duplicate { first: i, second: j });
                continue;
            }
            let same_object = a.object.uri == b.object.uri
                && a.object.path_text == b.object.path_text
                && a.action == b.action
                && a.ty == b.ty;
            if !same_object {
                continue;
            }
            if a.sign == b.sign {
                // Same effect: the more specific subject is redundant.
                if a.subject.strictly_leq(&b.subject, dir) {
                    out.push(LintFinding::Shadowed { shadowed: i, by: j });
                } else if b.subject.strictly_leq(&a.subject, dir) {
                    out.push(LintFinding::Shadowed { shadowed: j, by: i });
                }
            } else {
                let comparable = a.subject.leq(&b.subject, dir) || b.subject.leq(&a.subject, dir);
                if comparable {
                    let (plus, minus) =
                        if a.sign == crate::model::Sign::Plus { (i, j) } else { (j, i) };
                    let same_subject = a.subject == b.subject;
                    out.push(LintFinding::Contradiction { plus, minus, same_subject });
                }
            }
        }
    }
    out
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::model::{AuthType, ObjectSpec, Sign};
    use xmlsec_subjects::Subject;

    fn dir() -> Directory {
        let mut d = Directory::new();
        d.add_user("tom").unwrap();
        d.add_group("Staff").unwrap();
        d.add_group("Ghost").unwrap();
        d.add_member("tom", "Staff").unwrap();
        d
    }

    fn auth(ug: &str, path: &str, sign: Sign) -> Authorization {
        Authorization::new(
            Subject::new(ug, "*", "*").unwrap(),
            ObjectSpec::with_path("d.xml", path).unwrap(),
            sign,
            AuthType::Recursive,
        )
    }

    #[test]
    fn unknown_subject_flagged() {
        let a = [auth("nobody", "/a", Sign::Plus)];
        let f = lint(&a, &dir());
        assert!(
            matches!(&f[0], LintFinding::UnknownSubject { user_group, .. } if user_group == "nobody")
        );
    }

    #[test]
    fn empty_group_flagged() {
        let a = [auth("Ghost", "/a", Sign::Plus)];
        let f = lint(&a, &dir());
        assert!(f
            .iter()
            .any(|x| matches!(x, LintFinding::EmptyGroup { group, .. } if group == "Ghost")));
        // Staff has a member: not flagged.
        let b = [auth("Staff", "/a", Sign::Plus)];
        assert!(lint(&b, &dir()).is_empty());
    }

    #[test]
    fn duplicates_flagged() {
        let a = [auth("Staff", "/a", Sign::Plus), auth("Staff", "/a", Sign::Plus)];
        let f = lint(&a, &dir());
        assert!(f.iter().any(|x| matches!(x, LintFinding::Duplicate { first: 0, second: 1 })));
    }

    #[test]
    fn shadowed_specific_subject_flagged() {
        // tom ≤ Staff, same object/sign: the tom-specific one is redundant.
        let a = [auth("tom", "/a", Sign::Plus), auth("Staff", "/a", Sign::Plus)];
        let f = lint(&a, &dir());
        assert!(f.iter().any(|x| matches!(x, LintFinding::Shadowed { shadowed: 0, by: 1 })));
        // Different objects: no shadowing.
        let b = [auth("tom", "/a", Sign::Plus), auth("Staff", "/b", Sign::Plus)];
        assert!(lint(&b, &dir()).is_empty());
    }

    #[test]
    fn contradictions_flagged_with_subject_equality() {
        let a = [auth("tom", "/a", Sign::Plus), auth("Staff", "/a", Sign::Minus)];
        let f = lint(&a, &dir());
        assert!(f.iter().any(|x| matches!(
            x,
            LintFinding::Contradiction { plus: 0, minus: 1, same_subject: false }
        )));
        let b = [auth("Staff", "/a", Sign::Minus), auth("Staff", "/a", Sign::Plus)];
        let f2 = lint(&b, &dir());
        assert!(f2.iter().any(|x| matches!(
            x,
            LintFinding::Contradiction { plus: 1, minus: 0, same_subject: true }
        )));
    }

    #[test]
    fn incomparable_subjects_do_not_contradict_here() {
        let mut d = dir();
        d.add_group("Other").unwrap();
        d.add_user("eve").unwrap();
        d.add_member("eve", "Other").unwrap();
        let a = [auth("Staff", "/a", Sign::Plus), auth("Other", "/a", Sign::Minus)];
        // Incomparable subjects: the engine resolves per requester; lint
        // stays quiet (both can coexist meaningfully).
        let f = lint(&a, &d);
        assert!(!f.iter().any(|x| matches!(x, LintFinding::Contradiction { .. })), "{f:?}");
    }

    #[test]
    fn lint_policy_maps_to_shared_findings() {
        let a = [
            auth("nobody", "/a", Sign::Plus),
            auth("Staff", "/a", Sign::Plus),
            auth("Staff", "/a", Sign::Plus),
            auth("tom", "/a", Sign::Minus),
        ];
        let fs = lint_policy(&a, &dir());
        let unknown = fs.iter().find(|f| f.kind == "unknown-subject").unwrap();
        assert_eq!(unknown.severity, Severity::Error);
        assert_eq!(unknown.span.auth, Some(0));
        let dup = fs.iter().find(|f| f.kind == "duplicate").unwrap();
        assert_eq!(dup.severity, Severity::Warning);
        assert_eq!((dup.span.auth, dup.span.other_auth), (Some(2), Some(1)));
        let contra = fs.iter().find(|f| f.kind == "contradiction").unwrap();
        assert_eq!(contra.severity, Severity::Info);
        // Old and new APIs see the same underlying facts.
        assert_eq!(fs.len(), lint(&a, &dir()).len());
    }

    #[test]
    fn display_forms_mention_indices() {
        let a = [auth("Staff", "/a", Sign::Plus), auth("Staff", "/a", Sign::Plus)];
        let f = lint(&a, &dir());
        assert!(f.iter().any(|x| x.to_string().contains("#1 duplicates #0")));
    }
}
