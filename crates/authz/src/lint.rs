//! Administrative consistency checks ("lint") for authorization bases.
//!
//! The paper's model is permissive about what an administrator may
//! write down; experience with ACL systems says most incidents are
//! mis-specifications rather than engine bugs. This module flags the
//! classic ones *before* they silently change views:
//!
//! - subjects naming users/groups the directory does not know (the
//!   authorization can never apply);
//! - groups with no members (applies to nobody today);
//! - exact duplicates;
//! - *shadowed* authorizations: same object/action/type/sign as another
//!   authorization with a more general subject — the specific one is
//!   redundant under every policy;
//! - *contradicted pairs*: identical object/action/type and comparable
//!   subjects with opposite signs — legal (that is how exceptions are
//!   written) but worth surfacing, since the outcome then hinges on the
//!   conflict-resolution policy when the subjects are *equal*.

use crate::finding::{Finding, Severity};
use crate::model::Authorization;
use xmlsec_subjects::Directory;

/// Lints `auths` against `dir`, reporting through the shared
/// [`Finding`] model (severities: unknown subject is an error — the rule
/// can never apply; empty groups, duplicates, and shadowing are
/// warnings; contradictions are informational, since that is how
/// exceptions are written).
pub fn lint_policy(auths: &[Authorization], dir: &Directory) -> Vec<Finding> {
    let mut out = Vec::new();

    for (i, a) in auths.iter().enumerate() {
        let ug = &a.subject.user_group;
        match dir.kind(ug) {
            None => out.push(
                Finding::new(
                    Severity::Error,
                    "unknown-subject",
                    format!("subject {ug:?} is not in the directory"),
                )
                .with_auth(i),
            ),
            Some(xmlsec_subjects::PrincipalKind::Group) => {
                let has_member =
                    dir.principals().any(|(p, _)| p != ug.as_str() && dir.is_member(p, ug));
                if !has_member {
                    out.push(
                        Finding::new(
                            Severity::Warning,
                            "empty-group",
                            format!(
                                "group {ug:?} has no members; the authorization applies to nobody"
                            ),
                        )
                        .with_auth(i),
                    );
                }
            }
            Some(xmlsec_subjects::PrincipalKind::User) => {}
        }
    }

    for i in 0..auths.len() {
        for j in (i + 1)..auths.len() {
            let (a, b) = (&auths[i], &auths[j]);
            if a == b {
                out.push(
                    Finding::new(
                        Severity::Warning,
                        "duplicate",
                        "duplicates an earlier identical authorization",
                    )
                    .with_auth(j)
                    .with_other_auth(i),
                );
                continue;
            }
            let same_object = a.object.uri == b.object.uri
                && a.object.path_text == b.object.path_text
                && a.action == b.action
                && a.ty == b.ty;
            if !same_object {
                continue;
            }
            if a.sign == b.sign {
                // Same effect: the more specific subject is redundant.
                let shadowed_by = if a.subject.strictly_leq(&b.subject, dir) {
                    Some((i, j))
                } else if b.subject.strictly_leq(&a.subject, dir) {
                    Some((j, i))
                } else {
                    None
                };
                if let Some((shadowed, by)) = shadowed_by {
                    out.push(
                        Finding::new(
                            Severity::Warning,
                            "shadowed",
                            "redundant: a more general authorization has the same object, \
                             action, type, and sign",
                        )
                        .with_auth(shadowed)
                        .with_other_auth(by),
                    );
                }
            } else {
                let comparable = a.subject.leq(&b.subject, dir) || b.subject.leq(&a.subject, dir);
                if comparable {
                    let (plus, minus) =
                        if a.sign == crate::model::Sign::Plus { (i, j) } else { (j, i) };
                    let same_subject = a.subject == b.subject;
                    out.push(
                        Finding::new(
                            Severity::Info,
                            "contradiction",
                            if same_subject {
                                "permission and denial on the same object with the same subject; \
                                 the outcome depends only on the conflict-resolution policy"
                            } else {
                                "permission and denial on the same object with comparable \
                                 subjects (this is how exceptions are written)"
                            },
                        )
                        .with_auth(plus)
                        .with_other_auth(minus),
                    );
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AuthType, ObjectSpec, Sign};
    use xmlsec_subjects::Subject;

    fn dir() -> Directory {
        let mut d = Directory::new();
        d.add_user("tom").unwrap();
        d.add_group("Staff").unwrap();
        d.add_group("Ghost").unwrap();
        d.add_member("tom", "Staff").unwrap();
        d
    }

    fn auth(ug: &str, path: &str, sign: Sign) -> Authorization {
        Authorization::new(
            Subject::new(ug, "*", "*").unwrap(),
            ObjectSpec::with_path("d.xml", path).unwrap(),
            sign,
            AuthType::Recursive,
        )
    }

    /// `(kind, auth, other_auth)` triples — the shape assertions reach for.
    fn spans(fs: &[Finding]) -> Vec<(&str, Option<usize>, Option<usize>)> {
        fs.iter().map(|f| (f.kind.as_str(), f.span.auth, f.span.other_auth)).collect()
    }

    #[test]
    fn unknown_subject_flagged() {
        let a = [auth("nobody", "/a", Sign::Plus)];
        let f = lint_policy(&a, &dir());
        assert_eq!(f[0].kind, "unknown-subject");
        assert_eq!(f[0].severity, Severity::Error);
        assert_eq!(f[0].span.auth, Some(0));
        assert!(f[0].message.contains("nobody"), "{}", f[0].message);
    }

    #[test]
    fn empty_group_flagged() {
        let a = [auth("Ghost", "/a", Sign::Plus)];
        let f = lint_policy(&a, &dir());
        assert!(
            f.iter().any(|x| x.kind == "empty-group"
                && x.span.auth == Some(0)
                && x.message.contains("Ghost")),
            "{f:?}"
        );
        // Staff has a member: not flagged.
        let b = [auth("Staff", "/a", Sign::Plus)];
        assert!(lint_policy(&b, &dir()).is_empty());
    }

    #[test]
    fn duplicates_flagged() {
        let a = [auth("Staff", "/a", Sign::Plus), auth("Staff", "/a", Sign::Plus)];
        let f = lint_policy(&a, &dir());
        assert!(spans(&f).contains(&("duplicate", Some(1), Some(0))), "{f:?}");
    }

    #[test]
    fn shadowed_specific_subject_flagged() {
        // tom ≤ Staff, same object/sign: the tom-specific one is redundant.
        let a = [auth("tom", "/a", Sign::Plus), auth("Staff", "/a", Sign::Plus)];
        let f = lint_policy(&a, &dir());
        assert!(spans(&f).contains(&("shadowed", Some(0), Some(1))), "{f:?}");
        // Different objects: no shadowing.
        let b = [auth("tom", "/a", Sign::Plus), auth("Staff", "/b", Sign::Plus)];
        assert!(lint_policy(&b, &dir()).is_empty());
    }

    #[test]
    fn contradictions_flagged_with_subject_equality() {
        let a = [auth("tom", "/a", Sign::Plus), auth("Staff", "/a", Sign::Minus)];
        let f = lint_policy(&a, &dir());
        assert!(spans(&f).contains(&("contradiction", Some(0), Some(1))), "{f:?}");
        assert!(
            f.iter().any(|x| x.kind == "contradiction" && x.message.contains("exceptions")),
            "{f:?}"
        );
        let b = [auth("Staff", "/a", Sign::Minus), auth("Staff", "/a", Sign::Plus)];
        let f2 = lint_policy(&b, &dir());
        assert!(spans(&f2).contains(&("contradiction", Some(1), Some(0))), "{f2:?}");
        assert!(
            f2.iter()
                .any(|x| x.kind == "contradiction" && x.message.contains("same subject")),
            "{f2:?}"
        );
    }

    #[test]
    fn incomparable_subjects_do_not_contradict_here() {
        let mut d = dir();
        d.add_group("Other").unwrap();
        d.add_user("eve").unwrap();
        d.add_member("eve", "Other").unwrap();
        let a = [auth("Staff", "/a", Sign::Plus), auth("Other", "/a", Sign::Minus)];
        // Incomparable subjects: the engine resolves per requester; lint
        // stays quiet (both can coexist meaningfully).
        let f = lint_policy(&a, &d);
        assert!(!f.iter().any(|x| x.kind == "contradiction"), "{f:?}");
    }

    #[test]
    fn severities_follow_the_documented_scale() {
        let a = [
            auth("nobody", "/a", Sign::Plus),
            auth("Staff", "/a", Sign::Plus),
            auth("Staff", "/a", Sign::Plus),
            auth("tom", "/a", Sign::Minus),
        ];
        let fs = lint_policy(&a, &dir());
        let unknown = fs.iter().find(|f| f.kind == "unknown-subject").unwrap();
        assert_eq!(unknown.severity, Severity::Error);
        assert_eq!(unknown.span.auth, Some(0));
        let dup = fs.iter().find(|f| f.kind == "duplicate").unwrap();
        assert_eq!(dup.severity, Severity::Warning);
        assert_eq!((dup.span.auth, dup.span.other_auth), (Some(2), Some(1)));
        let contra = fs.iter().find(|f| f.kind == "contradiction").unwrap();
        assert_eq!(contra.severity, Severity::Info);
    }

    #[test]
    fn display_forms_carry_spans() {
        let a = [auth("Staff", "/a", Sign::Plus), auth("Staff", "/a", Sign::Plus)];
        let f = lint_policy(&a, &dir());
        let rendered = f[0].to_string();
        assert!(rendered.contains("duplicate"), "{rendered}");
    }
}
