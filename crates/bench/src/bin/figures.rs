//! Regenerates the paper's figures and worked examples as text, plus a
//! machine-readable JSON report.
//!
//! Usage: `cargo run -p xmlsec-bench --bin figures -- [fig1|fig3|ash|loosen|all]`

use xmlsec_core::{AccessRequest, DocumentSource, SecurityProcessor};
use xmlsec_dtd::{dtd_tree, loosen, parse_dtd, render_dtd_tree, serialize_dtd};
use xmlsec_subjects::{IpPattern, Requester, Subject, SymPattern};
use xmlsec_telemetry as telemetry;
use xmlsec_workload::laboratory::*;
use xmlsec_xml::{parse, render_tree};

struct Report {
    figure1_dtd_elements: usize,
    figure3_nodes_total: usize,
    figure3_nodes_visible_to_tom: usize,
    figure3_view_matches_expected: bool,
    loosened_dtd_accepts_view: bool,
    example1_authorizations: usize,
}

impl Report {
    /// Hand-rolled JSON: every field is a number or a bool, so no
    /// escaping is needed.
    fn to_json(&self) -> String {
        format!(
            "{{\n  \"figure1_dtd_elements\": {},\n  \"figure3_nodes_total\": {},\n  \
             \"figure3_nodes_visible_to_tom\": {},\n  \"figure3_view_matches_expected\": {},\n  \
             \"loosened_dtd_accepts_view\": {},\n  \"example1_authorizations\": {}\n}}",
            self.figure1_dtd_elements,
            self.figure3_nodes_total,
            self.figure3_nodes_visible_to_tom,
            self.figure3_view_matches_expected,
            self.loosened_dtd_accepts_view,
            self.example1_authorizations,
        )
    }
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let mut report = None;
    match arg.as_str() {
        "fig1" => fig1(),
        "fig3" => {
            report = Some(fig3());
        }
        "ash" => ash(),
        "loosen" => loosen_demo(),
        "bench-smoke" => bench_smoke(),
        "all" => {
            fig1();
            ash();
            loosen_demo();
            report = Some(fig3());
        }
        other => {
            eprintln!("unknown figure {other:?}; use fig1|fig3|ash|loosen|bench-smoke|all");
            std::process::exit(2);
        }
    }
    if let Some(r) = report {
        println!("\n== machine-readable report ==\n{}", r.to_json());
    }
}

/// Figure 1: the laboratory DTD (a) and its tree (b).
fn fig1() {
    let dtd = parse_dtd(LAB_DTD).expect("Figure 1(a) DTD parses");
    println!("== Figure 1(a): DTD ==\n{}", serialize_dtd(&dtd));
    let tree = dtd_tree(&dtd, "laboratory").expect("root declared");
    println!("== Figure 1(b): DTD tree ==\n{}", render_dtd_tree(&tree));
}

/// Figure 3: CSlab.xml (a) and Tom's view (b), via the full processor.
fn fig3() -> Report {
    let doc = parse(CSLAB_XML).expect("CSlab.xml parses");
    println!("== Figure 3(a): CSlab.xml ==\n{}", render_tree(&doc));

    println!("== Example 1 authorizations ==");
    for a in example1_authorizations() {
        println!("  {a}");
    }

    let processor = SecurityProcessor::new(lab_directory(), lab_authorization_base());
    let requester = tom();
    println!("\n== Example 2 requester: {requester} ==");
    let out = processor
        .process(
            &AccessRequest { requester, uri: CSLAB_URI.to_string() },
            &DocumentSource { xml: CSLAB_XML, dtd: Some(LAB_DTD), dtd_uri: Some(LAB_DTD_URI) },
        )
        .expect("pipeline runs");
    println!("== Figure 3(b): Tom's view ==\n{}", render_tree(&out.view));

    let expected = parse(TOM_VIEW_XML).expect("expected view parses");
    let matches = out.view.structurally_equal(&expected);
    println!("matches reproduced Figure 3(b): {matches}");

    let loosened =
        parse_dtd(out.loosened_dtd.as_deref().expect("DTD present")).expect("loosened DTD parses");
    let accepts = xmlsec_dtd::validate(&loosened, &out.view).is_empty();

    Report {
        figure1_dtd_elements: parse_dtd(LAB_DTD).expect("parses").elements.len(),
        figure3_nodes_total: doc.count_reachable(),
        figure3_nodes_visible_to_tom: out.view.count_reachable(),
        figure3_view_matches_expected: matches,
        loosened_dtd_accepts_view: accepts,
        example1_authorizations: example1_authorizations().len(),
    }
}

/// §3 worked examples: pattern matching and ASH dominance.
fn ash() {
    println!("== §3: location patterns ==");
    let net: IpPattern = "151.100.*".parse().expect("pattern parses");
    for addr in ["151.100.7.9", "150.100.7.9"] {
        let a: IpPattern = addr.parse().expect("address parses");
        println!("  {net}  matches {addr}: {}", net.matches(&a));
    }
    for (pat, host) in
        [("*.it", "infosys.bld1.it"), ("*.lab.com", "tweety.lab.com"), ("*.lab.com", "lab.com")]
    {
        let p: SymPattern = pat.parse().expect("pattern parses");
        let h: SymPattern = host.parse().expect("host parses");
        println!("  {pat:10} matches {host}: {}", p.matches(&h));
    }

    println!("== §3: ASH dominance for Tom ==");
    let dir = lab_directory();
    let t = Requester::new("Tom", "130.100.50.8", "infosys.bld1.it").expect("requester");
    for (ug, ip, sym) in [
        ("Foreign", "*", "*"),
        ("Public", "*", "*.it"),
        ("Admin", "130.89.56.8", "*"),
        ("Tom", "130.100.*", "*"),
    ] {
        let s = Subject::new(ug, ip, sym).expect("subject");
        println!("  {t} ≤ {s}: {}", t.is_covered_by(&s, &dir));
    }
}

/// One-shot timings of the B1/B5 experiments — a quick shape check
/// without Criterion (absolute numbers are noisy; ratios and slopes are
/// the point). Timings are recorded into the global metrics registry and
/// the table is rendered *from* the registry, so this binary and the
/// server's `/metrics` endpoint share one source of truth.
fn bench_smoke() {
    use std::time::Instant;
    let time = |f: &mut dyn FnMut() -> usize| {
        // One warmup, then best of three.
        f();
        (0..3)
            .map(|_| {
                let t = Instant::now();
                let n = f();
                (t.elapsed(), n)
            })
            .min_by_key(|(d, _)| *d)
            .expect("three samples")
    };
    const SIZES: [usize; 3] = [8, 32, 128];
    const SIZE_LABELS: [&str; 3] = ["8", "32", "128"];
    let reg = telemetry::global();
    let series = |case: &'static str, projects: &'static str| {
        reg.histogram(
            "xmlsec_figures_view_duration_seconds",
            "Best-of-three compute-view wall time in the figures smoke bench.",
            &[("case", case), ("projects", projects)],
            telemetry::Buckets::duration_default(),
        )
    };
    let mut node_counts = Vec::new();
    for (i, &projects) in SIZES.iter().enumerate() {
        let s = xmlsec_bench::lab_scenario(projects);
        node_counts.push(s.doc.count_reachable());
        let (engine, _) = time(&mut || xmlsec_bench::run_view(&s));
        let (naive, _) = time(&mut || xmlsec_bench::run_view_naive(&s));
        series("engine", SIZE_LABELS[i]).observe_duration(engine);
        series("naive", SIZE_LABELS[i]).observe_duration(naive);
    }
    // Render from the registry, not from locals.
    let mean = |case: &'static str, projects: &'static str| {
        let (count, sum) = series(case, projects).totals();
        telemetry::Unit::Nanoseconds.scale(sum as f64) / (count as f64).max(1.0)
    };
    println!("== bench-smoke: B1 view scaling / B5 engine vs naive ==");
    println!("{:>10} {:>8} {:>12} {:>12} {:>8}", "projects", "nodes", "engine", "naive", "ratio");
    for (i, &projects) in SIZES.iter().enumerate() {
        let engine = mean("engine", SIZE_LABELS[i]);
        let naive = mean("naive", SIZE_LABELS[i]);
        println!(
            "{projects:>10} {:>8} {:>12} {:>12} {:>7.1}x",
            node_counts[i],
            format!("{:.3}ms", engine * 1e3),
            format!("{:.3}ms", naive * 1e3),
            naive / engine.max(1e-12)
        );
    }
    println!("(quick shape check; run `cargo bench -p xmlsec-bench` for real numbers)");
}

/// §6.2: the loosening transformation on the laboratory DTD.
fn loosen_demo() {
    let dtd = parse_dtd(LAB_DTD).expect("DTD parses");
    let loosened = loosen(&dtd);
    println!("== §6.2: loosened laboratory DTD ==\n{}", serialize_dtd(&loosened));
}
