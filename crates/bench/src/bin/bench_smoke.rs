//! `bench_smoke` — the CI perf-trajectory harness.
//!
//! Runs quick wall-time measurements of the tracked benches — B1 (view
//! computation), B10 (pipeline with telemetry live), B11 (pipeline with
//! the default resource limits enforced), B12 (parallel labeling,
//! sequential vs 4 threads on the hospital corpus), and B13
//! (content-addressed cache churn, and the ETag/If-None-Match 304
//! revalidation path that skips the pipeline), B14 (whole-policy
//! static analysis over the hospital corpus), B15 (compiled vs
//! interpreted labeling on guaranteed-heavy corpora), and B16
//! (cancellation responsiveness: p99 latency from `cancel()` to the
//! pipeline unwinding, and the deadline-check overhead an armed token
//! adds to the uncancelled hot path), B17 (serving-tier concurrency:
//! slow-client connection capacity of the epoll event loop vs the
//! blocking pool at equal worker count, plus open-loop p50/p99/p999
//! latency per transport), B18 (incremental secure updates: single-op
//! commit latency, the post-commit read as a patched warm hit vs a
//! cache-less full recompute, and the commit-time patch cost at 1, 4,
//! and 16 warm views), and B19 (the static write pre-flight: a
//! guaranteed-denied batch refused from the compiled write table vs the
//! same denial paid through dynamic write labeling) — and writes them as
//! flat JSON at
//! the repo root (`BENCH_<n+1>.json` by default, one past the highest
//! checked-in point, so the series extends without workflow edits) —
//! every PR leaves a perf record the next PR is judged against. The
//! JSON records `available_cores` so conditional gates (B12) are
//! auditable from the artifact alone.
//!
//! Gates (exit non-zero):
//!
//! - any tracked `*_ms` time regresses > 15% against the
//!   highest-numbered `BENCH_*.json` already checked in (skipped when no
//!   baseline exists, and under `XMLSEC_BENCH_NO_GATE=1`, which the
//!   nightly drift job uses to report without failing); the JSON records
//!   whether this gate actually ran (`regression_gated`), so a
//!   baseline-less or opted-out run is visible, not silent;
//! - B12's 4-thread speedup falls below 1.5x — enforced only on
//!   machines with ≥ 4 cores, since 4 workers on one core timeshare it
//!   and the honest measurement there is ~1.0x. The JSON records the
//!   measured speedup, the core count, and whether the gate applied
//!   (`b12_gated`), so a gated-off run is visible, not silent;
//! - B15's compiled-over-interpreted labeling speedup falls below 1.2x
//!   on either corpus (the acceptance target is 2x; the gate is set
//!   conservatively so shared-runner noise does not flake CI);
//! - B16's cancellation p99 latency exceeds 10 ms, or an armed deadline
//!   token slows the uncancelled pipeline by more than 5%;
//! - B17's event loop sustains fewer than 4x the blocking pool's
//!   concurrent slow-client connections at equal worker count, or any
//!   open-loop client observes a malformed or untyped-5xx response.
//!   B17's latency keys are *excluded* from the 15% drift gate — they
//!   are tail latencies over real sockets and far too noisy for it; the
//!   concurrency ratio is the stable, gated signal;
//! - B18's post-update warm read (the patched cached view) is less than
//!   3x faster than the cache-less full recompute. B18's in-process
//!   latency keys — including the commit latencies at 1/4/16 warm views,
//!   which bound the per-view patch cost — are folded into the 15% drift
//!   gate like B1/B13;
//! - B19's guaranteed-deny rejection (answered from the compiled write
//!   table, before any parsing or labeling) is less than 5x faster than
//!   the same denial paid through full dynamic write labeling.
//!
//! Usage: `bench_smoke [--quick] [--out BENCH_3.json]`

use std::hint::black_box;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};
use xmlsec_bench::{
    financial_compiled_scenario, hospital_compiled_scenario, hospital_scenario, lab_scenario,
    run_label_compiled, run_label_interpreted, run_view, run_view_parallel,
};
use xmlsec_authz::{Action, AuthType, Authorization, ObjectSpec, Sign};
use xmlsec_core::par::available_cores;
use xmlsec_core::update::UpdateOp;
use xmlsec_core::{
    analyze_policy, closure_subjects, AccessRequest, CancelToken, DocumentSource, PolicyConfig,
    ProcessorOptions, ResourceLimits, SecurityProcessor,
};
use xmlsec_dtd::parse_dtd;
use xmlsec_server::{
    AnyDemo, ClientRequest, ConditionalOutcome, HttpConfig, SecureServer, ServerError, Transport,
};
use xmlsec_workload::laboratory::{
    lab_authorization_base, lab_directory, tom, CSLAB_URI, LAB_DTD, LAB_DTD_URI,
};
use xmlsec_subjects::Subject;
use xmlsec_workload::{run_open_loop, OpenLoopConfig};
use xmlsec_xml::{serialize, SerializeOptions};

/// Allowed slowdown vs the checked-in baseline before the gate trips.
const REGRESSION_BUDGET: f64 = 1.15;
/// Required 4-thread speedup on the hospital corpus (machines ≥ 4 cores).
const SPEEDUP_GATE: f64 = 1.5;
/// Required compiled-over-interpreted labeling speedup (B15).
const COMPILE_SPEEDUP_GATE: f64 = 1.2;
/// Ceiling on p99 cancel-to-unwind latency (B16), milliseconds.
const CANCEL_P99_GATE_MS: f64 = 10.0;
/// Ceiling on the slowdown an armed deadline token may add to the
/// uncancelled pipeline (B16), percent.
const DEADLINE_OVERHEAD_GATE_PCT: f64 = 5.0;
/// Required ratio of epoll-sustained to pool-sustained concurrent
/// slow-client connections at equal worker count (B17).
const CONCURRENCY_RATIO_GATE: f64 = 4.0;
/// Required speedup of the post-update warm read (patched cached view)
/// over the cache-less full recompute (B18).
const UPDATE_READ_SPEEDUP_GATE: f64 = 3.0;
/// Required speedup of the static guaranteed-deny rejection over the
/// dynamic write-labeling denial of the same batch (B19).
const DENY_SPEEDUP_GATE: f64 = 5.0;

struct Config {
    batches: usize,
    iters: usize,
    projects: usize,
    patients: usize,
}

fn median_ms(mut xs: Vec<Duration>) -> f64 {
    xs.sort_unstable();
    xs[xs.len() / 2].as_secs_f64() * 1e3
}

/// Median wall-time (ms) of `iters` runs of `f`, over `batches` batches.
fn time_ms(cfg: &Config, mut f: impl FnMut()) -> f64 {
    for _ in 0..2 {
        f(); // warmup
    }
    let mut batches = Vec::with_capacity(cfg.batches);
    for _ in 0..cfg.batches {
        let t = Instant::now();
        for _ in 0..cfg.iters {
            f();
        }
        batches.push(t.elapsed() / cfg.iters as u32);
    }
    median_ms(batches)
}

fn pipeline_processor(limits: ResourceLimits) -> SecurityProcessor {
    let mut p = SecurityProcessor::new(lab_directory(), lab_authorization_base());
    p.options = ProcessorOptions { limits, ..p.options };
    p
}

fn run_pipeline(processor: &SecurityProcessor, xml: &str, request: &AccessRequest) -> usize {
    let source = DocumentSource { xml, dtd: Some(LAB_DTD), dtd_uri: Some(LAB_DTD_URI) };
    processor.process(request, &source).expect("pipeline").xml.len()
}

/// A fresh lab-corpus server for the B17 serving-tier measurements
/// (each transport consumes its own instance).
fn b17_server(projects: usize) -> SecureServer {
    let mut server = SecureServer::new(lab_directory(), lab_authorization_base());
    server.register_credentials("Tom", "pw");
    server.repository_mut().put_dtd(LAB_DTD_URI, LAB_DTD);
    let xml = serialize(
        &xmlsec_workload::laboratory_scaled(projects, 11),
        &SerializeOptions::canonical(),
    );
    server.repository_mut().put_document(CSLAB_URI, &xml, Some(LAB_DTD_URI));
    server
}

/// One warm-up GET so the view cache is hot before measurement.
fn b17_warm(addr: SocketAddr, target: &str) {
    let Ok(mut conn) = TcpStream::connect(addr) else { return };
    let _ = conn.write_all(format!("GET {target} HTTP/1.0\r\nHost: w\r\n\r\n").as_bytes());
    let mut buf = String::new();
    let _ = conn.read_to_string(&mut buf);
}

/// How many of `clients` concurrent *slow* clients (each dribbles its
/// request over ~300 ms) complete with a 200. On the blocking pool every
/// in-flight connection pins a worker, so capacity is `workers +
/// backlog` and the rest shed 503; the event loop holds them all.
fn b17_sustained(addr: SocketAddr, clients: usize, target: &str) -> usize {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                scope.spawn(move || {
                    let Ok(mut conn) = TcpStream::connect(addr) else { return false };
                    let _ = conn.set_read_timeout(Some(Duration::from_secs(10)));
                    let req = format!("GET {target} HTTP/1.0\r\nHost: b\r\n\r\n");
                    let (head, tail) = req.split_at(10);
                    if conn.write_all(head.as_bytes()).is_err() {
                        return false;
                    }
                    let _ = conn.flush();
                    std::thread::sleep(Duration::from_millis(300));
                    // A shed client's socket is already closed (503
                    // written at accept); the failed write is its answer.
                    let _ = conn.write_all(tail.as_bytes());
                    let mut buf = String::new();
                    if conn.read_to_string(&mut buf).is_err() {
                        return false;
                    }
                    buf.starts_with("HTTP/1.0 200")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap_or(false)).filter(|&ok| ok).count()
    })
}

/// A lab-corpus server for the B18 incremental-update measurements:
/// Alice holds a recursive write grant on the whole document, Tom reads
/// his usual pruned view. `cached` picks the serving mode under test —
/// patched warm views vs full recomputes.
fn b18_server(projects: usize, cached: bool) -> SecureServer {
    let mut base = lab_authorization_base();
    base.add(
        Authorization::new(
            Subject::new("Alice", "*", "*").expect("subject"),
            ObjectSpec::with_path(CSLAB_URI, "/laboratory").expect("object"),
            Sign::Plus,
            AuthType::Recursive,
        )
        .with_action(Action::Write),
    );
    let mut server = SecureServer::new(lab_directory(), base);
    if !cached {
        server = server.without_cache();
    }
    server.register_credentials("Tom", "pw");
    server.register_credentials("Alice", "pw");
    server.repository_mut().put_dtd(LAB_DTD_URI, LAB_DTD);
    let xml = serialize(
        &xmlsec_workload::laboratory_scaled(projects, 11),
        &SerializeOptions::canonical(),
    );
    server.repository_mut().put_document(CSLAB_URI, &xml, Some(LAB_DTD_URI));
    server
}

fn b18_client(user: &str) -> ClientRequest {
    ClientRequest {
        user: Some((user.to_string(), "pw".to_string())),
        ip: "130.100.50.8".to_string(),
        sym: "infosys.bld1.it".to_string(),
        uri: CSLAB_URI.to_string(),
    }
}

/// Medians over `rounds` commit/read pairs: single-op update latency
/// and the latency of the read that follows each commit. Every op
/// writes a fresh amount so each round genuinely dirties the tree;
/// `salt` keeps the two serving modes from reusing values.
fn b18_measure(server: &SecureServer, salt: usize, rounds: usize, cached: bool) -> (f64, f64) {
    let editor = b18_client("Alice");
    let reader = b18_client("Tom");
    server.handle(&reader).expect("warm the reader's view");
    let mut updates = Vec::with_capacity(rounds);
    let mut reads = Vec::with_capacity(rounds);
    for i in 0..rounds {
        let ops = [UpdateOp::SetText {
            target: "/laboratory/project[1]/fund/amount".to_string(),
            text: format!("{}", 50_000 + salt + i),
        }];
        let t = Instant::now();
        let touched = server.update(&editor, &ops).expect("commit");
        updates.push(t.elapsed());
        assert_eq!(touched, 1, "the single op touches exactly its target");
        let t = Instant::now();
        let view = black_box(server.handle(&reader).expect("post-commit read"));
        reads.push(t.elapsed());
        assert_eq!(view.cached, cached, "serving mode under test");
    }
    (median_ms(updates), median_ms(reads))
}

/// The B18 server plus `readers` extra users, each holding their own
/// instance-level recursive read grant on the lab document. Distinct
/// grants give each reader a distinct applicable-authorization
/// fingerprint — i.e. a distinct warm cached view the commit-time
/// patcher must update in place.
fn b18_patch_server(projects: usize, readers: usize) -> SecureServer {
    let mut dir = lab_directory();
    let mut base = lab_authorization_base();
    base.add(
        Authorization::new(
            Subject::new("Alice", "*", "*").expect("subject"),
            ObjectSpec::with_path(CSLAB_URI, "/laboratory").expect("object"),
            Sign::Plus,
            AuthType::Recursive,
        )
        .with_action(Action::Write),
    );
    for i in 0..readers {
        let name = format!("r{i}");
        dir.add_user(&name).expect("add reader");
        base.add(Authorization::new(
            Subject::new(&name, "*", "*").expect("subject"),
            ObjectSpec::with_path(CSLAB_URI, "/laboratory").expect("object"),
            Sign::Plus,
            AuthType::Recursive,
        ));
    }
    let mut server = SecureServer::new(dir, base);
    server.register_credentials("Alice", "pw");
    for i in 0..readers {
        server.register_credentials(&format!("r{i}"), "pw");
    }
    server.repository_mut().put_dtd(LAB_DTD_URI, LAB_DTD);
    let xml = serialize(
        &xmlsec_workload::laboratory_scaled(projects, 11),
        &SerializeOptions::canonical(),
    );
    server.repository_mut().put_document(CSLAB_URI, &xml, Some(LAB_DTD_URI));
    server
}

/// Median single-op commit latency (ms) with `readers` distinct warm
/// cached views; the commit patches every one of them in place, so the
/// delta across reader counts bounds the per-view patch cost. Asserts
/// the views really were patched (still warm), not evicted.
fn b18_patch_ms(projects: usize, readers: usize, rounds: usize) -> f64 {
    let server = b18_patch_server(projects, readers);
    let editor = b18_client("Alice");
    for i in 0..readers {
        server.handle(&b18_client(&format!("r{i}"))).expect("warm a reader view");
    }
    let mut times = Vec::with_capacity(rounds);
    for i in 0..rounds + 2 {
        let ops = [UpdateOp::SetText {
            target: "/laboratory/project[1]/fund/amount".to_string(),
            text: format!("{}", 90_000 + readers * 1_000_000 + i),
        }];
        let t = Instant::now();
        server.update(&editor, &ops).expect("commit");
        if i >= 2 {
            times.push(t.elapsed()); // first two rounds are warmup
        }
    }
    for i in 0..readers {
        let view = server.handle(&b18_client(&format!("r{i}"))).expect("post-commit read");
        assert!(view.cached, "reader {i}'s view should have been patched in place");
    }
    median_ms(times)
}

/// Median latency (ms) of `rounds` denied single-op batches from a
/// requester holding no write authorization. `expect_static` asserts
/// which denial machinery actually answered, so the bench measures what
/// it claims: the compiled-table pre-flight vs full dynamic labeling.
fn b19_deny_ms(server: &SecureServer, rounds: usize, expect_static: bool) -> f64 {
    let intruder = b18_client("Tom");
    let ops = [UpdateOp::SetText {
        target: "/laboratory/project[1]/fund/amount".to_string(),
        text: "stolen".to_string(),
    }];
    let mut times = Vec::with_capacity(rounds);
    for i in 0..rounds + 2 {
        let t = Instant::now();
        let err = server.update(&intruder, &ops).expect_err("Tom holds no write grant");
        let elapsed = t.elapsed();
        match (&err, expect_static) {
            (ServerError::UpdateDeniedStatic { .. }, true) => {}
            (ServerError::UpdateDenied(_), false) => {}
            _ => panic!("unexpected denial path (expect_static={expect_static}): {err:?}"),
        }
        if i >= 2 {
            times.push(elapsed); // first two rounds are warmup
        }
    }
    median_ms(times)
}

/// Parses the flat one-level JSON this tool writes: string and numeric
/// fields only, no nesting, no escapes beyond what we emit. Returns the
/// numeric fields.
fn parse_flat_json(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let body = text.trim().trim_start_matches('{').trim_end_matches('}');
    for field in body.split(',') {
        let Some((key, value)) = field.split_once(':') else { continue };
        let key = key.trim().trim_matches('"').to_string();
        if let Ok(v) = value.trim().parse::<f64>() {
            out.push((key, v));
        }
    }
    out
}

/// Every `BENCH_<n>.json` in the working directory.
fn bench_files() -> Vec<(u64, std::path::PathBuf)> {
    let Ok(dir) = std::fs::read_dir(".") else { return Vec::new() };
    let mut out = Vec::new();
    for entry in dir.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        let Some(n) = name.strip_prefix("BENCH_").and_then(|s| s.strip_suffix(".json")) else {
            continue;
        };
        if let Ok(n) = n.parse::<u64>() {
            out.push((n, entry.path()));
        }
    }
    out.sort();
    out
}

/// The checked-in `BENCH_<n>.json` with the highest `n`, excluding the
/// file this run writes.
fn baseline_path(out: &str) -> Option<std::path::PathBuf> {
    bench_files()
        .into_iter()
        .filter(|(_, p)| p.file_name().map(|f| f.to_string_lossy() != out).unwrap_or(true))
        .max_by_key(|(n, _)| *n)
        .map(|(_, p)| p)
}

/// Default output name: one past the highest checked-in trajectory
/// point, so CI keeps extending the series without workflow edits.
fn next_out() -> String {
    let next = bench_files().last().map(|(n, _)| n + 1).unwrap_or(1);
    format!("BENCH_{next}.json")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(next_out);
    let no_gate = std::env::var_os("XMLSEC_BENCH_NO_GATE").is_some();
    let cfg = if quick {
        Config { batches: 3, iters: 5, projects: 32, patients: 300 }
    } else {
        Config { batches: 7, iters: 15, projects: 64, patients: 1200 }
    };
    let cores = available_cores();
    eprintln!(
        "bench_smoke: {} batches x {} iters, {} cores, quick={quick} -> {out}",
        cfg.batches, cfg.iters, cores
    );

    // B1 — core view computation on the scaled laboratory.
    let lab = lab_scenario(cfg.projects);
    let b1_view_ms = time_ms(&cfg, || {
        black_box(run_view(&lab));
    });
    eprintln!("  b1_view_ms = {b1_view_ms:.3}");

    // B10 — full pipeline with telemetry recording live (the default).
    let doc = xmlsec_workload::laboratory_scaled(cfg.projects, 5);
    let xml = serialize(&doc, &SerializeOptions::canonical());
    let request = AccessRequest { requester: tom(), uri: CSLAB_URI.to_string() };
    let unlimited = pipeline_processor(ResourceLimits::unlimited());
    let b10_pipeline_ms = time_ms(&cfg, || {
        black_box(run_pipeline(&unlimited, &xml, &request));
    });
    eprintln!("  b10_pipeline_ms = {b10_pipeline_ms:.3}");

    // B11 — the same pipeline with every default resource cap enforced.
    let limited = pipeline_processor(ResourceLimits::default_limits());
    let b11_limits_ms = time_ms(&cfg, || {
        black_box(run_pipeline(&limited, &xml, &request));
    });
    eprintln!("  b11_limits_ms = {b11_limits_ms:.3}");

    // B12 — parallel labeling on the hospital corpus, 1 vs 4 threads.
    let hospital = hospital_scenario(cfg.patients);
    let want = run_view_parallel(&hospital, 1);
    let b12_seq_ms = time_ms(&cfg, || {
        assert_eq!(black_box(run_view_parallel(&hospital, 1)), want);
    });
    let b12_par4_ms = time_ms(&cfg, || {
        assert_eq!(black_box(run_view_parallel(&hospital, 4)), want);
    });
    let b12_speedup_4t = b12_seq_ms / b12_par4_ms.max(1e-9);
    let b12_gated = cores >= 4 && !no_gate;
    eprintln!(
        "  b12_seq_ms = {b12_seq_ms:.3}  b12_par4_ms = {b12_par4_ms:.3}  speedup {b12_speedup_4t:.2}x (gate {})",
        if b12_gated { "live" } else { "off" }
    );

    // B13 — content-addressed cache churn and conditional revalidation
    // through the full secure server.
    let mut server = SecureServer::new(lab_directory(), lab_authorization_base());
    server.register_credentials("Tom", "pw");
    server.repository_mut().put_dtd(LAB_DTD_URI, LAB_DTD);
    let variants = [
        serialize(
            &xmlsec_workload::laboratory_scaled(cfg.projects, 11),
            &SerializeOptions::canonical(),
        ),
        serialize(
            &xmlsec_workload::laboratory_scaled(cfg.projects, 12),
            &SerializeOptions::canonical(),
        ),
    ];
    let client = ClientRequest {
        user: Some(("Tom".to_string(), "pw".to_string())),
        ip: "130.100.50.8".to_string(),
        sym: "infosys.bld1.it".to_string(),
        uri: CSLAB_URI.to_string(),
    };
    // Churn: mutate stored content (rehash), miss on the moved key
    // (sweeping the stale twin), re-render, then hit the fresh entry.
    let mut flip = 0usize;
    let b13_churn_ms = time_ms(&cfg, || {
        flip ^= 1;
        server
            .repository_mut()
            .put_document(CSLAB_URI, &variants[flip], Some(LAB_DTD_URI));
        let miss = server.handle(&client).expect("serve after mutation");
        assert!(!miss.cached, "content change must miss");
        let hit = server.handle(&client).expect("serve warm");
        assert!(hit.cached, "second request must hit");
    });
    eprintln!("  b13_churn_ms = {b13_churn_ms:.3}");
    // 304 path: a matching If-None-Match answers from the warm cache
    // without touching the pipeline or rendering a body.
    let etag = server.handle(&client).expect("warm").etag;
    let inm = format!("\"{etag}\"");
    let b13_not_modified_ms = time_ms(&cfg, || {
        match server.handle_conditional(&client, Some(&inm)).expect("revalidate") {
            ConditionalOutcome::NotModified { .. } => {}
            ConditionalOutcome::Full(_) => panic!("expected 304"),
        }
    });
    eprintln!("  b13_not_modified_ms = {b13_not_modified_ms:.5}");

    // B14 — whole-policy static analysis on the hospital corpus: the
    // schema-level abstract interpretation over every closure subject.
    let hospital_dtd = parse_dtd(xmlsec_workload::hospital::HOSPITAL_DTD).expect("hospital DTD");
    let hospital_auths = xmlsec_workload::hospital::hospital_authorizations();
    let hospital_dir = xmlsec_workload::hospital::hospital_directory();
    let b14_analyze_ms = time_ms(&cfg, || {
        let subjects = closure_subjects(&hospital_auths, &hospital_dir);
        black_box(analyze_policy(
            &hospital_dtd,
            "ward",
            xmlsec_workload::hospital::HOSPITAL_DTD_URI,
            &hospital_auths,
            &hospital_dir,
            PolicyConfig::paper_default(),
            &subjects,
        ));
    });
    eprintln!("  b14_analyze_ms = {b14_analyze_ms:.3}");

    // B15 — compiled vs interpreted labeling on the guaranteed-heavy
    // corpora (omar's ward view, tina's branch statements view). The
    // policy is compiled once, outside the timing loop — the table is
    // cached across requests in production — and both constructors
    // assert the whole-document fast path, so the compiled runner
    // measures table-driven labeling, not a partial fallback.
    let hosp = hospital_compiled_scenario(cfg.patients);
    let fin = financial_compiled_scenario(cfg.patients);
    let hosp_want = run_label_interpreted(&hosp.scenario);
    let fin_want = run_label_interpreted(&fin.scenario);
    let b15_hosp_interp_ms = time_ms(&cfg, || {
        assert_eq!(black_box(run_label_interpreted(&hosp.scenario)), hosp_want);
    });
    let b15_hosp_compiled_ms = time_ms(&cfg, || {
        assert_eq!(black_box(run_label_compiled(&hosp)), hosp_want);
    });
    let b15_fin_interp_ms = time_ms(&cfg, || {
        assert_eq!(black_box(run_label_interpreted(&fin.scenario)), fin_want);
    });
    let b15_fin_compiled_ms = time_ms(&cfg, || {
        assert_eq!(black_box(run_label_compiled(&fin)), fin_want);
    });
    let b15_hosp_speedup = b15_hosp_interp_ms / b15_hosp_compiled_ms.max(1e-9);
    let b15_fin_speedup = b15_fin_interp_ms / b15_fin_compiled_ms.max(1e-9);
    eprintln!(
        "  b15 hospital: {b15_hosp_interp_ms:.3}ms interpreted vs {b15_hosp_compiled_ms:.3}ms \
         compiled ({b15_hosp_speedup:.2}x)"
    );
    eprintln!(
        "  b15 financial: {b15_fin_interp_ms:.3}ms interpreted vs {b15_fin_compiled_ms:.3}ms \
         compiled ({b15_fin_speedup:.2}x)"
    );

    // B16 — cancellation responsiveness. Start the full pipeline on a
    // worker thread, trip the token partway through the (known) median
    // runtime, and measure cancel() → unwind. p99 over the samples must
    // land under the gate: cancellation is only useful if it frees the
    // worker promptly.
    let b16_samples = if quick { 20 } else { 50 };
    let cancel_delay = Duration::from_secs_f64((b10_pipeline_ms * 0.4 / 1e3).max(2e-4));
    let mut cancel_latencies: Vec<Duration> = Vec::with_capacity(b16_samples);
    for _ in 0..b16_samples {
        let mut p = pipeline_processor(ResourceLimits::unlimited());
        let token = CancelToken::never();
        p.options.cancel = token.clone();
        let (xml_ref, request_ref) = (&xml, &request);
        std::thread::scope(|scope| {
            let worker = scope.spawn(move || {
                let source =
                    DocumentSource { xml: xml_ref, dtd: Some(LAB_DTD), dtd_uri: Some(LAB_DTD_URI) };
                matches!(p.process(request_ref, &source), Err(e) if e.is_cancelled())
            });
            std::thread::sleep(cancel_delay);
            let t = Instant::now();
            token.cancel();
            let was_cancelled = worker.join().expect("B16 worker");
            // Runs that beat the cancel to the finish line measure
            // nothing; only genuinely interrupted runs count.
            if was_cancelled {
                cancel_latencies.push(t.elapsed());
            }
        });
    }
    cancel_latencies.sort_unstable();
    let b16_cancelled_runs = cancel_latencies.len();
    let b16_cancel_p99_ms = cancel_latencies
        .get((b16_cancelled_runs * 99 / 100).min(b16_cancelled_runs.saturating_sub(1)))
        .map(|d| d.as_secs_f64() * 1e3)
        .unwrap_or(0.0);
    // Overhead of an armed-but-unmet deadline on the hot path: the same
    // pipeline as B10, but every request mints a real wall-clock token
    // (the production server pattern).
    let mut deadline_proc = pipeline_processor(ResourceLimits::unlimited());
    let b16_deadline_pipeline_ms = time_ms(&cfg, || {
        deadline_proc.options.cancel = CancelToken::with_timeout(Duration::from_secs(300));
        black_box(run_pipeline(&deadline_proc, &xml, &request));
    });
    let b16_overhead_pct = (b16_deadline_pipeline_ms / b10_pipeline_ms.max(1e-9) - 1.0) * 100.0;
    eprintln!(
        "  b16 cancel p99 = {b16_cancel_p99_ms:.3}ms over {b16_cancelled_runs}/{b16_samples} \
         interrupted runs; armed-deadline pipeline {b16_deadline_pipeline_ms:.3}ms \
         ({b16_overhead_pct:+.2}% vs B10)"
    );

    // B17 — serving-tier concurrency and open-loop tail latency over
    // real sockets, both transports.
    //
    // (a) Concurrent-connection capacity at equal worker count: 64 slow
    // clients dribble their requests against workers=2/backlog=2. The
    // blocking pool pins a worker per in-flight connection, so only
    // ~workers+backlog complete; the event loop holds all of them.
    let b17_target = format!("/{CSLAB_URI}?user=Tom&pass=pw&ip=130.100.50.8&host=infosys.bld1.it");
    let b17_clients = 64usize;
    let cap_cfg = HttpConfig { workers: 2, backlog: 2, ..Default::default() };
    let mut sustained = [0usize; 2];
    for (i, transport) in [Transport::Pool, Transport::Epoll].iter().enumerate() {
        let mut demo =
            AnyDemo::start_with(*transport, b17_server(cfg.projects), "127.0.0.1:0", cap_cfg)
                .expect("bind B17 capacity server");
        b17_warm(demo.addr(), &b17_target);
        sustained[i] = b17_sustained(demo.addr(), b17_clients, &b17_target);
        demo.shutdown();
    }
    let (b17_pool_sustained, b17_epoll_sustained) = (sustained[0], sustained[1]);
    let b17_concurrency_ratio = b17_epoll_sustained as f64 / b17_pool_sustained.max(1) as f64;
    eprintln!(
        "  b17 sustained slow clients: pool {b17_pool_sustained}/{b17_clients}, \
         epoll {b17_epoll_sustained}/{b17_clients} ({b17_concurrency_ratio:.1}x)"
    );

    // (b) Open-loop tail latency: a fixed arrival schedule (not
    // closed-loop) of warm hits, 304 revalidations, cache-miss queries
    // and slow clients, per transport. Departures do not wait for
    // completions, so queueing behind a backlogged server is measured
    // instead of hidden (no coordinated omission).
    let ol_cfg = OpenLoopConfig {
        seed: 0xB17,
        requests: if quick { 150 } else { 400 },
        rate: 250.0,
        ..Default::default()
    };
    let mut ol_reports = Vec::with_capacity(2);
    for transport in [Transport::Pool, Transport::Epoll] {
        let mut demo = AnyDemo::start_with(
            transport,
            b17_server(cfg.projects),
            "127.0.0.1:0",
            HttpConfig::default(),
        )
        .expect("bind B17 open-loop server");
        let report = run_open_loop(
            demo.addr(),
            &OpenLoopConfig { view_target: b17_target.clone(), ..ol_cfg.clone() },
        );
        demo.shutdown();
        eprintln!(
            "  b17 {transport}: {} answered at {:.0} rps, p50 {:.3}ms p99 {:.3}ms p999 {:.3}ms \
             (shed {}, aborted {}, malformed {})",
            report.answered(),
            report.throughput(),
            report.percentile(0.5).as_secs_f64() * 1e3,
            report.percentile(0.99).as_secs_f64() * 1e3,
            report.percentile(0.999).as_secs_f64() * 1e3,
            report.shed,
            report.aborted,
            report.malformed,
        );
        ol_reports.push(report);
    }
    let p_ms = |i: usize, q: f64| ol_reports[i].percentile(q).as_secs_f64() * 1e3;
    let (b17_pool_p50_ms, b17_pool_p99_ms, b17_pool_p999_ms) =
        (p_ms(0, 0.5), p_ms(0, 0.99), p_ms(0, 0.999));
    let (b17_epoll_p50_ms, b17_epoll_p99_ms, b17_epoll_p999_ms) =
        (p_ms(1, 0.5), p_ms(1, 0.99), p_ms(1, 0.999));
    let (b17_pool_rps, b17_epoll_rps) = (ol_reports[0].throughput(), ol_reports[1].throughput());

    // B18 — incremental secure updates. Single-op commit latency
    // (incremental relabel + in-place view patching), and the read that
    // follows each commit: a patched warm hit on the caching server vs
    // a full recompute on the cache-less one. The speedup of that
    // post-update read is the point of the incremental machinery.
    let b18_rounds = cfg.batches * cfg.iters;
    let warm_server = b18_server(cfg.projects, true);
    let (b18_update_ms, b18_warm_read_ms) = b18_measure(&warm_server, 0, b18_rounds, true);
    let cold_server = b18_server(cfg.projects, false);
    let (_, b18_recompute_read_ms) = b18_measure(&cold_server, 1_000_000, b18_rounds, false);
    let b18_read_speedup = b18_recompute_read_ms / b18_warm_read_ms.max(1e-9);
    eprintln!(
        "  b18_update_ms = {b18_update_ms:.4}  warm read {b18_warm_read_ms:.4}ms vs recompute \
         {b18_recompute_read_ms:.4}ms ({b18_read_speedup:.1}x)"
    );
    // Commit latency as the warm-view population grows: the commit
    // patches every warm view for the URI in place, so these medians
    // bound the per-view patch cost.
    let b18_patch_1_ms = b18_patch_ms(cfg.projects, 1, b18_rounds);
    let b18_patch_4_ms = b18_patch_ms(cfg.projects, 4, b18_rounds);
    let b18_patch_16_ms = b18_patch_ms(cfg.projects, 16, b18_rounds);
    eprintln!(
        "  b18 patch cost: commit at 1 warm view {b18_patch_1_ms:.4}ms, 4 views \
         {b18_patch_4_ms:.4}ms, 16 views {b18_patch_16_ms:.4}ms"
    );

    // B19 — static write pre-flight. Tom holds no write authorization,
    // so his compiled write table is unwritable and the pre-flight
    // refuses the batch in O(ops) before parsing or labeling anything;
    // the same server with the pre-flight disabled pays full dynamic
    // write labeling to reach the identical 403.
    let b19_static_server = b18_server(cfg.projects, true);
    let b19_static_deny_ms = b19_deny_ms(&b19_static_server, b18_rounds, true);
    let b19_dynamic_server = b18_server(cfg.projects, true).without_static_preflight();
    let b19_dynamic_deny_ms = b19_deny_ms(&b19_dynamic_server, b18_rounds, false);
    let b19_deny_speedup = b19_dynamic_deny_ms / b19_static_deny_ms.max(1e-9);
    eprintln!(
        "  b19 guaranteed-deny: static {b19_static_deny_ms:.4}ms vs dynamic \
         {b19_dynamic_deny_ms:.4}ms ({b19_deny_speedup:.1}x)"
    );

    let regression_gated = !no_gate && baseline_path(&out).is_some();

    let json = format!(
        "{{\n  \"bench\": \"bench_smoke\",\n  \"quick\": {quick},\n  \"cores\": {cores},\n  \
         \"available_cores\": {cores},\n  \
         \"b1_view_ms\": {b1_view_ms:.4},\n  \"b10_pipeline_ms\": {b10_pipeline_ms:.4},\n  \
         \"b11_limits_ms\": {b11_limits_ms:.4},\n  \"b12_seq_ms\": {b12_seq_ms:.4},\n  \
         \"b12_par4_ms\": {b12_par4_ms:.4},\n  \"b12_speedup_4t\": {b12_speedup_4t:.4},\n  \
         \"b12_gated\": {},\n  \"b13_churn_ms\": {b13_churn_ms:.4},\n  \
         \"b13_not_modified_ms\": {b13_not_modified_ms:.5},\n  \
         \"b14_analyze_ms\": {b14_analyze_ms:.4},\n  \
         \"b15_hosp_interp_ms\": {b15_hosp_interp_ms:.4},\n  \
         \"b15_hosp_compiled_ms\": {b15_hosp_compiled_ms:.4},\n  \
         \"b15_hosp_speedup\": {b15_hosp_speedup:.4},\n  \
         \"b15_fin_interp_ms\": {b15_fin_interp_ms:.4},\n  \
         \"b15_fin_compiled_ms\": {b15_fin_compiled_ms:.4},\n  \
         \"b15_fin_speedup\": {b15_fin_speedup:.4},\n  \
         \"b16_cancel_p99_ms\": {b16_cancel_p99_ms:.4},\n  \
         \"b16_cancelled_runs\": {b16_cancelled_runs},\n  \
         \"b16_deadline_pipeline_ms\": {b16_deadline_pipeline_ms:.4},\n  \
         \"b16_overhead_pct\": {b16_overhead_pct:.4},\n  \
         \"b17_pool_sustained\": {b17_pool_sustained},\n  \
         \"b17_epoll_sustained\": {b17_epoll_sustained},\n  \
         \"b17_concurrency_ratio\": {b17_concurrency_ratio:.4},\n  \
         \"b17_pool_p50_ms\": {b17_pool_p50_ms:.4},\n  \
         \"b17_pool_p99_ms\": {b17_pool_p99_ms:.4},\n  \
         \"b17_pool_p999_ms\": {b17_pool_p999_ms:.4},\n  \
         \"b17_pool_rps\": {b17_pool_rps:.2},\n  \
         \"b17_epoll_p50_ms\": {b17_epoll_p50_ms:.4},\n  \
         \"b17_epoll_p99_ms\": {b17_epoll_p99_ms:.4},\n  \
         \"b17_epoll_p999_ms\": {b17_epoll_p999_ms:.4},\n  \
         \"b17_epoll_rps\": {b17_epoll_rps:.2},\n  \
         \"b18_update_ms\": {b18_update_ms:.4},\n  \
         \"b18_warm_read_ms\": {b18_warm_read_ms:.5},\n  \
         \"b18_recompute_read_ms\": {b18_recompute_read_ms:.4},\n  \
         \"b18_read_speedup\": {b18_read_speedup:.4},\n  \
         \"b18_patch_1_ms\": {b18_patch_1_ms:.4},\n  \
         \"b18_patch_4_ms\": {b18_patch_4_ms:.4},\n  \
         \"b18_patch_16_ms\": {b18_patch_16_ms:.4},\n  \
         \"b19_static_deny_ms\": {b19_static_deny_ms:.5},\n  \
         \"b19_dynamic_deny_ms\": {b19_dynamic_deny_ms:.4},\n  \
         \"b19_deny_speedup\": {b19_deny_speedup:.4},\n  \
         \"regression_gated\": {}\n}}\n",
        if b12_gated { 1 } else { 0 },
        if regression_gated { 1 } else { 0 },
    );
    std::fs::write(&out, &json).expect("write bench JSON");
    eprintln!("wrote {out}");

    let mut failures: Vec<String> = Vec::new();

    // Regression gate vs the previously checked-in trajectory point.
    match baseline_path(&out) {
        Some(path) if !no_gate => {
            let text = std::fs::read_to_string(&path).expect("read baseline");
            let old = parse_flat_json(&text);
            let new = parse_flat_json(&json);
            for (key, new_v) in &new {
                // B17's open-loop latencies are tails over real sockets
                // — far too noisy for a 15% drift gate; B17 is gated on
                // the concurrency ratio below instead.
                if !key.ends_with("_ms") || key.starts_with("b17_") {
                    continue;
                }
                let Some((_, old_v)) = old.iter().find(|(k, _)| k == key) else { continue };
                let ratio = new_v / old_v.max(1e-9);
                if ratio > REGRESSION_BUDGET {
                    failures.push(format!(
                        "{key} regressed {:.1}% vs {} ({old_v:.3}ms -> {new_v:.3}ms)",
                        (ratio - 1.0) * 100.0,
                        path.display()
                    ));
                } else {
                    eprintln!("  {key}: {ratio:.3}x vs baseline (ok)");
                }
            }
        }
        Some(path) => eprintln!("baseline {} present but gating disabled", path.display()),
        None => eprintln!("no earlier BENCH_*.json baseline; regression gate skipped"),
    }

    if b12_gated && b12_speedup_4t < SPEEDUP_GATE {
        failures.push(format!(
            "B12 4-thread speedup {b12_speedup_4t:.2}x is below the {SPEEDUP_GATE}x gate \
             ({cores} cores)"
        ));
    }

    if !no_gate {
        for (corpus, speedup) in [("hospital", b15_hosp_speedup), ("financial", b15_fin_speedup)] {
            if speedup < COMPILE_SPEEDUP_GATE {
                failures.push(format!(
                    "B15 compiled labeling speedup on {corpus} is {speedup:.2}x, below the \
                     {COMPILE_SPEEDUP_GATE}x gate"
                ));
            }
        }
    }

    if !no_gate {
        if b16_cancelled_runs > 0 && b16_cancel_p99_ms > CANCEL_P99_GATE_MS {
            failures.push(format!(
                "B16 cancellation p99 latency {b16_cancel_p99_ms:.2}ms exceeds the \
                 {CANCEL_P99_GATE_MS}ms gate"
            ));
        }
        if b16_overhead_pct > DEADLINE_OVERHEAD_GATE_PCT {
            failures.push(format!(
                "B16 armed-deadline overhead {b16_overhead_pct:.2}% exceeds the \
                 {DEADLINE_OVERHEAD_GATE_PCT}% gate"
            ));
        }
    }

    if !no_gate {
        if b17_concurrency_ratio < CONCURRENCY_RATIO_GATE {
            failures.push(format!(
                "B17 epoll transport sustained only {b17_concurrency_ratio:.1}x the pool's \
                 concurrent slow clients ({b17_epoll_sustained} vs {b17_pool_sustained}); the \
                 gate is {CONCURRENCY_RATIO_GATE}x"
            ));
        }
        for (transport, r) in [("pool", &ol_reports[0]), ("epoll", &ol_reports[1])] {
            if r.malformed > 0 || r.server_error > 0 {
                failures.push(format!(
                    "B17 open-loop clients saw {} malformed and {} untyped-5xx responses over \
                     the {transport} transport",
                    r.malformed, r.server_error
                ));
            }
        }
    }

    if !no_gate && b18_read_speedup < UPDATE_READ_SPEEDUP_GATE {
        failures.push(format!(
            "B18 post-update warm read is only {b18_read_speedup:.1}x faster than the full \
             recompute ({b18_warm_read_ms:.3}ms vs {b18_recompute_read_ms:.3}ms); the gate is \
             {UPDATE_READ_SPEEDUP_GATE}x"
        ));
    }

    if !no_gate && b19_deny_speedup < DENY_SPEEDUP_GATE {
        failures.push(format!(
            "B19 static guaranteed-deny rejection is only {b19_deny_speedup:.1}x faster than \
             the dynamic denial ({b19_static_deny_ms:.4}ms vs {b19_dynamic_deny_ms:.4}ms); the \
             gate is {DENY_SPEEDUP_GATE}x"
        ));
    }

    if failures.is_empty() {
        eprintln!("bench_smoke: PASS");
    } else {
        for f in &failures {
            eprintln!("bench_smoke: FAIL: {f}");
        }
        std::process::exit(1);
    }
}
