//! # xmlsec-bench — experiment harness
//!
//! Shared setup for the Criterion benches (one per experiment row in
//! `DESIGN.md` §4) and for the `figures` binary that regenerates the
//! paper's figures and worked examples as text.

#![warn(missing_docs)]

use xmlsec_authz::{AuthType, Authorization, ObjectSpec, PolicyConfig, Sign};
use xmlsec_core::{
    compute_view_engine, label_document_engine, CompiledPolicy, EngineOptions, Parallelism,
    ResourceLimits,
};
use xmlsec_subjects::{Directory, Requester, Subject};
use xmlsec_workload::laboratory::{
    example1_authorizations, lab_authorization_base, lab_directory, tom, CSLAB_URI, LAB_DTD_URI,
};
use xmlsec_xml::Document;

/// A ready-to-measure scenario: document, directory, and the applicable
/// authorization sets for a requester.
pub struct BenchScenario {
    /// The document under access control.
    pub doc: Document,
    /// The server directory.
    pub dir: Directory,
    /// Applicable instance-level authorizations.
    pub axml: Vec<Authorization>,
    /// Applicable schema-level authorizations.
    pub adtd: Vec<Authorization>,
    /// The policy in force.
    pub policy: PolicyConfig,
}

/// A scaled laboratory document guarded by the Example 1 authorizations,
/// with Tom as the requester — the paper's own scenario, bigger.
pub fn lab_scenario(projects: usize) -> BenchScenario {
    let doc = xmlsec_workload::laboratory_scaled(projects, 0xC5_1AB);
    let dir = lab_directory();
    let base = lab_authorization_base();
    let requester = tom();
    let axml = base.applicable(CSLAB_URI, &requester, &dir).into_iter().cloned().collect();
    let adtd = base.applicable(LAB_DTD_URI, &requester, &dir).into_iter().cloned().collect();
    BenchScenario { doc, dir, axml, adtd, policy: PolicyConfig::paper_default() }
}

/// A scenario with `count` synthetic authorizations over a fixed
/// laboratory document (`projects` projects). Roughly half the
/// authorizations match some node.
pub fn auth_scaling_scenario(projects: usize, count: usize) -> BenchScenario {
    let doc = xmlsec_workload::laboratory_scaled(projects, 7);
    let dir = lab_directory();
    let mut axml = Vec::with_capacity(count);
    let paths = [
        "/laboratory/project",
        r#"//paper[./@category="private"]"#,
        r#"//paper[./@category="public"]"#,
        "//manager",
        "//fund",
        "//member/flname",
        r#"project[./@type="internal"]"#,
        "/laboratory/project/@name",
    ];
    for i in 0..count {
        let subject = match i % 3 {
            0 => Subject::new("Public", "*", "*").expect("subject"),
            1 => Subject::new("Foreign", "*", "*").expect("subject"),
            _ => Subject::new("Tom", "*", "*.it").expect("subject"),
        };
        let sign = if i % 4 == 0 { Sign::Minus } else { Sign::Plus };
        let ty = match i % 4 {
            0 => AuthType::Recursive,
            1 => AuthType::Local,
            2 => AuthType::RecursiveWeak,
            _ => AuthType::LocalWeak,
        };
        let path = paths[i % paths.len()];
        axml.push(Authorization::new(
            subject,
            ObjectSpec::with_path(CSLAB_URI, path).expect("path"),
            sign,
            ty,
        ));
    }
    BenchScenario { doc, dir, axml, adtd: Vec::new(), policy: PolicyConfig::paper_default() }
}

/// The Example 2 requester.
pub fn bench_requester() -> Requester {
    tom()
}

/// The Example 1 authorizations (owned).
pub fn bench_auths() -> Vec<Authorization> {
    example1_authorizations()
}

/// A scaled hospital ward guarded by the ward protection requirements,
/// with nurse `nina` as the requester (B12's primary corpus: wide trees,
/// content-dependent denials).
pub fn hospital_scenario(patients: usize) -> BenchScenario {
    use xmlsec_workload::hospital::*;
    let doc = hospital_scaled(patients, 0xB12);
    let dir = hospital_directory();
    let base = hospital_authorization_base();
    let requester = Requester::new("nina", "10.0.0.7", "ward3.hospital.org").expect("requester");
    let axml = base.applicable(WARD_URI, &requester, &dir).into_iter().cloned().collect();
    let adtd = base
        .applicable(HOSPITAL_DTD_URI, &requester, &dir)
        .into_iter()
        .cloned()
        .collect();
    BenchScenario { doc, dir, axml, adtd, policy: PolicyConfig::paper_default() }
}

/// A scaled bank-statements document guarded by the bank protection
/// requirements, with auditor `axel` as the requester (B12's secondary
/// corpus: flagged-transaction weak denials).
pub fn financial_scenario(accounts: usize) -> BenchScenario {
    use xmlsec_workload::financial::*;
    let doc = financial_scaled(accounts, 0xF1A);
    let dir = bank_directory();
    let base = bank_authorization_base();
    let requester = Requester::new("axel", "10.9.9.9", "hq.bank.com").expect("requester");
    let axml = base.applicable(STATEMENTS_URI, &requester, &dir).into_iter().cloned().collect();
    let adtd = base.applicable(BANK_DTD_URI, &requester, &dir).into_iter().cloned().collect();
    BenchScenario { doc, dir, axml, adtd, policy: PolicyConfig::paper_default() }
}

/// A scenario plus the requester's policy compiled against the corpus
/// DTD — the B15 (compiled vs interpreted labeling) harness. Both B15
/// corpora compile to fully guaranteed verdict tables, so the compiled
/// runner exercises the whole-document fast path.
pub struct CompiledScenario {
    /// The underlying scenario.
    pub scenario: BenchScenario,
    /// The compiled policy (`fast_path` is asserted by the constructor).
    pub compiled: CompiledPolicy,
}

fn compile_scenario(s: BenchScenario, dtd_text: &str, corpus: &str) -> CompiledScenario {
    let dtd = xmlsec_dtd::parse_dtd(dtd_text).expect("corpus DTD parses");
    let root = s.doc.element_name(s.doc.root()).expect("corpus root").to_string();
    let ax: Vec<&Authorization> = s.axml.iter().collect();
    let ad: Vec<&Authorization> = s.adtd.iter().collect();
    let compiled =
        xmlsec_core::compile(&dtd, &root, &ax, &ad, &s.dir, s.policy).expect("policy compiles");
    assert!(
        compiled.fast_path,
        "{corpus}: the B15 corpora are guaranteed-heavy by construction; \
         a residual cell means the scenario drifted"
    );
    CompiledScenario { scenario: s, compiled }
}

/// B15 primary corpus: administration clerk `omar` on a scaled ward.
/// His applicable set is two predicate-free schema-level grants
/// (`//billing`, `//patient/name`), which compile to an all-guaranteed
/// verdict table.
pub fn hospital_compiled_scenario(patients: usize) -> CompiledScenario {
    use xmlsec_workload::hospital::*;
    let doc = hospital_scaled(patients, 0xB15);
    let dir = hospital_directory();
    let base = hospital_authorization_base();
    let requester = Requester::new("omar", "10.0.0.9", "admin.hospital.org").expect("requester");
    let axml = base.applicable(WARD_URI, &requester, &dir).into_iter().cloned().collect();
    let adtd = base
        .applicable(HOSPITAL_DTD_URI, &requester, &dir)
        .into_iter()
        .cloned()
        .collect();
    let s = BenchScenario { doc, dir, axml, adtd, policy: PolicyConfig::paper_default() };
    compile_scenario(s, HOSPITAL_DTD, "hospital")
}

/// B15 secondary corpus: teller `tina` from a branch host on scaled
/// statements. Her applicable set is two predicate-free instance-level
/// grants (`owner`, `balance`) — also an all-guaranteed table.
pub fn financial_compiled_scenario(accounts: usize) -> CompiledScenario {
    use xmlsec_workload::financial::*;
    let doc = financial_scaled(accounts, 0xB15);
    let dir = bank_directory();
    let base = bank_authorization_base();
    let requester = Requester::new("tina", "10.1.4.20", "t1.branch.bank.com").expect("requester");
    let axml = base.applicable(STATEMENTS_URI, &requester, &dir).into_iter().cloned().collect();
    let adtd = base.applicable(BANK_DTD_URI, &requester, &dir).into_iter().cloned().collect();
    let s = BenchScenario { doc, dir, axml, adtd, policy: PolicyConfig::paper_default() };
    compile_scenario(s, BANK_DTD, "financial")
}

fn run_label(s: &BenchScenario, compiled: Option<&CompiledPolicy>) -> usize {
    let ax: Vec<&Authorization> = s.axml.iter().collect();
    let ad: Vec<&Authorization> = s.adtd.iter().collect();
    let opts = EngineOptions {
        limits: ResourceLimits::default_limits().xpath,
        parallelism: Parallelism::sequential(),
        decisions: None,
        compiled,
        cancel: None,
    };
    let labeling = label_document_engine(&s.doc, &ax, &ad, &s.dir, s.policy, &opts)
        .expect("bench corpora stay within default limits");
    labeling.stats.granted_nodes
}

/// One cold interpreted labeling pass (no caches, no compiled table).
pub fn run_label_interpreted(s: &BenchScenario) -> usize {
    run_label(s, None)
}

/// One labeling pass served from the compiled verdict table (the
/// whole-document fast path for the B15 corpora).
pub fn run_label_compiled(cs: &CompiledScenario) -> usize {
    run_label(&cs.scenario, Some(&cs.compiled))
}

/// Runs the parallel engine on a scenario with exactly `threads` workers
/// (`1` = the sequential path), returning the visible-node count.
/// Oversubscription is forced so thread-scaling measurements are about
/// the engine, not about what `available_parallelism` happens to report
/// inside a cgroup.
pub fn run_view_parallel(s: &BenchScenario, threads: usize) -> usize {
    let ax: Vec<&Authorization> = s.axml.iter().collect();
    let ad: Vec<&Authorization> = s.adtd.iter().collect();
    let parallelism = if threads <= 1 {
        Parallelism::sequential()
    } else {
        Parallelism::threads(threads).with_seq_threshold(0).exact()
    };
    let opts = EngineOptions {
        limits: ResourceLimits::default_limits().xpath,
        parallelism,
        decisions: None,
        compiled: None,
        cancel: None,
    };
    let (_, stats) = compute_view_engine(&s.doc, &ax, &ad, &s.dir, s.policy, &opts)
        .expect("bench corpora stay within default limits");
    stats.granted_nodes
}

/// Runs `compute_view` on a scenario, returning the visible-node count
/// (a value Criterion can black-box).
pub fn run_view(s: &BenchScenario) -> usize {
    let ax: Vec<&Authorization> = s.axml.iter().collect();
    let ad: Vec<&Authorization> = s.adtd.iter().collect();
    let (_, stats) = xmlsec_core::compute_view(&s.doc, &ax, &ad, &s.dir, s.policy);
    stats.granted_nodes
}

/// Runs the naive baseline on a scenario.
pub fn run_view_naive(s: &BenchScenario) -> usize {
    let ax: Vec<&Authorization> = s.axml.iter().collect();
    let ad: Vec<&Authorization> = s.adtd.iter().collect();
    let (_, stats) = xmlsec_core::compute_view_naive(&s.doc, &ax, &ad, &s.dir, s.policy);
    stats.granted_nodes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_runnable() {
        let s = lab_scenario(10);
        assert!(s.doc.count_reachable() > 100);
        // Tom is covered by the Public grants but not the Admin one.
        assert_eq!(s.axml.len(), 2);
        assert_eq!(s.adtd.len(), 1);
        let fast = run_view(&s);
        let slow = run_view_naive(&s);
        assert_eq!(fast, slow);
        assert!(fast > 0);
    }

    #[test]
    fn parallel_scenarios_match_sequential() {
        for s in [hospital_scenario(60), financial_scenario(60)] {
            assert!(s.doc.count_reachable() > 300);
            assert!(!s.adtd.is_empty() || !s.axml.is_empty());
            let seq = run_view_parallel(&s, 1);
            assert!(seq > 0, "the requester must see part of the corpus");
            for threads in [2, 4] {
                assert_eq!(run_view_parallel(&s, threads), seq);
            }
        }
    }

    #[test]
    fn compiled_labeling_matches_interpreted() {
        for cs in [hospital_compiled_scenario(40), financial_compiled_scenario(40)] {
            let compiled = run_label_compiled(&cs);
            assert!(compiled > 0, "the B15 requesters must see part of the corpus");
            assert_eq!(compiled, run_label_interpreted(&cs.scenario));
        }
    }

    #[test]
    fn auth_scaling_scenario_scales() {
        let s = auth_scaling_scenario(20, 64);
        assert_eq!(s.axml.len(), 64);
        // engine and baseline agree here too
        assert_eq!(run_view(&s), run_view_naive(&s));
    }
}
