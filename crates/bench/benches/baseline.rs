//! B5 — the paper's efficiency claim: recursive-propagation labeling
//! (Figure 2) vs the naive per-node declarative evaluation, over
//! document size. Expectation: the engine wins by a widening factor
//! (naive rescans authorizations along every ancestor chain).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xmlsec_bench::{lab_scenario, run_view, run_view_naive};

fn baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    for projects in [8usize, 32, 128] {
        let s = lab_scenario(projects);
        group.bench_with_input(BenchmarkId::new("engine", projects), &s, |b, s| {
            b.iter(|| black_box(run_view(s)))
        });
        group.bench_with_input(BenchmarkId::new("naive", projects), &s, |b, s| {
            b.iter(|| black_box(run_view_naive(s)))
        });
    }
    group.finish();
}

criterion_group!(benches, baseline);
criterion_main!(benches);
