//! B2 — labeling time vs number of authorizations.
//!
//! Fixed document (64 projects ≈ 1.4e3 nodes), authorization count swept
//! 1–1024. Cost has two parts: one XPath evaluation per authorization
//! (linear) and per-node class bucketing (linear in auths per node).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use xmlsec_bench::{auth_scaling_scenario, run_view};

fn auth_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("auth_scaling");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    for count in [1usize, 8, 32, 128, 512, 1024] {
        let s = auth_scaling_scenario(64, count);
        group.throughput(Throughput::Elements(count as u64));
        group.bench_with_input(BenchmarkId::new("compute_view", count), &s, |b, s| {
            b.iter(|| black_box(run_view(s)))
        });
    }
    group.finish();
}

criterion_group!(benches, auth_scaling);
criterion_main!(benches);
