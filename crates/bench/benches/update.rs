//! B9 — the §8 write/update extension: write-labeling plus atomic batch
//! application, against view computation on the same document (updates
//! reuse the labeling machinery, so their cost should track it).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xmlsec_authz::{Action, Authorization, ObjectSpec, PolicyConfig, Sign};
use xmlsec_core::update::{apply_updates, label_for_write, UpdateOp, WriteContext};
use xmlsec_core::view::EngineOptions;
use xmlsec_subjects::{Directory, Subject};
use xmlsec_xpath::EvalLimits;

fn write_auths() -> Vec<Authorization> {
    vec![
        Authorization::new(
            Subject::new("ed", "*", "*").expect("subject"),
            ObjectSpec::with_path("lab.xml", "/laboratory").expect("path"),
            Sign::Plus,
            xmlsec_authz::AuthType::Recursive,
        )
        .with_action(Action::Write),
        Authorization::new(
            Subject::new("ed", "*", "*").expect("subject"),
            ObjectSpec::with_path("lab.xml", "//fund").expect("path"),
            Sign::Minus,
            xmlsec_authz::AuthType::Recursive,
        )
        .with_action(Action::Write),
    ]
}

fn update(c: &mut Criterion) {
    let mut group = c.benchmark_group("update");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    let dir = Directory::new();
    let auths = write_auths();
    let refs: Vec<&Authorization> = auths.iter().collect();

    for projects in [16usize, 128] {
        let doc = xmlsec_workload::laboratory_scaled(projects, 9);
        group.bench_with_input(BenchmarkId::new("write_labeling", projects), &doc, |b, doc| {
            b.iter(|| {
                black_box(label_for_write(doc, &refs, &[], &dir, PolicyConfig::paper_default()))
            })
        });
        let ctx = WriteContext {
            axml: &refs,
            adtd: &[],
            dir: &dir,
            policy: PolicyConfig::paper_default(),
            opts: EngineOptions::sequential(EvalLimits::default_limits()),
        };
        let ops = vec![
            UpdateOp::SetText {
                target: "/laboratory/project[1]/manager/flname".into(),
                text: "New Manager".into(),
            },
            UpdateOp::SetAttribute {
                target: "/laboratory/project[2]".into(),
                name: "name".into(),
                value: "Renamed".into(),
            },
            UpdateOp::InsertElement {
                parent: "/laboratory/project[1]".into(),
                name: "member".into(),
            },
        ];
        group.bench_with_input(BenchmarkId::new("apply_batch", projects), &doc, |b, doc| {
            b.iter(|| {
                let mut copy = doc.clone();
                black_box(apply_updates(&mut copy, &ops, &ctx).expect("authorized batch"))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, update);
criterion_main!(benches);
