//! B6 — subject/ASH matching cost vs group-nesting depth: requester
//! coverage checks walk the membership DAG; chains of 1–64 nested
//! groups.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xmlsec_subjects::{Directory, Requester, Subject};

fn nested_dir(depth: usize) -> Directory {
    let mut d = Directory::new();
    d.add_user("u").expect("user");
    for i in 0..depth {
        d.add_group(&format!("g{i}")).expect("group");
        if i > 0 {
            d.add_member(&format!("g{}", i - 1), &format!("g{i}")).expect("edge");
        }
    }
    d.add_member("u", "g0").expect("edge");
    d
}

fn subjects(c: &mut Criterion) {
    let mut group = c.benchmark_group("subjects");
    for depth in [1usize, 4, 16, 64] {
        let dir = nested_dir(depth);
        let rq = Requester::new("u", "10.1.2.3", "h.a.b.org").expect("requester");
        let top = Subject::new(&format!("g{}", depth - 1), "10.*", "*.org").expect("subject");
        group.bench_with_input(BenchmarkId::new("coverage_hit", depth), &depth, |b, _| {
            b.iter(|| black_box(rq.is_covered_by(&top, &dir)))
        });
        let miss = Subject::new("g_unrelated", "10.*", "*.org");
        if let Ok(miss) = miss {
            group.bench_with_input(BenchmarkId::new("coverage_miss", depth), &depth, |b, _| {
                b.iter(|| black_box(rq.is_covered_by(&miss, &dir)))
            });
        }
    }
    // Pattern parsing + order checks.
    group.bench_function("pattern_leq", |b| {
        let specific: xmlsec_subjects::SymPattern = "a.b.c.dom.org".parse().expect("parses");
        let general: xmlsec_subjects::SymPattern = "*.dom.org".parse().expect("parses");
        b.iter(|| black_box(specific.leq(&general)))
    });
    group.finish();
}

criterion_group!(benches, subjects);
criterion_main!(benches);
