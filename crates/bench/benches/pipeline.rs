//! B7 — the full four-step processor pipeline (parse → label → prune →
//! unparse) plus DTD parse/validate/loosen, per stage and end to end,
//! on a 64-project laboratory document.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use xmlsec_core::{AccessRequest, DocumentSource, SecurityProcessor};
use xmlsec_dtd::{loosen, parse_dtd, Validator};
use xmlsec_workload::laboratory::*;
use xmlsec_xml::{parse, serialize, SerializeOptions};

fn pipeline(c: &mut Criterion) {
    let doc = xmlsec_workload::laboratory_scaled(64, 5);
    let xml = serialize(&doc, &SerializeOptions::canonical());
    let dtd = parse_dtd(LAB_DTD).expect("DTD parses");

    let mut group = c.benchmark_group("pipeline");
    group.throughput(Throughput::Bytes(xml.len() as u64));

    group.bench_function("step1_parse_xml", |b| b.iter(|| black_box(parse(&xml).expect("parses"))));
    group
        .bench_function("dtd_parse", |b| b.iter(|| black_box(parse_dtd(LAB_DTD).expect("parses"))));
    group.bench_function("dtd_validate", |b| {
        let v = Validator::new(&dtd);
        b.iter(|| black_box(v.validate(&doc).len()))
    });
    group.bench_function("dtd_loosen", |b| b.iter(|| black_box(loosen(&dtd))));
    group.bench_function("step4_unparse", |b| {
        b.iter(|| black_box(serialize(&doc, &SerializeOptions::canonical()).len()))
    });

    // End to end through the processor.
    let processor = SecurityProcessor::new(lab_directory(), lab_authorization_base());
    let request = AccessRequest { requester: tom(), uri: CSLAB_URI.to_string() };
    group.bench_function("end_to_end", |b| {
        b.iter(|| {
            let source =
                DocumentSource { xml: &xml, dtd: Some(LAB_DTD), dtd_uri: Some(LAB_DTD_URI) };
            black_box(processor.process(&request, &source).expect("pipeline").xml.len())
        })
    });
    group.finish();
}

criterion_group!(benches, pipeline);
criterion_main!(benches);
