//! B4 — XPath evaluation cost by expression class, on a 256-project
//! laboratory document: child navigation, `//` descendant scans,
//! attribute conditions, positional predicates, ancestor axes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xmlsec_xpath::{parse_path, select};

fn xpath(c: &mut Criterion) {
    let doc = xmlsec_workload::laboratory_scaled(256, 3);
    let exprs = [
        ("child_path", "/laboratory/project"),
        ("deep_child_path", "/laboratory/project/paper/title"),
        ("descendant", "//flname"),
        ("attr_select", "/laboratory/project/@name"),
        ("condition", r#"//paper[./@category="private"]"#),
        (
            "double_condition",
            r#"/laboratory/project[./@type="public"]/paper[./@category="public"]"#,
        ),
        ("positional", "/laboratory/project[17]"),
        ("ancestor", "//fund/ancestor::project"),
        ("text_cond", r#"//fund[sponsor = "MURST"]"#),
        ("count_fn", "//project[count(paper) >= 2]"),
    ];
    let mut group = c.benchmark_group("xpath");
    for (name, expr) in exprs {
        let path = parse_path(expr).expect("expression parses");
        group.bench_with_input(BenchmarkId::new("select", name), &path, |b, p| {
            b.iter(|| black_box(select(&doc, p).len()))
        });
    }
    // Parsing cost, separately.
    group.bench_function("parse_condition_expr", |b| {
        b.iter(|| {
            black_box(
                parse_path(
                    r#"/laboratory/project[./@name = "Access Models"]/paper[./@type = "internal"]"#,
                )
                .expect("parses"),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, xpath);
criterion_main!(benches);
