//! B11 — the cost of resource-limit enforcement itself.
//!
//! Runs the end-to-end processor pipeline with the default resource
//! limits (parser byte/depth/node/entity caps plus the XPath node-visit
//! budget) against the same pipeline with every cap disabled, and
//! asserts the limited/unlimited ratio stays under 1.05: the checks are
//! a handful of integer comparisons on already-hot paths, and must not
//! tax legitimate traffic.
//!
//! Methodology: interleaved batches (limited, unlimited, …) so drift
//! hits both modes equally, median-of-batches for robustness.

use std::hint::black_box;
use std::time::{Duration, Instant};
use xmlsec_core::{
    AccessRequest, DocumentSource, ProcessorOptions, ResourceLimits, SecurityProcessor,
};
use xmlsec_workload::laboratory::*;
use xmlsec_xml::{serialize, SerializeOptions};

const BATCHES: usize = 9;
const ITERS_PER_BATCH: usize = 30;

fn run_pipeline(processor: &SecurityProcessor, xml: &str, request: &AccessRequest) -> usize {
    let source = DocumentSource { xml, dtd: Some(LAB_DTD), dtd_uri: Some(LAB_DTD_URI) };
    processor.process(request, &source).expect("pipeline").xml.len()
}

fn batch(processor: &SecurityProcessor, xml: &str, request: &AccessRequest) -> Duration {
    let t = Instant::now();
    for _ in 0..ITERS_PER_BATCH {
        black_box(run_pipeline(processor, xml, request));
    }
    t.elapsed()
}

fn median(mut xs: Vec<Duration>) -> Duration {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn processor_with(limits: ResourceLimits) -> SecurityProcessor {
    let mut p = SecurityProcessor::new(lab_directory(), lab_authorization_base());
    p.options = ProcessorOptions { limits, ..p.options };
    p
}

fn main() {
    let doc = xmlsec_workload::laboratory_scaled(64, 5);
    let xml = serialize(&doc, &SerializeOptions::canonical());
    let limited = processor_with(ResourceLimits::default_limits());
    let unlimited = processor_with(ResourceLimits::unlimited());
    let request = AccessRequest { requester: tom(), uri: CSLAB_URI.to_string() };

    // Warmup both processors.
    for _ in 0..5 {
        black_box(run_pipeline(&limited, &xml, &request));
        black_box(run_pipeline(&unlimited, &xml, &request));
    }

    let mut lim = Vec::with_capacity(BATCHES);
    let mut unl = Vec::with_capacity(BATCHES);
    for _ in 0..BATCHES {
        lim.push(batch(&limited, &xml, &request));
        unl.push(batch(&unlimited, &xml, &request));
    }

    let lim = median(lim);
    let unl = median(unl);
    let ratio = lim.as_secs_f64() / unl.as_secs_f64().max(1e-12);
    println!("limits_overhead: limited {lim:?}  unlimited {unl:?}  ratio {ratio:.4}");
    println!(
        "({} batches x {} pipeline runs per mode, interleaved, median)",
        BATCHES, ITERS_PER_BATCH
    );
    assert!(
        ratio < 1.05,
        "limit enforcement overhead {:.2}% exceeds the 5% budget (limited {lim:?} vs unlimited {unl:?})",
        (ratio - 1.0) * 100.0
    );
    println!("PASS: limit enforcement overhead {:.2}% < 5%", (ratio - 1.0) * 100.0);
}
