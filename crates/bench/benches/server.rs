//! B8 — server request throughput with the view cache on vs off, for a
//! request mix of three requester classes over one document.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xmlsec_server::{ClientRequest, SecureServer};
use xmlsec_workload::laboratory::*;
use xmlsec_xml::{serialize, SerializeOptions};

fn build_server(cached: bool) -> SecureServer {
    let mut s = SecureServer::new(lab_directory(), lab_authorization_base());
    if !cached {
        s = s.without_cache();
    }
    s.register_credentials("Tom", "pw");
    s.register_credentials("Alice", "pw");
    let doc = xmlsec_workload::laboratory_scaled(64, 5);
    let xml = serialize(&doc, &SerializeOptions::canonical());
    s.repository_mut().put_dtd(LAB_DTD_URI, LAB_DTD);
    s.repository_mut().put_document(CSLAB_URI, &xml, Some(LAB_DTD_URI));
    s
}

fn requests() -> Vec<ClientRequest> {
    let mk = |user: Option<(&str, &str)>, ip: &str, sym: &str| ClientRequest {
        user: user.map(|(u, p)| (u.to_string(), p.to_string())),
        ip: ip.to_string(),
        sym: sym.to_string(),
        uri: CSLAB_URI.to_string(),
    };
    vec![
        mk(Some(("Tom", "pw")), "130.100.50.8", "infosys.bld1.it"),
        mk(None, "1.2.3.4", "a.example.com"),
        mk(Some(("Alice", "pw")), "130.89.56.8", "admin.lab.com"),
    ]
}

fn server(c: &mut Criterion) {
    let mut group = c.benchmark_group("server");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(3));
    for (name, cached) in [("cache_on", true), ("cache_off", false)] {
        let s = build_server(cached);
        let reqs = requests();
        // Warm the cache so the cached configuration measures hits.
        for r in &reqs {
            let _ = s.handle(r);
        }
        group.bench_with_input(BenchmarkId::new("request_mix", name), &s, |b, s| {
            b.iter(|| {
                let mut total = 0usize;
                for r in &reqs {
                    total += s.handle(r).expect("request succeeds").xml.len();
                }
                black_box(total)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, server);
criterion_main!(benches);
