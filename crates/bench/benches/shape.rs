//! B3 — tree-shape sensitivity: deep chains vs flat fans vs the bushy
//! laboratory shape, at comparable node counts.
//!
//! The propagation pass is a single preorder walk, so shape should not
//! matter much; the naive baseline degrades with depth (it rescans the
//! ancestor chain per node).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xmlsec_authz::{AuthType, Authorization, ObjectSpec, PolicyConfig, Sign};
use xmlsec_bench::{run_view, run_view_naive, BenchScenario};
use xmlsec_subjects::{Directory, Subject};

fn shaped(doc: xmlsec_xml::Document) -> BenchScenario {
    let auths = vec![
        Authorization::new(
            Subject::new("u", "*", "*").expect("subject"),
            ObjectSpec::with_path("d.xml", "/root").expect("path"),
            Sign::Plus,
            AuthType::Recursive,
        ),
        Authorization::new(
            Subject::new("u", "*", "*").expect("subject"),
            ObjectSpec::with_path("d.xml", "//t2").expect("path"),
            Sign::Minus,
            AuthType::Recursive,
        ),
    ];
    BenchScenario {
        doc,
        dir: Directory::new(),
        axml: auths,
        adtd: Vec::new(),
        policy: PolicyConfig::paper_default(),
    }
}

fn shape(c: &mut Criterion) {
    let mut group = c.benchmark_group("shape");
    const N: usize = 1000;
    let scenarios = [
        ("deep_chain", shaped(xmlsec_workload::deep_chain(N))),
        ("flat_fan", shaped(xmlsec_workload::flat(N / 2))),
        (
            "bushy_lab",
            shaped(xmlsec_workload::random_tree(
                &xmlsec_workload::TreeConfig { elements: N, ..Default::default() },
                11,
            )),
        ),
    ];
    for (name, s) in &scenarios {
        group.bench_with_input(BenchmarkId::new("engine", name), s, |b, s| {
            b.iter(|| black_box(run_view(s)))
        });
        group.bench_with_input(BenchmarkId::new("naive", name), s, |b, s| {
            b.iter(|| black_box(run_view_naive(s)))
        });
    }
    group.finish();
}

criterion_group!(benches, shape);
criterion_main!(benches);
