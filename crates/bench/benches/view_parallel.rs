//! B12 — parallel compute-view speedup at 1/2/4/8 threads.
//!
//! Runs the engine over the hospital and financial corpora with the
//! worker pool forced to exactly N threads (`Parallelism::exact`, so the
//! measurement is about the engine rather than about what
//! `available_parallelism` reports inside a cgroup) and reports the
//! speedup over the sequential path. Correctness rides along: every
//! thread count must produce the same visible-node count, every run.
//!
//! The ≥1.5x speedup gate at 4 threads is enforced only on machines that
//! actually have ≥4 cores — on a 1-core container 4 workers timeshare
//! one core and the honest answer is ~1.0x. CI runs this on multi-core
//! runners where the gate is live; `bench_smoke` records the measured
//! value and whether the gate applied into `BENCH_*.json` either way.
//!
//! Methodology: interleaved batches (1, 2, 4, 8 threads, repeat) so
//! drift hits every mode equally, median-of-batches for robustness.
//! `XMLSEC_BENCH_QUICK=1` shrinks the corpus and batch counts for CI
//! smoke runs.

use std::hint::black_box;
use std::time::{Duration, Instant};
use xmlsec_bench::{financial_scenario, hospital_scenario, run_view_parallel, BenchScenario};
use xmlsec_core::par::available_cores;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct Config {
    batches: usize,
    iters_per_batch: usize,
    patients: usize,
    accounts: usize,
}

fn config() -> Config {
    if std::env::var_os("XMLSEC_BENCH_QUICK").is_some() {
        Config { batches: 3, iters_per_batch: 3, patients: 300, accounts: 300 }
    } else {
        Config { batches: 9, iters_per_batch: 10, patients: 1200, accounts: 1200 }
    }
}

fn batch(s: &BenchScenario, threads: usize, iters: usize, want: usize) -> Duration {
    let t = Instant::now();
    for _ in 0..iters {
        let got = black_box(run_view_parallel(s, threads));
        assert_eq!(got, want, "{threads}-thread view must match sequential");
    }
    t.elapsed()
}

fn median(mut xs: Vec<Duration>) -> Duration {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

/// Measures one corpus; returns the 4-thread speedup.
fn measure(name: &str, s: &BenchScenario, cfg: &Config) -> f64 {
    let want = run_view_parallel(s, 1);
    // Warmup every mode.
    for &t in &THREAD_COUNTS {
        black_box(run_view_parallel(s, t));
    }

    let mut samples: Vec<Vec<Duration>> = THREAD_COUNTS.iter().map(|_| Vec::new()).collect();
    for _ in 0..cfg.batches {
        for (i, &t) in THREAD_COUNTS.iter().enumerate() {
            samples[i].push(batch(s, t, cfg.iters_per_batch, want));
        }
    }

    let medians: Vec<Duration> = samples.into_iter().map(median).collect();
    let seq = medians[0].as_secs_f64();
    let mut speedup_4t = 1.0;
    println!("view_parallel [{name}]: {} visible nodes/view", want);
    for (&t, &d) in THREAD_COUNTS.iter().zip(&medians) {
        let speedup = seq / d.as_secs_f64().max(1e-12);
        if t == 4 {
            speedup_4t = speedup;
        }
        println!("  {t} thread(s): {d:?}  speedup {speedup:.2}x");
    }
    speedup_4t
}

fn main() {
    let cfg = config();
    println!(
        "view_parallel: {} batches x {} views per mode, interleaved, median ({} cores detected)",
        cfg.batches,
        cfg.iters_per_batch,
        available_cores()
    );

    let hospital = hospital_scenario(cfg.patients);
    let financial = financial_scenario(cfg.accounts);
    let hospital_speedup = measure("hospital", &hospital, &cfg);
    let financial_speedup = measure("financial", &financial, &cfg);

    if available_cores() >= 4 {
        assert!(
            hospital_speedup >= 1.5,
            "4-thread speedup on the hospital corpus is {hospital_speedup:.2}x, below the 1.5x gate"
        );
        println!("PASS: hospital 4-thread speedup {hospital_speedup:.2}x >= 1.5x");
        println!("      financial 4-thread speedup {financial_speedup:.2}x (informational)");
    } else {
        println!(
            "GATED(cores={}): 4-thread speedup gate needs >= 4 cores; measured hospital \
             {hospital_speedup:.2}x, financial {financial_speedup:.2}x (informational only)",
            available_cores()
        );
    }
}
