//! B1 — labeling + pruning time vs document size.
//!
//! The paper claims "fast on-line computation" of requester views; this
//! bench establishes the scaling of `compute_view` with document size
//! (laboratory documents of 8–1024 projects ≈ 1.4e2–2.2e4 nodes) under
//! the fixed Example 1 authorization set. Expectation: near-linear.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use xmlsec_bench::{lab_scenario, run_view};

fn view_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("view_scaling");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    for projects in [8usize, 32, 128, 512, 1024] {
        let s = lab_scenario(projects);
        let nodes = s.doc.count_reachable();
        group.throughput(Throughput::Elements(nodes as u64));
        group.bench_with_input(
            BenchmarkId::new("compute_view", format!("{projects}proj_{nodes}nodes")),
            &s,
            |b, s| b.iter(|| black_box(run_view(s))),
        );
    }
    group.finish();
}

criterion_group!(benches, view_scaling);
criterion_main!(benches);
