//! B10 — the cost of the telemetry layer itself.
//!
//! Runs the end-to-end processor pipeline with instrumentation recording
//! on and off (the `xmlsec_telemetry::set_enabled` switch) and asserts
//! the enabled/disabled ratio stays under 1.05: spans, counters and
//! sharded histograms must cost less than 5% of pipeline time, or the
//! observability layer is not "lock-cheap" as designed.
//!
//! Methodology: interleaved batches (on, off, on, off, …) so drift hits
//! both modes equally, median-of-batches for robustness against noise.

use std::hint::black_box;
use std::time::{Duration, Instant};
use xmlsec_core::{AccessRequest, DocumentSource, SecurityProcessor};
use xmlsec_workload::laboratory::*;
use xmlsec_xml::{serialize, SerializeOptions};

const BATCHES: usize = 9;
const ITERS_PER_BATCH: usize = 30;

fn run_pipeline(processor: &SecurityProcessor, xml: &str, request: &AccessRequest) -> usize {
    let source = DocumentSource { xml, dtd: Some(LAB_DTD), dtd_uri: Some(LAB_DTD_URI) };
    processor.process(request, &source).expect("pipeline").xml.len()
}

fn batch(processor: &SecurityProcessor, xml: &str, request: &AccessRequest) -> Duration {
    let t = Instant::now();
    for _ in 0..ITERS_PER_BATCH {
        black_box(run_pipeline(processor, xml, request));
    }
    t.elapsed()
}

fn median(mut xs: Vec<Duration>) -> Duration {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn main() {
    let doc = xmlsec_workload::laboratory_scaled(64, 5);
    let xml = serialize(&doc, &SerializeOptions::canonical());
    let processor = SecurityProcessor::new(lab_directory(), lab_authorization_base());
    let request = AccessRequest { requester: tom(), uri: CSLAB_URI.to_string() };

    // Warmup: populate every metric series and fault in the code paths.
    for _ in 0..5 {
        black_box(run_pipeline(&processor, &xml, &request));
    }

    let mut on = Vec::with_capacity(BATCHES);
    let mut off = Vec::with_capacity(BATCHES);
    for _ in 0..BATCHES {
        xmlsec_telemetry::set_enabled(true);
        on.push(batch(&processor, &xml, &request));
        xmlsec_telemetry::set_enabled(false);
        off.push(batch(&processor, &xml, &request));
    }
    xmlsec_telemetry::set_enabled(true);

    let on = median(on);
    let off = median(off);
    let ratio = on.as_secs_f64() / off.as_secs_f64().max(1e-12);
    println!("telemetry_overhead: enabled {on:?}  disabled {off:?}  ratio {ratio:.4}");
    println!(
        "({} batches x {} pipeline runs per mode, interleaved, median)",
        BATCHES, ITERS_PER_BATCH
    );
    assert!(
        ratio < 1.05,
        "instrumentation overhead {:.2}% exceeds the 5% budget (enabled {on:?} vs disabled {off:?})",
        (ratio - 1.0) * 100.0
    );
    println!("PASS: instrumentation overhead {:.2}% < 5%", (ratio - 1.0) * 100.0);
}
