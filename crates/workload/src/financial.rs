//! Financial-statements corpus, modeled on OFX (Open Financial Exchange)
//! — one of the XML applications the paper's introduction names. A bank
//! serves one statement document per customer set; location patterns
//! matter here: tellers may read balances only from branch hosts.

use xmlsec_authz::{AuthType, Authorization, AuthorizationBase, ObjectSpec, Sign};
use xmlsec_subjects::{Directory, Subject};

/// URI of the statements DTD.
pub const BANK_DTD_URI: &str = "statements.dtd";

/// URI of the statements document.
pub const STATEMENTS_URI: &str = "statements.xml";

/// The statements DTD.
pub const BANK_DTD: &str = r#"<!ELEMENT statements (account+)>
<!ELEMENT account (owner, balance, transaction*)>
<!ATTLIST account number CDATA #REQUIRED kind (checking|savings) #REQUIRED>
<!ELEMENT owner (#PCDATA)>
<!ELEMENT balance (#PCDATA)>
<!ATTLIST balance currency CDATA "EUR">
<!ELEMENT transaction (payee, memo?)>
<!ATTLIST transaction amount CDATA #REQUIRED flagged (yes|no) "no">
<!ELEMENT payee (#PCDATA)>
<!ELEMENT memo (#PCDATA)>
"#;

/// The statements document.
pub const STATEMENTS_XML: &str = r#"<!DOCTYPE statements SYSTEM "statements.dtd"><statements><account number="1001" kind="checking"><owner>Dana Reef</owner><balance currency="EUR">2450.10</balance><transaction amount="-80.00" flagged="no"><payee>Grid Energy</payee></transaction><transaction amount="-9500.00" flagged="yes"><payee>Offshore Holdings</payee><memo>Wire transfer under review</memo></transaction></account><account number="1002" kind="savings"><owner>Lee Marsh</owner><balance currency="EUR">18000.00</balance><transaction amount="+500.00" flagged="no"><payee>Payroll Inc</payee></transaction></account></statements>"#;

/// Directory: tellers, auditors, and the fraud desk.
pub fn bank_directory() -> Directory {
    let mut d = Directory::new();
    for u in ["tina", "axel", "fred"] {
        d.add_user(u).expect("fresh user");
    }
    for g in ["Tellers", "Auditors", "FraudDesk", "BankStaff"] {
        d.add_group(g).expect("fresh group");
    }
    d.add_member("tina", "Tellers").expect("edge");
    d.add_member("axel", "Auditors").expect("edge");
    d.add_member("fred", "FraudDesk").expect("edge");
    d.add_member("Tellers", "BankStaff").expect("edge");
    d.add_member("Auditors", "BankStaff").expect("edge");
    d.add_member("FraudDesk", "BankStaff").expect("edge");
    d
}

/// Protection requirements.
///
/// - Tellers see owners and balances, **only from branch hosts**
///   (`10.1.*` / `*.branch.bank.com`).
/// - Auditors see every account but not flagged-transaction memos
///   (weak: the fraud desk's schema-level grant overrides it).
/// - The fraud desk sees flagged transactions from anywhere.
pub fn bank_authorizations() -> Vec<Authorization> {
    vec![
        Authorization::new(
            Subject::new("Tellers", "10.1.*", "*.branch.bank.com").expect("subject"),
            ObjectSpec::with_path(STATEMENTS_URI, "/statements/account/owner").expect("path"),
            Sign::Plus,
            AuthType::Recursive,
        ),
        Authorization::new(
            Subject::new("Tellers", "10.1.*", "*.branch.bank.com").expect("subject"),
            ObjectSpec::with_path(STATEMENTS_URI, "/statements/account/balance").expect("path"),
            Sign::Plus,
            AuthType::Recursive,
        ),
        Authorization::new(
            Subject::new("Auditors", "*", "*").expect("subject"),
            ObjectSpec::with_path(STATEMENTS_URI, "/statements").expect("path"),
            Sign::Plus,
            AuthType::Recursive,
        ),
        Authorization::new(
            Subject::new("Auditors", "*", "*").expect("subject"),
            ObjectSpec::with_path(STATEMENTS_URI, r#"//transaction[./@flagged="yes"]/memo"#)
                .expect("path"),
            Sign::Minus,
            AuthType::RecursiveWeak,
        ),
        Authorization::new(
            Subject::new("FraudDesk", "*", "*").expect("subject"),
            ObjectSpec::with_path(BANK_DTD_URI, r#"//transaction[./@flagged="yes"]"#)
                .expect("path"),
            Sign::Plus,
            AuthType::Recursive,
        ),
    ]
}

/// Authorization base for the bank scenario.
pub fn bank_authorization_base() -> AuthorizationBase {
    let mut b = AuthorizationBase::new();
    b.extend(bank_authorizations());
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlsec_authz::PolicyConfig;
    use xmlsec_core::compute_view;
    use xmlsec_dtd::{parse_dtd, validate};
    use xmlsec_subjects::Requester;
    use xmlsec_xml::{parse, serialize, SerializeOptions};

    fn view_for(user: &str, ip: &str, host: &str) -> String {
        let dir = bank_directory();
        let base = bank_authorization_base();
        let rq = Requester::new(user, ip, host).expect("requester");
        let doc = parse(STATEMENTS_XML).expect("parses");
        let axml = base.applicable(STATEMENTS_URI, &rq, &dir);
        let adtd = base.applicable(BANK_DTD_URI, &rq, &dir);
        let (view, _) = compute_view(&doc, &axml, &adtd, &dir, PolicyConfig::paper_default());
        serialize(&view, &SerializeOptions::canonical())
    }

    #[test]
    fn corpus_valid() {
        let dtd = parse_dtd(BANK_DTD).unwrap();
        let doc = parse(STATEMENTS_XML).unwrap();
        assert_eq!(validate(&dtd, &doc), vec![]);
    }

    #[test]
    fn teller_from_branch_sees_balances() {
        let v = view_for("tina", "10.1.4.20", "t1.branch.bank.com");
        assert!(v.contains("2450.10"), "{v}");
        assert!(v.contains("Dana Reef"), "{v}");
        assert!(!v.contains("Offshore"), "{v}");
    }

    #[test]
    fn teller_from_home_sees_nothing() {
        let v = view_for("tina", "89.12.3.4", "home.example.net");
        assert_eq!(v, "<statements/>");
    }

    #[test]
    fn auditor_sees_accounts_but_not_flagged_memo() {
        let v = view_for("axel", "10.9.9.9", "hq.bank.com");
        assert!(v.contains("Offshore Holdings"), "{v}");
        assert!(!v.contains("under review"), "{v}");
        assert!(v.contains("Payroll Inc"), "{v}");
    }

    #[test]
    fn fraud_desk_sees_flagged_transactions_with_memos() {
        let v = view_for("fred", "172.16.0.3", "desk.bank.com");
        assert!(v.contains("Offshore Holdings"), "{v}");
        assert!(v.contains("under review"), "{v}");
        assert!(!v.contains("Payroll Inc"), "{v}");
    }
}
