//! Financial-statements corpus, modeled on OFX (Open Financial Exchange)
//! — one of the XML applications the paper's introduction names. A bank
//! serves one statement document per customer set; location patterns
//! matter here: tellers may read balances only from branch hosts.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xmlsec_authz::{AuthType, Authorization, AuthorizationBase, ObjectSpec, Sign};
use xmlsec_subjects::{Directory, Subject};
use xmlsec_xml::Document;

/// URI of the statements DTD.
pub const BANK_DTD_URI: &str = "statements.dtd";

/// URI of the statements document.
pub const STATEMENTS_URI: &str = "statements.xml";

/// The statements DTD.
pub const BANK_DTD: &str = r#"<!ELEMENT statements (account+)>
<!ELEMENT account (owner, balance, transaction*)>
<!ATTLIST account number CDATA #REQUIRED kind (checking|savings) #REQUIRED>
<!ELEMENT owner (#PCDATA)>
<!ELEMENT balance (#PCDATA)>
<!ATTLIST balance currency CDATA "EUR">
<!ELEMENT transaction (payee, memo?)>
<!ATTLIST transaction amount CDATA #REQUIRED flagged (yes|no) "no">
<!ELEMENT payee (#PCDATA)>
<!ELEMENT memo (#PCDATA)>
"#;

/// The statements document.
pub const STATEMENTS_XML: &str = r#"<!DOCTYPE statements SYSTEM "statements.dtd"><statements><account number="1001" kind="checking"><owner>Dana Reef</owner><balance currency="EUR">2450.10</balance><transaction amount="-80.00" flagged="no"><payee>Grid Energy</payee></transaction><transaction amount="-9500.00" flagged="yes"><payee>Offshore Holdings</payee><memo>Wire transfer under review</memo></transaction></account><account number="1002" kind="savings"><owner>Lee Marsh</owner><balance currency="EUR">18000.00</balance><transaction amount="+500.00" flagged="no"><payee>Payroll Inc</payee></transaction></account></statements>"#;

/// Directory: tellers, auditors, and the fraud desk.
pub fn bank_directory() -> Directory {
    let mut d = Directory::new();
    for u in ["tina", "axel", "fred"] {
        d.add_user(u).expect("fresh user");
    }
    for g in ["Tellers", "Auditors", "FraudDesk", "BankStaff"] {
        d.add_group(g).expect("fresh group");
    }
    d.add_member("tina", "Tellers").expect("edge");
    d.add_member("axel", "Auditors").expect("edge");
    d.add_member("fred", "FraudDesk").expect("edge");
    d.add_member("Tellers", "BankStaff").expect("edge");
    d.add_member("Auditors", "BankStaff").expect("edge");
    d.add_member("FraudDesk", "BankStaff").expect("edge");
    d
}

/// Protection requirements.
///
/// - Tellers see owners and balances, **only from branch hosts**
///   (`10.1.*` / `*.branch.bank.com`).
/// - Auditors see every account but not flagged-transaction memos
///   (weak: the fraud desk's schema-level grant overrides it).
/// - The fraud desk sees flagged transactions from anywhere.
pub fn bank_authorizations() -> Vec<Authorization> {
    vec![
        Authorization::new(
            Subject::new("Tellers", "10.1.*", "*.branch.bank.com").expect("subject"),
            ObjectSpec::with_path(STATEMENTS_URI, "/statements/account/owner").expect("path"),
            Sign::Plus,
            AuthType::Recursive,
        ),
        Authorization::new(
            Subject::new("Tellers", "10.1.*", "*.branch.bank.com").expect("subject"),
            ObjectSpec::with_path(STATEMENTS_URI, "/statements/account/balance").expect("path"),
            Sign::Plus,
            AuthType::Recursive,
        ),
        Authorization::new(
            Subject::new("Auditors", "*", "*").expect("subject"),
            ObjectSpec::with_path(STATEMENTS_URI, "/statements").expect("path"),
            Sign::Plus,
            AuthType::Recursive,
        ),
        Authorization::new(
            Subject::new("Auditors", "*", "*").expect("subject"),
            ObjectSpec::with_path(STATEMENTS_URI, r#"//transaction[./@flagged="yes"]/memo"#)
                .expect("path"),
            Sign::Minus,
            AuthType::RecursiveWeak,
        ),
        Authorization::new(
            Subject::new("FraudDesk", "*", "*").expect("subject"),
            ObjectSpec::with_path(BANK_DTD_URI, r#"//transaction[./@flagged="yes"]"#)
                .expect("path"),
            Sign::Plus,
            AuthType::Recursive,
        ),
    ]
}

/// Generates a statements document with `accounts` accounts, valid
/// against [`BANK_DTD`] and shaped like [`STATEMENTS_XML`]: each account
/// carries an owner, a balance, and 1–5 transactions of which roughly a
/// fifth are flagged (exercising the auditors' weak denial and the fraud
/// desk's schema-level override). Same seed ⇒ same document. Used by the
/// parallel-labeling benchmarks (B12).
pub fn financial_scaled(accounts: usize, seed: u64) -> Document {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut doc = Document::new("statements");
    let root = doc.root();
    for i in 0..accounts {
        let acct = doc.append_element(root, "account");
        doc.set_attribute(acct, "number", &format!("{}", 1000 + i)).expect("attrs");
        doc.set_attribute(acct, "kind", if rng.gen_bool(0.5) { "checking" } else { "savings" })
            .expect("attrs");
        let owner = doc.append_element(acct, "owner");
        doc.append_text(owner, &format!("Customer {i}"));
        let balance = doc.append_element(acct, "balance");
        doc.set_attribute(balance, "currency", "EUR").expect("attrs");
        doc.append_text(balance, &format!("{}.00", rng.gen_range(100..50_000)));
        for t in 0..rng.gen_range(1..6usize) {
            let tx = doc.append_element(acct, "transaction");
            let flagged = rng.gen_bool(0.2);
            doc.set_attribute(tx, "amount", &format!("-{}.00", rng.gen_range(10..10_000)))
                .expect("attrs");
            doc.set_attribute(tx, "flagged", if flagged { "yes" } else { "no" })
                .expect("attrs");
            let payee = doc.append_element(tx, "payee");
            doc.append_text(payee, &format!("Payee {i}.{t}"));
            if flagged {
                let memo = doc.append_element(tx, "memo");
                doc.append_text(memo, "Wire transfer under review");
            }
        }
    }
    doc
}

/// Authorization base for the bank scenario.
pub fn bank_authorization_base() -> AuthorizationBase {
    let mut b = AuthorizationBase::new();
    b.extend(bank_authorizations());
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlsec_authz::PolicyConfig;
    use xmlsec_core::compute_view;
    use xmlsec_dtd::{parse_dtd, validate};
    use xmlsec_subjects::Requester;
    use xmlsec_xml::{parse, serialize, SerializeOptions};

    fn view_for(user: &str, ip: &str, host: &str) -> String {
        let dir = bank_directory();
        let base = bank_authorization_base();
        let rq = Requester::new(user, ip, host).expect("requester");
        let doc = parse(STATEMENTS_XML).expect("parses");
        let axml = base.applicable(STATEMENTS_URI, &rq, &dir);
        let adtd = base.applicable(BANK_DTD_URI, &rq, &dir);
        let (view, _) = compute_view(&doc, &axml, &adtd, &dir, PolicyConfig::paper_default());
        serialize(&view, &SerializeOptions::canonical())
    }

    #[test]
    fn corpus_valid() {
        let dtd = parse_dtd(BANK_DTD).unwrap();
        let doc = parse(STATEMENTS_XML).unwrap();
        assert_eq!(validate(&dtd, &doc), vec![]);
    }

    #[test]
    fn scaled_corpus_is_valid_and_deterministic() {
        let dtd = parse_dtd(BANK_DTD).unwrap();
        let doc = financial_scaled(40, 11);
        assert_eq!(validate(&dtd, &doc), vec![]);
        let a = serialize(&financial_scaled(30, 5), &SerializeOptions::canonical());
        let b = serialize(&financial_scaled(30, 5), &SerializeOptions::canonical());
        assert_eq!(a, b, "same seed must reproduce the same statements");
        assert!(a.contains(r#"flagged="yes""#), "flagged transactions must appear");
    }

    #[test]
    fn teller_from_branch_sees_balances() {
        let v = view_for("tina", "10.1.4.20", "t1.branch.bank.com");
        assert!(v.contains("2450.10"), "{v}");
        assert!(v.contains("Dana Reef"), "{v}");
        assert!(!v.contains("Offshore"), "{v}");
    }

    #[test]
    fn teller_from_home_sees_nothing() {
        let v = view_for("tina", "89.12.3.4", "home.example.net");
        assert_eq!(v, "<statements/>");
    }

    #[test]
    fn auditor_sees_accounts_but_not_flagged_memo() {
        let v = view_for("axel", "10.9.9.9", "hq.bank.com");
        assert!(v.contains("Offshore Holdings"), "{v}");
        assert!(!v.contains("under review"), "{v}");
        assert!(v.contains("Payroll Inc"), "{v}");
    }

    #[test]
    fn fraud_desk_sees_flagged_transactions_with_memos() {
        let v = view_for("fred", "172.16.0.3", "desk.bank.com");
        assert!(v.contains("Offshore Holdings"), "{v}");
        assert!(v.contains("under review"), "{v}");
        assert!(!v.contains("Payroll Inc"), "{v}");
    }
}
