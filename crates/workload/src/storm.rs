//! Seeded randomized soak driver for the HTTP demo server.
//!
//! Drives a live server over real sockets with a mixed, adversarial
//! client population — well-behaved requests, conditional revalidations,
//! impossibly tight deadlines, mid-request hangups, and slow-loris
//! stalls — all drawn from one seeded generator, so a failing soak
//! replays exactly from its seed.
//!
//! The driver only *reports* what the clients observed
//! ([`StormReport`]); the chaos tests assert the server-side invariants
//! (no leaked core leases, gauges back to baseline, cache still
//! coherent) through the telemetry registry after the storm passes.
//! One client-side invariant is asserted here: every response that
//! arrives at all must be well-formed HTTP with a known status code —
//! a storm must never surface a half-written or corrupt response.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// What one storm throws at the server.
#[derive(Debug, Clone)]
pub struct StormConfig {
    /// Seed for the whole storm; same seed + same server ⇒ same client
    /// behavior (thread interleaving at the server may still differ).
    pub seed: u64,
    /// Total client actions across all threads.
    pub requests: usize,
    /// Concurrent client threads.
    pub concurrency: usize,
    /// Request targets (path + query string, e.g.
    /// `/doc.xml?user=tom&pass=pw&ip=1.2.3.4&host=h.x.org`), chosen
    /// uniformly per request.
    pub targets: Vec<String>,
    /// Probability a request declares an unmeetable deadline
    /// (`X-Request-Deadline: 0`), forcing a server-side cancellation.
    pub tiny_deadline: f64,
    /// Probability the client hangs up right after sending, while the
    /// server is (probably) still computing.
    pub disconnect: f64,
    /// Probability the client sends half a request line and stalls
    /// (slow loris; the server's read timeout reaps it).
    pub loris: f64,
    /// Probability a request revalidates with `If-None-Match` using the
    /// entity tag captured from an earlier response to the same target.
    pub conditional: f64,
}

impl Default for StormConfig {
    fn default() -> Self {
        StormConfig {
            seed: 0xB5,
            requests: 200,
            concurrency: 4,
            targets: Vec::new(),
            tiny_deadline: 0.15,
            disconnect: 0.10,
            loris: 0.05,
            conditional: 0.20,
        }
    }
}

/// What the storm's clients observed, summed over all threads.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StormReport {
    /// Client actions attempted (== `StormConfig::requests` unless the
    /// server became unreachable).
    pub sent: usize,
    /// Successful responses (200 and 304).
    pub ok: usize,
    /// Not-modified revalidations (a subset of `ok`).
    pub not_modified: usize,
    /// Load-shed or cancelled responses (503).
    pub shed: usize,
    /// Client-fault responses (4xx: 400/401/404/408/422/431…).
    pub client_error: usize,
    /// Server-fault responses (5xx other than 503).
    pub server_error: usize,
    /// Deliberate client-side aborts (disconnects and lorises), plus
    /// requests whose connection died without a response.
    pub aborted: usize,
    /// Responses that arrived but were not parseable HTTP — always a
    /// bug; the storm asserts this stays zero.
    pub malformed: usize,
}

impl StormReport {
    /// Responses accounted for (everything except client-side aborts).
    pub fn answered(&self) -> usize {
        self.ok + self.shed + self.client_error + self.server_error + self.malformed
    }
}

/// Parses the status code off an HTTP/1.0 response buffer.
pub(crate) fn status_of(buf: &str) -> Option<u16> {
    let rest = buf.strip_prefix("HTTP/1.0 ").or_else(|| buf.strip_prefix("HTTP/1.1 "))?;
    rest.get(..3)?.parse().ok()
}

/// Extracts the (quoted) entity tag from a response's header block.
pub(crate) fn etag_of(buf: &str) -> Option<String> {
    buf.split("\r\n\r\n")
        .next()?
        .lines()
        .find_map(|l| l.strip_prefix("ETag: ").map(|t| t.trim().to_string()))
}

/// One client thread's share of the storm.
fn client_run(
    addr: SocketAddr,
    cfg: &StormConfig,
    seed: u64,
    budget: usize,
    report: &mut StormReport,
) {
    let mut rng = SmallRng::seed_from_u64(seed);
    // Last seen entity tag per target index, for conditional requests.
    let mut etags: Vec<Option<String>> = vec![None; cfg.targets.len()];
    for _ in 0..budget {
        report.sent += 1;
        let ti = rng.gen_range(0..cfg.targets.len());
        let target = &cfg.targets[ti];
        let Ok(mut conn) = TcpStream::connect(addr) else {
            report.aborted += 1;
            continue;
        };
        let _ = conn.set_read_timeout(Some(Duration::from_secs(30)));
        let _ = conn.set_write_timeout(Some(Duration::from_secs(30)));

        if rng.gen_bool(cfg.loris) {
            // Half a request line, then silence; the server reaps us.
            let _ = conn.write_all(b"GET /half");
            let _ = conn.flush();
            std::thread::sleep(Duration::from_millis(rng.gen_range(1..40)));
            report.aborted += 1;
            continue;
        }

        let mut req = format!("GET {target} HTTP/1.0\r\nHost: storm\r\n");
        if rng.gen_bool(cfg.tiny_deadline) {
            req.push_str("X-Request-Deadline: 0\r\n");
        }
        if rng.gen_bool(cfg.conditional) {
            if let Some(tag) = &etags[ti] {
                req.push_str(&format!("If-None-Match: {tag}\r\n"));
            }
        }
        req.push_str("\r\n");
        if conn.write_all(req.as_bytes()).is_err() {
            report.aborted += 1;
            continue;
        }

        if rng.gen_bool(cfg.disconnect) {
            // Hang up while the server is (probably) mid-pipeline.
            drop(conn);
            report.aborted += 1;
            continue;
        }

        let mut buf = String::new();
        if conn.read_to_string(&mut buf).is_err() || buf.is_empty() {
            // The server dropped us (cancelled client-gone path, or a
            // reaped connection): no response is a legal outcome.
            report.aborted += 1;
            continue;
        }
        match status_of(&buf) {
            Some(200) => {
                report.ok += 1;
                etags[ti] = etag_of(&buf);
            }
            Some(304) => {
                report.ok += 1;
                report.not_modified += 1;
            }
            Some(503) => report.shed += 1,
            Some(c) if (400..500).contains(&c) => report.client_error += 1,
            Some(c) if (500..600).contains(&c) => report.server_error += 1,
            _ => report.malformed += 1,
        }
    }
}

/// Runs one storm against a live server and sums what the clients saw.
///
/// Panics if `targets` is empty (there would be nothing to send).
pub fn run_storm(addr: SocketAddr, cfg: &StormConfig) -> StormReport {
    assert!(!cfg.targets.is_empty(), "storm needs at least one target");
    let threads = cfg.concurrency.max(1);
    let share = cfg.requests / threads;
    let extra = cfg.requests % threads;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|i| {
                let budget = share + usize::from(i < extra);
                // Decorrelate thread streams; the golden-ratio stride
                // keeps them disjoint for any base seed.
                let seed = cfg.seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                scope.spawn(move || {
                    let mut r = StormReport::default();
                    client_run(addr, cfg, seed, budget, &mut r);
                    r
                })
            })
            .collect();
        let mut total = StormReport::default();
        for h in handles {
            let r = h.join().expect("storm client thread panicked");
            total.sent += r.sent;
            total.ok += r.ok;
            total.not_modified += r.not_modified;
            total.shed += r.shed;
            total.client_error += r.client_error;
            total.server_error += r.server_error;
            total.aborted += r.aborted;
            total.malformed += r.malformed;
        }
        total
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_and_etag_parsing() {
        let resp = "HTTP/1.0 200 OK\r\nETag: \"abc\"\r\n\r\nbody";
        assert_eq!(status_of(resp), Some(200));
        assert_eq!(etag_of(resp), Some("\"abc\"".to_string()));
        assert_eq!(status_of("garbage"), None);
        assert_eq!(etag_of("HTTP/1.0 200 OK\r\n\r\nETag: \"in-body\""), None);
    }

    #[test]
    fn report_accounting_adds_up() {
        let r = StormReport {
            sent: 10,
            ok: 5,
            not_modified: 2,
            shed: 2,
            client_error: 1,
            server_error: 0,
            aborted: 2,
            malformed: 0,
        };
        assert_eq!(r.answered() + r.aborted, r.sent);
    }
}
