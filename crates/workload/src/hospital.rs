//! Hospital-records corpus: a second domain scenario exercising
//! element-level protection with content-dependent conditions — the kind
//! of selective sharing the paper's introduction motivates (records
//! readable by ward staff, psychiatric notes restricted, billing visible
//! to administration only).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xmlsec_authz::{AuthType, Authorization, AuthorizationBase, ObjectSpec, Sign};
use xmlsec_subjects::{Directory, Subject};
use xmlsec_xml::Document;

/// URI of the hospital DTD.
pub const HOSPITAL_DTD_URI: &str = "hospital.dtd";

/// URI of the ward document.
pub const WARD_URI: &str = "ward3.xml";

/// The hospital DTD.
pub const HOSPITAL_DTD: &str = r#"<!ELEMENT ward (patient+)>
<!ATTLIST ward id CDATA #REQUIRED>
<!ELEMENT patient (name, history, billing?)>
<!ATTLIST patient id ID #REQUIRED status (admitted|discharged) #REQUIRED>
<!ELEMENT name (#PCDATA)>
<!ELEMENT history (entry*)>
<!ELEMENT entry (physician, note)>
<!ATTLIST entry kind (general|psychiatric) #REQUIRED date CDATA #REQUIRED>
<!ELEMENT physician (#PCDATA)>
<!ELEMENT note (#PCDATA)>
<!ELEMENT billing (item*)>
<!ELEMENT item (#PCDATA)>
<!ATTLIST item amount CDATA #REQUIRED>
"#;

/// The ward document.
pub const WARD_XML: &str = r#"<!DOCTYPE ward SYSTEM "hospital.dtd"><ward id="W3"><patient id="p1" status="admitted"><name>Ada Brown</name><history><entry kind="general" date="2000-02-01"><physician>Dr. Hale</physician><note>Fracture healing normally.</note></entry><entry kind="psychiatric" date="2000-02-10"><physician>Dr. Weiss</physician><note>Anxiety episode; follow-up in two weeks.</note></entry></history><billing><item amount="120">X-ray</item><item amount="80">Consultation</item></billing></patient><patient id="p2" status="discharged"><name>Ed Stone</name><history><entry kind="general" date="2000-01-20"><physician>Dr. Hale</physician><note>Discharged in good condition.</note></entry></history></patient></ward>"#;

/// Users and groups: nurses, physicians (nested into `Clinical`),
/// psychiatrists (nested into `Physicians`), administration.
pub fn hospital_directory() -> Directory {
    let mut d = Directory::new();
    for u in ["nina", "hale", "weiss", "omar"] {
        d.add_user(u).expect("fresh user");
    }
    for g in ["Nurses", "Physicians", "Psychiatrists", "Clinical", "Administration"] {
        d.add_group(g).expect("fresh group");
    }
    d.add_member("nina", "Nurses").expect("edge");
    d.add_member("hale", "Physicians").expect("edge");
    d.add_member("weiss", "Psychiatrists").expect("edge");
    d.add_member("Psychiatrists", "Physicians").expect("edge");
    d.add_member("Nurses", "Clinical").expect("edge");
    d.add_member("Physicians", "Clinical").expect("edge");
    d.add_member("omar", "Administration").expect("edge");
    d
}

/// The ward's protection requirements.
///
/// - Clinical staff read patient records (schema level, so every ward
///   document inherits it) …
/// - … but psychiatric entries are denied to everyone below
///   `Physicians`; nurses lose them through the most-specific-object
///   override.
/// - Psychiatric entries are explicitly granted to `Psychiatrists`.
/// - Billing is visible to `Administration` only (and administration
///   sees nothing else: their grant is on billing subtrees).
pub fn hospital_authorizations() -> Vec<Authorization> {
    vec![
        Authorization::new(
            Subject::new("Clinical", "*", "*").expect("subject"),
            ObjectSpec::with_path(HOSPITAL_DTD_URI, "/ward").expect("path"),
            Sign::Plus,
            AuthType::Recursive,
        ),
        Authorization::new(
            Subject::new("Clinical", "*", "*").expect("subject"),
            ObjectSpec::with_path(HOSPITAL_DTD_URI, r#"//entry[./@kind="psychiatric"]"#)
                .expect("path"),
            Sign::Minus,
            AuthType::Recursive,
        ),
        Authorization::new(
            Subject::new("Psychiatrists", "*", "*").expect("subject"),
            ObjectSpec::with_path(HOSPITAL_DTD_URI, r#"//entry[./@kind="psychiatric"]"#)
                .expect("path"),
            Sign::Plus,
            AuthType::Recursive,
        ),
        Authorization::new(
            Subject::new("Clinical", "*", "*").expect("subject"),
            ObjectSpec::with_path(HOSPITAL_DTD_URI, "//billing").expect("path"),
            Sign::Minus,
            AuthType::Recursive,
        ),
        Authorization::new(
            Subject::new("Administration", "*", "*").expect("subject"),
            ObjectSpec::with_path(HOSPITAL_DTD_URI, "//billing").expect("path"),
            Sign::Plus,
            AuthType::Recursive,
        ),
        Authorization::new(
            Subject::new("Administration", "*", "*").expect("subject"),
            ObjectSpec::with_path(HOSPITAL_DTD_URI, "//patient/name").expect("path"),
            Sign::Plus,
            AuthType::Recursive,
        ),
    ]
}

/// Generates a ward document with `patients` patients, valid against
/// [`HOSPITAL_DTD`] and shaped like [`WARD_XML`]: each patient carries a
/// name, 1–4 history entries (roughly a quarter psychiatric, so the
/// content-dependent denial has real work to do), and — for admitted
/// patients — a billing subtree. Node count grows linearly, ~14
/// elements/attributes per patient; same seed ⇒ same document. Used by
/// the parallel-labeling benchmarks (B12) so the fan-out runs over
/// wide, policy-relevant trees rather than synthetic tag soup.
pub fn hospital_scaled(patients: usize, seed: u64) -> Document {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut doc = Document::new("ward");
    let root = doc.root();
    doc.set_attribute(root, "id", "W3").expect("root accepts attributes");
    for i in 0..patients {
        let p = doc.append_element(root, "patient");
        doc.set_attribute(p, "id", &format!("p{i}")).expect("attrs");
        let admitted = rng.gen_bool(0.7);
        doc.set_attribute(p, "status", if admitted { "admitted" } else { "discharged" })
            .expect("attrs");
        let name = doc.append_element(p, "name");
        doc.append_text(name, &format!("Patient {i}"));
        let history = doc.append_element(p, "history");
        for e in 0..rng.gen_range(1..5usize) {
            let entry = doc.append_element(history, "entry");
            let kind = if rng.gen_bool(0.25) { "psychiatric" } else { "general" };
            doc.set_attribute(entry, "kind", kind).expect("attrs");
            doc.set_attribute(entry, "date", &format!("2000-02-{:02}", 1 + (i + e) % 28))
                .expect("attrs");
            let phys = doc.append_element(entry, "physician");
            doc.append_text(phys, if kind == "psychiatric" { "Dr. Weiss" } else { "Dr. Hale" });
            let note = doc.append_element(entry, "note");
            doc.append_text(note, &format!("Entry {e} for patient {i}."));
        }
        if admitted {
            let billing = doc.append_element(p, "billing");
            for b in 0..rng.gen_range(1..4usize) {
                let item = doc.append_element(billing, "item");
                doc.set_attribute(item, "amount", &format!("{}", rng.gen_range(20..500)))
                    .expect("attrs");
                doc.append_text(item, if b == 0 { "Consultation" } else { "Treatment" });
            }
        }
    }
    doc
}

/// Authorization base for the hospital scenario.
pub fn hospital_authorization_base() -> AuthorizationBase {
    let mut b = AuthorizationBase::new();
    b.extend(hospital_authorizations());
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlsec_authz::PolicyConfig;
    use xmlsec_core::compute_view;
    use xmlsec_dtd::{parse_dtd, validate};
    use xmlsec_subjects::Requester;
    use xmlsec_xml::{parse, serialize, SerializeOptions};

    fn view_for(user: &str) -> String {
        let dir = hospital_directory();
        let base = hospital_authorization_base();
        let rq = Requester::new(user, "10.0.0.7", "ward3.hospital.org").expect("requester");
        let doc = parse(WARD_XML).expect("parses");
        let adtd = base.applicable(HOSPITAL_DTD_URI, &rq, &dir);
        let (view, _) = compute_view(&doc, &[], &adtd, &dir, PolicyConfig::paper_default());
        serialize(&view, &SerializeOptions::canonical())
    }

    #[test]
    fn corpus_valid() {
        let dtd = parse_dtd(HOSPITAL_DTD).unwrap();
        let doc = parse(WARD_XML).unwrap();
        assert_eq!(validate(&dtd, &doc), vec![]);
    }

    #[test]
    fn scaled_corpus_is_valid_and_deterministic() {
        let dtd = parse_dtd(HOSPITAL_DTD).unwrap();
        let doc = hospital_scaled(40, 7);
        assert_eq!(validate(&dtd, &doc), vec![]);
        let a = serialize(&hospital_scaled(25, 3), &SerializeOptions::canonical());
        let b = serialize(&hospital_scaled(25, 3), &SerializeOptions::canonical());
        assert_eq!(a, b, "same seed must reproduce the same ward");
        assert!(a.contains("psychiatric"), "the denial-relevant entries must appear");
    }

    #[test]
    fn nurse_sees_general_entries_only() {
        let v = view_for("nina");
        assert!(v.contains("Fracture healing"), "{v}");
        assert!(!v.contains("Anxiety"), "{v}");
        assert!(!v.contains("X-ray"), "{v}");
    }

    #[test]
    fn psychiatrist_sees_psychiatric_entries() {
        let v = view_for("weiss");
        assert!(v.contains("Anxiety"), "{v}");
        assert!(v.contains("Fracture healing"), "{v}");
        assert!(!v.contains("X-ray"), "{v}");
    }

    #[test]
    fn general_physician_loses_psychiatric_notes() {
        let v = view_for("hale");
        assert!(!v.contains("Anxiety"), "{v}");
        assert!(v.contains("Fracture healing"), "{v}");
    }

    #[test]
    fn administration_sees_billing_and_names_only() {
        let v = view_for("omar");
        assert!(v.contains("X-ray"), "{v}");
        assert!(v.contains("Ada Brown"), "{v}");
        assert!(!v.contains("Fracture"), "{v}");
        assert!(!v.contains("Anxiety"), "{v}");
    }
}
