//! Push-channel corpus, modeled on CDF (Channel Definition Format) —
//! another XML application the paper's introduction names. A content
//! provider pushes one channel document; free and premium subscribers
//! receive different views of it, and the provider's own editors see
//! scheduling metadata nobody else does.

use xmlsec_authz::{AuthType, Authorization, AuthorizationBase, ObjectSpec, Sign};
use xmlsec_subjects::{Directory, Subject};

/// URI of the channel DTD.
pub const CHANNEL_DTD_URI: &str = "channel.dtd";

/// URI of the channel document.
pub const CHANNEL_URI: &str = "technews.xml";

/// The channel DTD.
pub const CHANNEL_DTD: &str = r#"<!ELEMENT channel (title, item+)>
<!ATTLIST channel self CDATA #REQUIRED lastmod CDATA #IMPLIED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT item (title, abstract, body?, schedule?)>
<!ATTLIST item href CDATA #REQUIRED tier (free|premium) "free">
<!ELEMENT abstract (#PCDATA)>
<!ELEMENT body (#PCDATA)>
<!ELEMENT schedule EMPTY>
<!ATTLIST schedule startdate CDATA #REQUIRED enddate CDATA #REQUIRED>
"#;

/// The channel document.
pub const CHANNEL_XML: &str = r#"<!DOCTYPE channel SYSTEM "channel.dtd"><channel self="http://technews.example/cdf" lastmod="2000-03-01"><title>Tech News</title><item href="/a1" tier="free"><title>XML 1.0 ships</title><abstract>The W3C finalizes XML.</abstract><body>Full story text A.</body><schedule startdate="2000-03-01" enddate="2000-03-08"/></item><item href="/a2" tier="premium"><title>Inside the security processor</title><abstract>A look at server-side view computation.</abstract><body>Full story text B.</body><schedule startdate="2000-03-02" enddate="2000-03-09"/></item></channel>"#;

/// Directory: free subscribers, premium subscribers (⊆ subscribers),
/// channel editors.
pub fn channel_directory() -> Directory {
    let mut d = Directory::new();
    for u in ["fred", "petra", "edna"] {
        d.add_user(u).expect("fresh user");
    }
    for g in ["Subscribers", "Premium", "Editors"] {
        d.add_group(g).expect("fresh group");
    }
    d.add_member("Premium", "Subscribers").expect("edge");
    d.add_member("fred", "Subscribers").expect("edge");
    d.add_member("petra", "Premium").expect("edge");
    d.add_member("edna", "Editors").expect("edge");
    d
}

/// Protection requirements (all schema level — they govern every channel
/// document the provider pushes):
///
/// - subscribers see the channel, but premium item bodies are withheld;
/// - premium subscribers get the bodies back (most specific subject);
/// - nobody but editors sees `<schedule>` metadata;
/// - editors see everything.
pub fn channel_authorizations() -> Vec<Authorization> {
    vec![
        Authorization::new(
            Subject::new("Subscribers", "*", "*").expect("subject"),
            ObjectSpec::with_path(CHANNEL_DTD_URI, "/channel").expect("path"),
            Sign::Plus,
            AuthType::Recursive,
        ),
        Authorization::new(
            Subject::new("Subscribers", "*", "*").expect("subject"),
            ObjectSpec::with_path(CHANNEL_DTD_URI, r#"//item[./@tier="premium"]/body"#)
                .expect("path"),
            Sign::Minus,
            AuthType::Recursive,
        ),
        Authorization::new(
            Subject::new("Premium", "*", "*").expect("subject"),
            ObjectSpec::with_path(CHANNEL_DTD_URI, r#"//item[./@tier="premium"]/body"#)
                .expect("path"),
            Sign::Plus,
            AuthType::Recursive,
        ),
        Authorization::new(
            Subject::new("Subscribers", "*", "*").expect("subject"),
            ObjectSpec::with_path(CHANNEL_DTD_URI, "//schedule").expect("path"),
            Sign::Minus,
            AuthType::Recursive,
        ),
        Authorization::new(
            Subject::new("Editors", "*", "*").expect("subject"),
            ObjectSpec::with_path(CHANNEL_DTD_URI, "/channel").expect("path"),
            Sign::Plus,
            AuthType::Recursive,
        ),
    ]
}

/// Authorization base for the channel scenario.
pub fn channel_authorization_base() -> AuthorizationBase {
    let mut b = AuthorizationBase::new();
    b.extend(channel_authorizations());
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlsec_authz::PolicyConfig;
    use xmlsec_core::compute_view;
    use xmlsec_dtd::{parse_dtd, validate};
    use xmlsec_subjects::Requester;
    use xmlsec_xml::{parse, serialize, SerializeOptions};

    fn view_for(user: &str) -> String {
        let dir = channel_directory();
        let base = channel_authorization_base();
        let rq = Requester::new(user, "10.2.3.4", "reader.example.net").expect("requester");
        let doc = parse(CHANNEL_XML).expect("parses");
        let adtd = base.applicable(CHANNEL_DTD_URI, &rq, &dir);
        let (view, _) = compute_view(&doc, &[], &adtd, &dir, PolicyConfig::paper_default());
        serialize(&view, &SerializeOptions::canonical())
    }

    #[test]
    fn corpus_valid() {
        let dtd = parse_dtd(CHANNEL_DTD).unwrap();
        let doc = parse(CHANNEL_XML).unwrap();
        assert_eq!(validate(&dtd, &doc), vec![]);
    }

    #[test]
    fn free_subscriber_sees_abstracts_but_no_premium_body() {
        let v = view_for("fred");
        assert!(v.contains("Full story text A"), "{v}");
        assert!(v.contains("A look at server-side view computation"), "{v}");
        assert!(!v.contains("Full story text B"), "{v}");
        assert!(!v.contains("schedule"), "{v}");
    }

    #[test]
    fn premium_subscriber_gets_premium_bodies() {
        let v = view_for("petra");
        assert!(v.contains("Full story text B"), "{v}");
        assert!(!v.contains("schedule"), "{v}");
    }

    #[test]
    fn editor_sees_schedules() {
        let v = view_for("edna");
        assert!(v.contains("schedule"), "{v}");
        assert!(v.contains("Full story text B"), "{v}");
    }

    #[test]
    fn outsider_sees_nothing() {
        let dir = channel_directory();
        let mut dir = dir;
        dir.add_user("randy").unwrap();
        let base = channel_authorization_base();
        let rq = Requester::new("randy", "10.2.3.4", "x.example.net").unwrap();
        let doc = parse(CHANNEL_XML).unwrap();
        let adtd = base.applicable(CHANNEL_DTD_URI, &rq, &dir);
        let (view, _) = compute_view(&doc, &[], &adtd, &dir, PolicyConfig::paper_default());
        assert_eq!(serialize(&view, &SerializeOptions::canonical()), "<channel/>");
    }
}
