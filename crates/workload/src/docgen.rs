//! Seeded synthetic document generation.
//!
//! Two families:
//!
//! - [`random_tree`] — arbitrary trees over a small tag vocabulary, with
//!   knobs for size, fanout, attribute density and text density; used by
//!   the differential property tests (a seed is a reproducible document);
//! - [`laboratory_scaled`] — CSlab-shaped documents with `n` projects,
//!   valid against the paper's DTD; used by the scaling benchmarks so
//!   that measured documents look like the paper's.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xmlsec_xml::{Document, NodeId};

/// Knobs for [`random_tree`].
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Target number of elements (the generator stops adding once
    /// reached; actual count is exact).
    pub elements: usize,
    /// Maximum children per element.
    pub max_fanout: usize,
    /// Distinct tag names (`t0`..`t{n-1}`).
    pub tag_vocab: usize,
    /// Probability an element gets each of up to 2 attributes.
    pub attr_prob: f64,
    /// Probability a leaf element gets a text child.
    pub text_prob: f64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig { elements: 50, max_fanout: 5, tag_vocab: 8, attr_prob: 0.4, text_prob: 0.5 }
    }
}

/// Attribute vocabulary used by the generator (and by
/// [`crate::authgen`] when it fabricates conditions).
pub const ATTR_NAMES: [&str; 3] = ["kind", "level", "owner"];

/// Attribute values used by the generator.
pub const ATTR_VALUES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

/// Generates a random document from a seed. Same seed, same document.
pub fn random_tree(cfg: &TreeConfig, seed: u64) -> Document {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut doc = Document::new("root");
    let mut open: Vec<NodeId> = vec![doc.root()];
    let mut created = 1usize;
    while created < cfg.elements {
        // Pick a random open element to extend; retire it when full.
        let slot = rng.gen_range(0..open.len());
        let parent = open[slot];
        let tag = format!("t{}", rng.gen_range(0..cfg.tag_vocab));
        let el = doc.append_element(parent, &tag);
        created += 1;
        for attr in ATTR_NAMES.iter().take(2) {
            if rng.gen_bool(cfg.attr_prob) {
                let val = ATTR_VALUES[rng.gen_range(0..ATTR_VALUES.len())];
                doc.set_attribute(el, attr, val).expect("element accepts attributes");
            }
        }
        if rng.gen_bool(cfg.text_prob) {
            doc.append_text(el, &format!("text{}", rng.gen_range(0..100)));
        }
        open.push(el);
        if doc.children(parent).len() >= cfg.max_fanout {
            open.swap_remove(slot);
            if open.is_empty() {
                open.push(el);
            }
        }
    }
    doc
}

/// Generates a CSlab-shaped laboratory with `projects` projects
/// (alternating internal/public), each with a manager, members, funds,
/// and a private + a public paper. Node count grows linearly:
/// ~17 elements/attributes per project.
pub fn laboratory_scaled(projects: usize, seed: u64) -> Document {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut doc = Document::new("laboratory");
    let root = doc.root();
    doc.set_attribute(root, "name", "CSlab").expect("root accepts attributes");
    for i in 0..projects {
        let p = doc.append_element(root, "project");
        doc.set_attribute(p, "name", &format!("Project {i}")).expect("attrs");
        let ptype = if i % 2 == 0 { "internal" } else { "public" };
        doc.set_attribute(p, "type", ptype).expect("attrs");

        let mgr = doc.append_element(p, "manager");
        let fl = doc.append_element(mgr, "flname");
        doc.append_text(fl, &format!("Manager {i}"));

        for m in 0..rng.gen_range(1..3usize) {
            let mem = doc.append_element(p, "member");
            let fl = doc.append_element(mem, "flname");
            doc.append_text(fl, &format!("Member {i}.{m}"));
        }

        let fund = doc.append_element(p, "fund");
        doc.set_attribute(fund, "type", if rng.gen_bool(0.5) { "private" } else { "public" })
            .expect("attrs");
        let sp = doc.append_element(fund, "sponsor");
        doc.append_text(sp, "MURST");
        let am = doc.append_element(fund, "amount");
        doc.append_text(am, &format!("{}", rng.gen_range(10_000..200_000)));

        for (cat, ty) in [("private", "internal"), ("public", "conference")] {
            let paper = doc.append_element(p, "paper");
            doc.set_attribute(paper, "category", cat).expect("attrs");
            doc.set_attribute(paper, "type", ty).expect("attrs");
            let t = doc.append_element(paper, "title");
            doc.append_text(t, &format!("Paper {i} ({cat})"));
        }
    }
    doc
}

/// Deep chain documents (`depth` nested elements), for shape-sensitivity
/// benchmarks.
pub fn deep_chain(depth: usize) -> Document {
    let mut doc = Document::new("root");
    let mut cur = doc.root();
    for i in 0..depth {
        cur = doc.append_element(cur, &format!("t{}", i % 4));
    }
    doc.append_text(cur, "leaf");
    doc
}

/// Flat documents (`width` children under the root), for
/// shape-sensitivity benchmarks.
pub fn flat(width: usize) -> Document {
    let mut doc = Document::new("root");
    let root = doc.root();
    for i in 0..width {
        let c = doc.append_element(root, &format!("t{}", i % 4));
        doc.append_text(c, "leaf");
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlsec_dtd::{parse_dtd, validate};
    use xmlsec_xml::{parse, serialize, SerializeOptions};

    #[test]
    fn random_tree_is_deterministic_and_sized() {
        let cfg = TreeConfig { elements: 40, ..Default::default() };
        let a = random_tree(&cfg, 7);
        let b = random_tree(&cfg, 7);
        assert!(a.structurally_equal(&b));
        let c = random_tree(&cfg, 8);
        assert!(!a.structurally_equal(&c));
        assert_eq!(a.descendant_elements(a.root()).len() + 1, 40);
    }

    #[test]
    fn random_tree_round_trips_through_text() {
        let doc = random_tree(&TreeConfig::default(), 42);
        let text = serialize(&doc, &SerializeOptions::canonical());
        let re = parse(&text).unwrap();
        assert!(doc.structurally_equal(&re));
    }

    #[test]
    fn scaled_laboratory_is_valid() {
        let dtd = parse_dtd(crate::laboratory::LAB_DTD).unwrap();
        let doc = laboratory_scaled(10, 1);
        assert_eq!(validate(&dtd, &doc), vec![]);
        assert_eq!(xmlsec_xpath::select_str(&doc, "/laboratory/project").unwrap().len(), 10);
    }

    #[test]
    fn scaled_laboratory_grows_linearly() {
        let d10 = laboratory_scaled(10, 3).count_reachable();
        let d100 = laboratory_scaled(100, 3).count_reachable();
        assert!(d100 > 8 * d10, "{d10} vs {d100}");
    }

    #[test]
    fn shapes() {
        let d = deep_chain(100);
        assert_eq!(d.count_reachable(), 102); // root + 100 + text
        let f = flat(100);
        assert_eq!(f.count_reachable(), 201); // root + 100 els + 100 texts
    }
}
