//! Open-loop load generator for the HTTP demo server.
//!
//! The [`storm`](crate::storm) driver is *closed-loop*: each client
//! thread waits for its response before sending the next request, so a
//! slow server throttles its own load and tail latency hides —
//! coordinated omission. This generator is *open-loop*: arrivals follow
//! a fixed schedule computed before the run starts (request `i` departs
//! at `i / rate` seconds), and every arrival launches regardless of how
//! many earlier requests are still in flight. A server that falls
//! behind faces a growing backlog, exactly like production traffic, and
//! the recorded latencies include the time requests spent waiting for
//! the server to catch up.
//!
//! The request mix is seeded and deterministic: plain view fetches
//! (warm cache hits after the first), `If-None-Match` revalidations
//! (304s), secure queries (always cache-miss compute), and slow clients
//! that hold a half-written request open. The report carries every
//! completed request's latency so callers can extract p50/p99/p999, the
//! classic open-loop tail metrics.

use crate::storm::{etag_of, status_of};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One open-loop run's shape.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Seed for the request mix; same seed ⇒ same schedule and mix.
    pub seed: u64,
    /// Total arrivals on the schedule.
    pub requests: usize,
    /// Arrival rate in requests per second (request `i` departs at
    /// `i / rate` seconds after the run starts, regardless of how many
    /// earlier requests are still in flight).
    pub rate: f64,
    /// The view target (path + query string) the mix revolves around.
    pub view_target: String,
    /// Probability an arrival is a secure query against `view_target`
    /// (the given XPath is appended as `&q=`): always cache-miss
    /// compute, so it exercises the worker handoff.
    pub query: f64,
    /// XPath for query arrivals (percent-encoded by the generator).
    pub query_path: String,
    /// Probability an arrival revalidates with `If-None-Match` using
    /// the entity tag captured by the warm-up request (304 from the
    /// event loop / degraded path).
    pub conditional: f64,
    /// Probability an arrival is a slow client: half a request line,
    /// then a stall the server's read timeout must reap.
    pub slow: f64,
    /// Probability an arrival is a write: `POST` the op batch in
    /// [`update_body`](OpenLoopConfig::update_body) to
    /// [`update_target`](OpenLoopConfig::update_target). Zero (the
    /// default) keeps the mix read-only; a non-zero mix measures
    /// readers queueing behind commits and in-place view patching.
    pub update: f64,
    /// `POST` target for update arrivals
    /// (`/update?doc=…&user=…&pass=…&ip=…&host=…`).
    pub update_target: String,
    /// Line-oriented op batch sent as the update body.
    pub update_body: String,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        OpenLoopConfig {
            seed: 0x0413,
            requests: 200,
            rate: 200.0,
            view_target: String::new(),
            query: 0.15,
            query_path: "/d".to_string(),
            conditional: 0.25,
            slow: 0.05,
            update: 0.0,
            update_target: String::new(),
            update_body: String::new(),
        }
    }
}

/// What the open-loop clients observed.
#[derive(Debug, Clone, Default)]
pub struct OpenLoopReport {
    /// Arrivals launched (== `OpenLoopConfig::requests`).
    pub sent: usize,
    /// Successful responses (200 and 304).
    pub ok: usize,
    /// Not-modified revalidations (a subset of `ok`).
    pub not_modified: usize,
    /// Committed update batches (a subset of `ok`).
    pub updated: usize,
    /// Load-shed or cancelled responses (503).
    pub shed: usize,
    /// Client-fault responses (4xx).
    pub client_error: usize,
    /// Server-fault responses (5xx other than 503).
    pub server_error: usize,
    /// Deliberate slow-client stalls plus connections that died without
    /// a response.
    pub aborted: usize,
    /// Unparseable responses — always a bug.
    pub malformed: usize,
    /// Arrival-to-last-byte latency of every answered request,
    /// unordered. Includes queueing behind a backlogged server (the
    /// point of open-loop measurement).
    pub latencies: Vec<Duration>,
    /// Wall time from first to last completion.
    pub elapsed: Duration,
}

impl OpenLoopReport {
    /// Responses accounted for (everything except aborts).
    pub fn answered(&self) -> usize {
        self.ok + self.shed + self.client_error + self.server_error + self.malformed
    }

    /// Latency quantile over answered requests (`q` in `[0, 1]`, e.g.
    /// 0.999 for p999); zero when nothing was answered.
    pub fn percentile(&self, q: f64) -> Duration {
        if self.latencies.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = self.latencies.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Answered requests per second over the run's wall time.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.answered() as f64 / secs
    }
}

/// What one scheduled arrival does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Arrival {
    View,
    Query,
    Conditional,
    Slow,
    Update,
}

/// Draws the whole mix up front so the schedule is fixed before the
/// first connection opens (open-loop: the server cannot influence it).
fn draw_mix(cfg: &OpenLoopConfig) -> Vec<Arrival> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    (0..cfg.requests)
        .map(|_| {
            let roll = f64::from(rng.gen_range(0u32..1_000_000)) / 1e6;
            if roll < cfg.slow {
                Arrival::Slow
            } else if roll < cfg.slow + cfg.conditional {
                Arrival::Conditional
            } else if roll < cfg.slow + cfg.conditional + cfg.query {
                Arrival::Query
            } else if roll < cfg.slow + cfg.conditional + cfg.query + cfg.update {
                Arrival::Update
            } else {
                Arrival::View
            }
        })
        .collect()
}

fn percent_encode(path: &str) -> String {
    let mut out = String::new();
    for b in path.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char);
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// One arrival, run to completion on its own thread. Returns the
/// latency (when answered) and the observed outcome.
fn run_arrival(
    addr: SocketAddr,
    kind: Arrival,
    cfg: &OpenLoopConfig,
    etag: Option<&str>,
    report: &Mutex<OpenLoopReport>,
) {
    let started = Instant::now();
    let outcome = (|| -> Option<String> {
        let mut conn = TcpStream::connect(addr).ok()?;
        let _ = conn.set_read_timeout(Some(Duration::from_secs(30)));
        let _ = conn.set_write_timeout(Some(Duration::from_secs(30)));
        match kind {
            Arrival::Slow => {
                // Half a request line, then silence: the server's read
                // timeout reaps us (408 or silent close are both legal).
                let _ = conn.write_all(b"GET /stall");
                let _ = conn.flush();
                std::thread::sleep(Duration::from_millis(50));
                return None;
            }
            Arrival::View => {
                let t = &cfg.view_target;
                conn.write_all(format!("GET {t} HTTP/1.0\r\nHost: ol\r\n\r\n").as_bytes())
                    .ok()?;
            }
            Arrival::Query => {
                let t = format!("{}&q={}", cfg.view_target, percent_encode(&cfg.query_path));
                conn.write_all(format!("GET {t} HTTP/1.0\r\nHost: ol\r\n\r\n").as_bytes())
                    .ok()?;
            }
            Arrival::Conditional => {
                let t = &cfg.view_target;
                let tag = etag.unwrap_or("\"cold\"");
                conn.write_all(
                    format!("GET {t} HTTP/1.0\r\nHost: ol\r\nIf-None-Match: {tag}\r\n\r\n")
                        .as_bytes(),
                )
                .ok()?;
            }
            Arrival::Update => {
                let t = &cfg.update_target;
                let body = &cfg.update_body;
                conn.write_all(
                    format!(
                        "POST {t} HTTP/1.0\r\nHost: ol\r\nContent-Length: {}\r\n\r\n{body}",
                        body.len()
                    )
                    .as_bytes(),
                )
                .ok()?;
            }
        }
        let mut buf = String::new();
        conn.read_to_string(&mut buf).ok()?;
        if buf.is_empty() {
            return None;
        }
        Some(buf)
    })();
    let latency = started.elapsed();
    let Ok(mut r) = report.lock() else { return };
    r.sent += 1;
    let Some(buf) = outcome else {
        r.aborted += 1;
        return;
    };
    match status_of(&buf) {
        Some(200) => {
            r.ok += 1;
            if kind == Arrival::Update {
                r.updated += 1;
            }
        }
        Some(304) => {
            r.ok += 1;
            r.not_modified += 1;
        }
        Some(503) => r.shed += 1,
        Some(c) if (400..500).contains(&c) => r.client_error += 1,
        Some(c) if (500..600).contains(&c) => r.server_error += 1,
        _ => r.malformed += 1,
    }
    r.latencies.push(latency);
}

/// Runs one open-loop schedule against a live server.
///
/// A warm-up request is sent first (outside the measured schedule) so
/// the view cache is populated and an entity tag exists for the
/// conditional arrivals; then `cfg.requests` arrivals depart on the
/// fixed `cfg.rate` schedule, each on its own thread, and the report is
/// summed once every arrival has resolved.
///
/// Panics if `view_target` is empty (there would be nothing to send).
pub fn run_open_loop(addr: SocketAddr, cfg: &OpenLoopConfig) -> OpenLoopReport {
    assert!(!cfg.view_target.is_empty(), "open loop needs a view target");
    let mix = draw_mix(cfg);

    // Warm-up: populate the cache and capture the entity tag.
    let etag = TcpStream::connect(addr).ok().and_then(|mut conn| {
        let t = &cfg.view_target;
        conn.write_all(format!("GET {t} HTTP/1.0\r\nHost: ol\r\n\r\n").as_bytes())
            .ok()?;
        let mut buf = String::new();
        conn.read_to_string(&mut buf).ok()?;
        etag_of(&buf)
    });

    let report = Mutex::new(OpenLoopReport::default());
    let interval = Duration::from_secs_f64(1.0 / cfg.rate.max(1.0));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for (i, kind) in mix.iter().enumerate() {
            // Fixed schedule: arrival i departs at i * interval, no
            // matter how many earlier arrivals are still in flight.
            let due = start + interval * (i as u32);
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
            let report = &report;
            let etag = etag.as_deref();
            scope.spawn(move || run_arrival(addr, *kind, cfg, etag, report));
        }
    });
    let mut r = report.into_inner().unwrap_or_default();
    r.elapsed = start.elapsed();
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_seeded_and_deterministic() {
        let cfg = OpenLoopConfig { view_target: "/x".to_string(), ..Default::default() };
        assert_eq!(draw_mix(&cfg), draw_mix(&cfg));
        let shifted = OpenLoopConfig { seed: cfg.seed + 1, ..cfg.clone() };
        assert_ne!(draw_mix(&cfg), draw_mix(&shifted));
    }

    #[test]
    fn percentiles_order_and_clamp() {
        let r = OpenLoopReport {
            latencies: (1..=100).map(Duration::from_millis).collect(),
            ..Default::default()
        };
        assert_eq!(r.percentile(0.5), Duration::from_millis(50));
        assert_eq!(r.percentile(0.99), Duration::from_millis(99));
        assert_eq!(r.percentile(0.999), Duration::from_millis(100));
        assert_eq!(OpenLoopReport::default().percentile(0.5), Duration::ZERO);
    }

    #[test]
    fn query_paths_are_percent_encoded() {
        assert_eq!(percent_encode("/d/pub"), "%2Fd%2Fpub");
        assert_eq!(percent_encode("abc-1._~"), "abc-1._~");
    }
}
