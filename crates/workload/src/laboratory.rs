//! The paper's running example: the *laboratory* DTD (Figure 1(a)), the
//! CSlab document (Figure 3(a)), the Example 1 authorization set, and the
//! Example 2 requester (Tom).
//!
//! Figures 1 and 3 are images in the published paper; the DTD and
//! document here are reconstructed from every element, attribute, and
//! path expression the text mentions (`laboratory`, `project[@name,
//! @type∈{internal,public}]`, `manager`, `flname`, `fund`,
//! `paper[@category∈{private,public}, @type]`, the paths
//! `/laboratory/project`, `/laboratory//flname`,
//! `fund/ancestor::project`, …). Example 1's fourth authorization is
//! printed with type "`W`" in the paper; we read it as `RW` (the
//! requirement is "access **information about** managers", which a Local
//! Weak grant — bare `<manager/>` shells — would not satisfy). Both
//! readings are exercised in tests.

use xmlsec_authz::{AuthType, Authorization, AuthorizationBase, ObjectSpec, Sign};
use xmlsec_subjects::{Directory, Requester, Subject};

/// URI of the laboratory DTD (the paper uses
/// `http://www.lab.com/laboratory.xml`; we keep the relative form it uses
/// in Example 1).
pub const LAB_DTD_URI: &str = "laboratory.xml";

/// URI of the CSlab instance document.
pub const CSLAB_URI: &str = "CSlab.xml";

/// The laboratory DTD (reconstruction of Figure 1(a)).
pub const LAB_DTD: &str = r#"<!ELEMENT laboratory (project+)>
<!ATTLIST laboratory name CDATA #REQUIRED>
<!ELEMENT project (manager, member*, fund*, paper*)>
<!ATTLIST project name CDATA #REQUIRED type (internal|public) #REQUIRED>
<!ELEMENT manager (flname, email?)>
<!ELEMENT member (flname, email?)>
<!ELEMENT flname (#PCDATA)>
<!ELEMENT email (#PCDATA)>
<!ELEMENT fund (sponsor, amount?)>
<!ATTLIST fund type CDATA #IMPLIED>
<!ELEMENT sponsor (#PCDATA)>
<!ELEMENT amount (#PCDATA)>
<!ELEMENT paper (title, authors?)>
<!ATTLIST paper category (private|public) #REQUIRED type CDATA #IMPLIED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT authors (#PCDATA)>
"#;

/// The CSlab document (reconstruction of Figure 3(a)).
pub const CSLAB_XML: &str = r#"<!DOCTYPE laboratory SYSTEM "laboratory.xml"><laboratory name="CSlab"><project name="Access Models" type="internal"><manager><flname>Sam Marlow</flname><email>sam@lab.com</email></manager><member><flname>Ann Eager</flname></member><fund type="private"><sponsor>MURST</sponsor><amount>40000</amount></fund><paper category="private" type="internal"><title>Security Processor Design</title></paper><paper category="public" type="conference"><title>An Access Control Model for XML</title><authors>Damiani et al.</authors></paper></project><project name="Query Engines" type="public"><manager><flname>Bob Keen</flname></manager><member><flname>Carol Swift</flname><email>carol@lab.com</email></member><fund type="public"><sponsor>EC-FASTER</sponsor><amount>150000</amount></fund><paper category="public" type="journal"><title>Querying XML</title></paper><paper category="private" type="internal"><title>Engine Internals</title></paper></project></laboratory>"#;

/// The user/group directory of the examples: Tom ∈ Foreign ∩ Public,
/// Alice ∈ Admin ∩ Public, Sam ∈ Public; `anonymous` ∈ Public.
pub fn lab_directory() -> Directory {
    let mut d = Directory::new();
    for u in ["Tom", "Alice", "Sam", "anonymous"] {
        d.add_user(u).expect("fresh user");
    }
    for g in ["Public", "Foreign", "Admin"] {
        d.add_group(g).expect("fresh group");
    }
    d.add_member("Tom", "Foreign").expect("valid edge");
    d.add_member("Alice", "Admin").expect("valid edge");
    for u in ["Tom", "Alice", "Sam", "anonymous"] {
        d.add_member(u, "Public").expect("valid edge");
    }
    d
}

/// The four authorizations of Example 1, verbatim (with `W` read as
/// `RW`; see the module docs).
pub fn example1_authorizations() -> Vec<Authorization> {
    vec![
        // Access to private papers is explicitly forbidden to members of
        // the group Foreign (schema level).
        Authorization::new(
            Subject::new("Foreign", "*", "*").expect("valid subject"),
            ObjectSpec::with_path(LAB_DTD_URI, r#"/laboratory//paper[./@category="private"]"#)
                .expect("valid path"),
            Sign::Minus,
            AuthType::Recursive,
        ),
        // Information about public papers of CSlab is publicly
        // accessible, unless otherwise specified at the DTD level.
        Authorization::new(
            Subject::new("Public", "*", "*").expect("valid subject"),
            ObjectSpec::with_path(CSLAB_URI, r#"/laboratory//paper[./@category="public"]"#)
                .expect("valid path"),
            Sign::Plus,
            AuthType::RecursiveWeak,
        ),
        // Internal projects accessible to Admin members connected from
        // host 130.89.56.8.
        Authorization::new(
            Subject::new("Admin", "130.89.56.8", "*").expect("valid subject"),
            ObjectSpec::with_path(CSLAB_URI, r#"project[./@type="internal"]"#).expect("valid path"),
            Sign::Plus,
            AuthType::Recursive,
        ),
        // Users connected from the it domain can access information about
        // managers of public projects.
        Authorization::new(
            Subject::new("Public", "*", "*.it").expect("valid subject"),
            ObjectSpec::with_path(CSLAB_URI, r#"project[./@type="public"]/manager"#)
                .expect("valid path"),
            Sign::Plus,
            AuthType::RecursiveWeak,
        ),
    ]
}

/// The Example 1 authorizations loaded into a base.
pub fn lab_authorization_base() -> AuthorizationBase {
    let mut base = AuthorizationBase::new();
    base.extend(example1_authorizations());
    base
}

/// Example 2's requester: "user Tom, member of group Foreign, when
/// connected from infosys.bld1.it (130.100.50.8)".
pub fn tom() -> Requester {
    Requester::new("Tom", "130.100.50.8", "infosys.bld1.it").expect("valid requester")
}

/// Tom's expected view of CSlab.xml (our reconstruction of Figure 3(b)):
/// public papers everywhere (weak grant, not overridden for public
/// papers by the schema denial, which only matches private ones), the
/// manager of the public project, everything else pruned.
pub const TOM_VIEW_XML: &str = r#"<laboratory><project><paper category="public" type="conference"><title>An Access Control Model for XML</title><authors>Damiani et al.</authors></paper></project><project><manager><flname>Bob Keen</flname></manager><paper category="public" type="journal"><title>Querying XML</title></paper></project></laboratory>"#;

#[cfg(test)]
mod tests {
    use super::*;
    use xmlsec_dtd::{parse_dtd, validate};
    use xmlsec_xml::parse;

    #[test]
    fn corpus_is_well_formed_and_valid() {
        let dtd = parse_dtd(LAB_DTD).expect("DTD parses");
        let doc = parse(CSLAB_XML).expect("document parses");
        assert_eq!(validate(&dtd, &doc), vec![]);
    }

    #[test]
    fn corpus_matches_paper_paths() {
        let doc = parse(CSLAB_XML).unwrap();
        // /laboratory//flname → 4 (2 managers + 2 members)
        assert_eq!(xmlsec_xpath::select_str(&doc, "/laboratory//flname").unwrap().len(), 4);
        // fund under project (ancestor example)
        assert_eq!(xmlsec_xpath::select_str(&doc, "//fund/ancestor::project").unwrap().len(), 2);
        // private papers
        assert_eq!(
            xmlsec_xpath::select_str(&doc, r#"/laboratory//paper[./@category="private"]"#)
                .unwrap()
                .len(),
            2
        );
    }

    #[test]
    fn directory_memberships() {
        let d = lab_directory();
        assert!(d.is_member("Tom", "Foreign"));
        assert!(d.is_member("Tom", "Public"));
        assert!(!d.is_member("Tom", "Admin"));
        assert!(d.is_member("Alice", "Admin"));
    }

    #[test]
    fn authorizations_split_by_level() {
        let base = lab_authorization_base();
        assert_eq!(base.for_uri(LAB_DTD_URI).len(), 1); // schema level
        assert_eq!(base.for_uri(CSLAB_URI).len(), 3); // instance level
    }

    #[test]
    fn tom_covered_by_expected_subjects() {
        let d = lab_directory();
        let auths = example1_authorizations();
        let t = tom();
        assert!(t.is_covered_by(&auths[0].subject, &d)); // Foreign
        assert!(t.is_covered_by(&auths[1].subject, &d)); // Public
        assert!(!t.is_covered_by(&auths[2].subject, &d)); // Admin host
        assert!(t.is_covered_by(&auths[3].subject, &d)); // Public + *.it
    }

    #[test]
    fn expected_view_is_well_formed() {
        parse(TOM_VIEW_XML).unwrap();
    }
}
