//! Random DTD generation and conforming-instance generation.
//!
//! Used by the property test of the paper's §6.2 guarantee: for *any*
//! DTD, any valid instance, and any authorization set, the pruned view
//! validates against the loosened DTD. The schemas generated here are
//! tree-shaped (element `e{i}` may only reference higher-numbered
//! elements, so content graphs are acyclic and instance generation
//! terminates) with random sequence/choice models, cardinalities, mixed
//! content, and attribute declarations of every default kind.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xmlsec_dtd::{
    AttDef, AttType, Cardinality, ContentSpec, DefaultDecl, Dtd, ElementDecl, Particle,
    ParticleKind,
};
use xmlsec_xml::Document;

/// Knobs for [`random_dtd`].
#[derive(Debug, Clone, Copy)]
pub struct DtdConfig {
    /// Number of element declarations (≥ 1).
    pub elements: usize,
    /// Maximum particles per sequence/choice.
    pub max_group: usize,
    /// Maximum attribute definitions per element.
    pub max_attrs: usize,
}

impl Default for DtdConfig {
    fn default() -> Self {
        DtdConfig { elements: 8, max_group: 3, max_attrs: 2 }
    }
}

/// Name of the root element every generated DTD declares first.
pub const GEN_ROOT: &str = "e0";

/// Generates a random, acyclic DTD. `e0` is the root; element `e{i}`
/// references only `e{j}` with `j > i`.
pub fn random_dtd(cfg: &DtdConfig, seed: u64) -> Dtd {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xd7d);
    let n = cfg.elements.max(1);
    let mut dtd = Dtd::default();
    for i in 0..n {
        let name = format!("e{i}");
        let content = if i + 1 >= n {
            // Leaves: text or empty.
            if rng.gen_bool(0.6) {
                ContentSpec::Mixed(vec![])
            } else {
                ContentSpec::Empty
            }
        } else {
            match rng.gen_range(0..5) {
                0 => ContentSpec::Mixed(vec![]),
                1 => {
                    // Mixed with references.
                    let k = rng.gen_range(1..=cfg.max_group.min(n - i - 1));
                    let mut names: Vec<String> =
                        (0..k).map(|_| format!("e{}", rng.gen_range(i + 1..n))).collect();
                    names.sort_unstable();
                    names.dedup();
                    ContentSpec::Mixed(names)
                }
                2 => ContentSpec::Empty,
                _ => ContentSpec::Children(random_particle(&mut rng, cfg, i + 1, n, 0)),
            }
        };
        dtd.add_element(ElementDecl { name: name.clone(), content });
        let attr_count = rng.gen_range(0..=cfg.max_attrs);
        if attr_count > 0 {
            let defs: Vec<AttDef> = (0..attr_count)
                .map(|a| {
                    let ty = match rng.gen_range(0..3) {
                        0 => AttType::Cdata,
                        1 => AttType::NmToken,
                        _ => AttType::Enumeration(vec!["one".into(), "two".into()]),
                    };
                    let default = match rng.gen_range(0..4) {
                        0 => DefaultDecl::Required,
                        1 => DefaultDecl::Implied,
                        2 => DefaultDecl::Default("one".into()),
                        _ => DefaultDecl::Fixed("one".into()),
                    };
                    AttDef { name: format!("a{a}"), ty, default }
                })
                .collect();
            dtd.add_attlist(&name, defs);
        }
    }
    dtd
}

fn random_particle(
    rng: &mut SmallRng,
    cfg: &DtdConfig,
    lo: usize,
    hi: usize,
    depth: usize,
) -> Particle {
    let card = match rng.gen_range(0..4) {
        0 => Cardinality::One,
        1 => Cardinality::Optional,
        2 => Cardinality::ZeroOrMore,
        _ => Cardinality::OneOrMore,
    };
    let kind = if depth >= 2 || rng.gen_bool(0.5) {
        ParticleKind::Name(format!("e{}", rng.gen_range(lo..hi)))
    } else {
        // 1-ary groups are avoided: `(x)+` prints the same for Seq and
        // Choice, which would break round-trip equality checks.
        let k = rng.gen_range(2..=cfg.max_group.max(2));
        let items: Vec<Particle> =
            (0..k).map(|_| random_particle(rng, cfg, lo, hi, depth + 1)).collect();
        if rng.gen_bool(0.5) {
            ParticleKind::Seq(items)
        } else {
            ParticleKind::Choice(items)
        }
    };
    Particle { kind, card }
}

/// Generates a random document valid against `dtd`, rooted at `e0`.
///
/// Repetition counts are kept small (`*`/`+` expand to ≤ 2) so documents
/// stay bounded even for adversarial schemas.
pub fn conforming_doc(dtd: &Dtd, seed: u64) -> Document {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xd0c);
    let mut doc = Document::new(GEN_ROOT);
    let root = doc.root();
    fill_element(dtd, &mut doc, root, GEN_ROOT, &mut rng, 0);
    doc
}

fn fill_element(
    dtd: &Dtd,
    doc: &mut Document,
    el: xmlsec_xml::NodeId,
    name: &str,
    rng: &mut SmallRng,
    depth: usize,
) {
    // Attributes: required and fixed must appear; others sometimes.
    for def in dtd.attributes(name) {
        let value = match &def.ty {
            AttType::Enumeration(vs) | AttType::Notation(vs) => {
                vs[rng.gen_range(0..vs.len())].clone()
            }
            AttType::NmToken => format!("tok{}", rng.gen_range(0..9)),
            _ => format!("v{}", rng.gen_range(0..9)),
        };
        match &def.default {
            DefaultDecl::Required => {
                doc.set_attribute(el, &def.name, &value).expect("element");
            }
            DefaultDecl::Fixed(v) => {
                if rng.gen_bool(0.5) {
                    doc.set_attribute(el, &def.name, v).expect("element");
                }
            }
            DefaultDecl::Implied | DefaultDecl::Default(_) => {
                if rng.gen_bool(0.4) {
                    doc.set_attribute(el, &def.name, &value).expect("element");
                }
            }
        }
    }
    let Some(decl) = dtd.element(name) else { return };
    match &decl.content {
        ContentSpec::Empty => {}
        ContentSpec::Any => {
            if rng.gen_bool(0.5) {
                doc.append_text(el, "any");
            }
        }
        ContentSpec::Mixed(names) => {
            doc.append_text(el, &format!("txt{}", rng.gen_range(0..9)));
            if depth < 12 {
                for n in names {
                    if rng.gen_bool(0.5) {
                        let c = doc.append_element(el, n);
                        fill_element(dtd, doc, c, n, rng, depth + 1);
                    }
                }
            }
        }
        ContentSpec::Children(p) => {
            let p = p.clone();
            expand_particle(dtd, doc, el, &p, rng, depth);
        }
    }
}

fn expand_particle(
    dtd: &Dtd,
    doc: &mut Document,
    el: xmlsec_xml::NodeId,
    p: &Particle,
    rng: &mut SmallRng,
    depth: usize,
) {
    let reps = match p.card {
        Cardinality::One => 1,
        Cardinality::Optional => {
            // Deep in the tree, prefer omission to bound document size.
            usize::from(depth < 10 && rng.gen_bool(0.5))
        }
        Cardinality::ZeroOrMore => {
            if depth >= 10 {
                0
            } else {
                rng.gen_range(0..=2)
            }
        }
        Cardinality::OneOrMore => {
            if depth >= 10 {
                1
            } else {
                rng.gen_range(1..=2)
            }
        }
    };
    for _ in 0..reps {
        match &p.kind {
            ParticleKind::Name(n) => {
                let c = doc.append_element(el, n);
                fill_element(dtd, doc, c, n, rng, depth + 1);
            }
            ParticleKind::Seq(items) => {
                for item in items {
                    expand_particle(dtd, doc, el, item, rng, depth + 1);
                }
            }
            ParticleKind::Choice(items) => {
                let pick = rng.gen_range(0..items.len());
                expand_particle(dtd, doc, el, &items[pick], rng, depth + 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlsec_dtd::{normalize, validate};

    #[test]
    fn generated_dtds_parse_back() {
        for seed in 0..20 {
            let dtd = random_dtd(&DtdConfig::default(), seed);
            let text = xmlsec_dtd::serialize_dtd(&dtd);
            let re = xmlsec_dtd::parse_dtd(&text).expect("generated DTD re-parses");
            assert_eq!(dtd, re, "seed {seed}");
        }
    }

    #[test]
    fn conforming_docs_validate() {
        for seed in 0..50 {
            let dtd = random_dtd(&DtdConfig::default(), seed);
            let mut doc = conforming_doc(&dtd, seed);
            // Inject defaults (fixed attributes may be omitted by the
            // generator); then the document must be fully valid.
            normalize(&dtd, &mut doc);
            let errs = validate(&dtd, &doc);
            assert!(
                errs.is_empty(),
                "seed {seed}: {errs:?}\ndtd:\n{}\ndoc:\n{}",
                xmlsec_dtd::serialize_dtd(&dtd),
                xmlsec_xml::serialize(&doc, &xmlsec_xml::SerializeOptions::canonical())
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let d1 = random_dtd(&DtdConfig::default(), 9);
        let d2 = random_dtd(&DtdConfig::default(), 9);
        assert_eq!(d1, d2);
        let a = conforming_doc(&d1, 3);
        let b = conforming_doc(&d2, 3);
        assert!(a.structurally_equal(&b));
    }

    #[test]
    fn bigger_configs_stay_bounded() {
        let cfg = DtdConfig { elements: 20, max_group: 4, max_attrs: 3 };
        for seed in 0..10 {
            let dtd = random_dtd(&cfg, seed);
            let doc = conforming_doc(&dtd, seed);
            assert!(doc.count_reachable() < 100_000, "seed {seed} exploded");
        }
    }
}
