//! # xmlsec-workload — corpora and generators
//!
//! Everything the tests, examples and benchmarks feed into the system:
//!
//! - [`laboratory`] — the paper's running example (Figure 1 DTD, Figure 3
//!   CSlab document, Example 1 authorizations, Example 2 requester);
//! - [`hospital`] — ward records with role- and content-dependent
//!   protection;
//! - [`financial`] — OFX-style bank statements with location-restricted
//!   subjects;
//! - [`channel`] — CDF-style push channels with tiered subscriptions;
//! - [`docgen`] / [`authgen`] — seeded synthetic documents, directories,
//!   requesters and authorization sets (same seed ⇒ same output), used by
//!   the differential property tests and the Criterion benches;
//! - [`storm`] — a seeded randomized soak driver that hammers a live
//!   HTTP demo server over real sockets with mixed good/hostile
//!   clients (tight deadlines, hangups, slow lorises), used by the
//!   chaos robustness tests;
//! - [`openloop`] — an arrival-rate-driven (open-loop) load generator
//!   whose fixed schedule launches requests regardless of in-flight
//!   count, so tail latency under backlog is measured without
//!   coordinated omission; used by bench B17.

#![warn(missing_docs)]

pub mod authgen;
pub mod channel;
pub mod docgen;
pub mod dtdgen;
pub mod financial;
pub mod hospital;
pub mod laboratory;
pub mod openloop;
pub mod storm;

pub use authgen::{random_auths, random_directory, random_requester, AuthConfig};
pub use docgen::{deep_chain, flat, laboratory_scaled, random_tree, TreeConfig};
pub use dtdgen::{conforming_doc, random_dtd, DtdConfig, GEN_ROOT};
pub use financial::financial_scaled;
pub use hospital::hospital_scaled;
pub use openloop::{run_open_loop, OpenLoopConfig, OpenLoopReport};
pub use storm::{run_storm, StormConfig, StormReport};
