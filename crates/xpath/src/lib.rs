//! # xmlsec-xpath — path expressions for authorization objects
//!
//! The paper (§4) identifies protected objects as `URI:PE` where `PE` is
//! an XPath path expression on the document tree. This crate implements
//! the needed XPath 1.0 subset from scratch:
//!
//! - navigation: `/`, `//`, `.`, `..`, `@attr`, `*`, explicit axes
//!   (`child::`, `descendant::`, `ancestor::`, `parent::`, `self::`,
//!   `attribute::`, `descendant-or-self::`, `ancestor-or-self::`);
//! - conditions: comparisons over attribute values and element text,
//!   `and`/`or`, positional predicates (`[1]`, `position()`, `last()`),
//!   `count`, `contains`, `starts-with`, `not`, `string`, `number`,
//!   `normalize-space`, `name`;
//! - XPath 1.0 coercion and existential node-set comparison semantics.
//!
//! ```
//! use xmlsec_xpath::{parse_path, select};
//!
//! let doc = xmlsec_xml::parse(r#"<laboratory>
//!     <project name="Access Models" type="internal"/>
//!     <project name="Query Engines" type="public"/>
//! </laboratory>"#).unwrap();
//! let path = parse_path(r#"/laboratory/project[./@type="internal"]"#).unwrap();
//! let hits = select(&doc, &path);
//! assert_eq!(hits.len(), 1);
//! assert_eq!(doc.attribute(hits[0], "name"), Some("Access Models"));
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod eval;
pub mod lexer;
pub mod limits;
pub mod parser;
pub mod value;

pub use ast::{Axis, CmpOp, Expr, Func, NodeTest, PathExpr, Step};
pub use eval::{
    describe_node, eval_condition, eval_path, eval_path_limited, eval_path_shared, select,
    select_limited, select_shared, select_str, CtxNode,
};
pub use lexer::{Result, XPathError};
pub use limits::{EvalError, EvalLimits, SharedBudget};
pub use parser::{parse_expr, parse_path};
pub use value::Value;
