//! XPath 1.0 value model: node-sets, strings, numbers, booleans, with the
//! standard coercions and comparison semantics.

use xmlsec_xml::{Document, NodeId};

/// The result of evaluating an expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A set of nodes, sorted in document order, without duplicates.
    NodeSet(Vec<NodeId>),
    /// A string.
    Str(String),
    /// A number (IEEE double, per XPath 1.0).
    Num(f64),
    /// A boolean.
    Bool(bool),
}

impl Value {
    /// Boolean coercion (XPath 1.0 `boolean()`).
    pub fn to_bool(&self) -> bool {
        match self {
            Value::NodeSet(ns) => !ns.is_empty(),
            Value::Str(s) => !s.is_empty(),
            Value::Num(n) => *n != 0.0 && !n.is_nan(),
            Value::Bool(b) => *b,
        }
    }

    /// Numeric coercion (XPath 1.0 `number()`).
    pub fn to_number(&self, doc: &Document) -> f64 {
        match self {
            Value::NodeSet(_) => str_to_number(&self.to_string_value(doc)),
            Value::Str(s) => str_to_number(s),
            Value::Num(n) => *n,
            Value::Bool(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// String coercion (XPath 1.0 `string()`): a node-set converts to the
    /// string-value of its first node in document order.
    pub fn to_string_value(&self, doc: &Document) -> String {
        match self {
            Value::NodeSet(ns) => ns.first().map(|&n| doc.text_value(n)).unwrap_or_default(),
            Value::Str(s) => s.clone(),
            Value::Num(n) => number_to_string(*n),
            Value::Bool(b) => b.to_string(),
        }
    }
}

/// XPath 1.0 number formatting: integers print without a decimal point.
pub fn number_to_string(n: f64) -> String {
    if n.is_nan() {
        "NaN".to_string()
    } else if n.is_infinite() {
        if n > 0.0 {
            "Infinity".to_string()
        } else {
            "-Infinity".to_string()
        }
    } else if n == n.trunc() && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// XPath 1.0 string-to-number: trimmed decimal, else NaN.
pub fn str_to_number(s: &str) -> f64 {
    let t = s.trim();
    if t.is_empty() {
        return f64::NAN;
    }
    t.parse::<f64>().unwrap_or(f64::NAN)
}

/// Comparison dispatch implementing XPath 1.0 §3.4.
///
/// Node-sets compare existentially: the result is `true` if *some* node
/// makes the comparison true. Relational operators always compare numbers
/// unless both operands are node-sets.
pub fn compare(doc: &Document, op: crate::ast::CmpOp, left: &Value, right: &Value) -> bool {
    use Value::*;
    match (left, right) {
        (NodeSet(a), NodeSet(b)) => {
            // exists (x, y) with string(x) op string(y)
            a.iter().any(|&x| {
                let sx = doc.text_value(x);
                b.iter().any(|&y| {
                    let sy = doc.text_value(y);
                    cmp_strings(op, &sx, &sy)
                })
            })
        }
        (NodeSet(a), other) | (other, NodeSet(a)) => {
            let flipped = matches!(right, NodeSet(_)) && !matches!(left, NodeSet(_));
            a.iter().any(|&x| {
                let node_val = doc.text_value(x);
                let (l, r): (Value, Value) = if flipped {
                    (other.clone(), Str(node_val))
                } else {
                    (Str(node_val), other.clone())
                };
                compare_scalars(doc, op, &l, &r)
            })
        }
        _ => compare_scalars(doc, op, left, right),
    }
}

fn compare_scalars(doc: &Document, op: crate::ast::CmpOp, l: &Value, r: &Value) -> bool {
    use crate::ast::CmpOp::*;
    match op {
        Eq | Ne => {
            let eq = match (l, r) {
                (Value::Bool(_), _) | (_, Value::Bool(_)) => l.to_bool() == r.to_bool(),
                (Value::Num(_), _) | (_, Value::Num(_)) => l.to_number(doc) == r.to_number(doc),
                _ => l.to_string_value(doc) == r.to_string_value(doc),
            };
            if matches!(op, Eq) {
                eq
            } else {
                !eq
            }
        }
        _ => {
            let (a, b) = (l.to_number(doc), r.to_number(doc));
            match op {
                Lt => a < b,
                Le => a <= b,
                Gt => a > b,
                Ge => a >= b,
                Eq | Ne => unreachable!(),
            }
        }
    }
}

fn cmp_strings(op: crate::ast::CmpOp, a: &str, b: &str) -> bool {
    use crate::ast::CmpOp::*;
    match op {
        Eq => a == b,
        Ne => a != b,
        Lt => str_to_number(a) < str_to_number(b),
        Le => str_to_number(a) <= str_to_number(b),
        Gt => str_to_number(a) > str_to_number(b),
        Ge => str_to_number(a) >= str_to_number(b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CmpOp;
    use xmlsec_xml::parse;

    #[test]
    fn bool_coercions() {
        assert!(Value::Str("x".into()).to_bool());
        assert!(!Value::Str(String::new()).to_bool());
        assert!(Value::Num(1.5).to_bool());
        assert!(!Value::Num(0.0).to_bool());
        assert!(!Value::Num(f64::NAN).to_bool());
        assert!(!Value::NodeSet(vec![]).to_bool());
        assert!(Value::NodeSet(vec![NodeId::new(0, 0)]).to_bool());
    }

    #[test]
    fn number_formatting() {
        assert_eq!(number_to_string(3.0), "3");
        assert_eq!(number_to_string(-2.0), "-2");
        assert_eq!(number_to_string(3.5), "3.5");
        assert_eq!(number_to_string(f64::NAN), "NaN");
        assert_eq!(number_to_string(f64::INFINITY), "Infinity");
    }

    #[test]
    fn string_to_number_rules() {
        assert_eq!(str_to_number(" 42 "), 42.0);
        assert_eq!(str_to_number("3.5"), 3.5);
        assert!(str_to_number("abc").is_nan());
        assert!(str_to_number("").is_nan());
    }

    #[test]
    fn nodeset_to_string_is_first_node() {
        let d = parse("<a><b>one</b><b>two</b></a>").unwrap();
        let bs: Vec<_> = d.child_elements(d.root()).collect();
        let v = Value::NodeSet(bs.clone());
        assert_eq!(v.to_string_value(&d), "one");
    }

    #[test]
    fn existential_nodeset_comparison() {
        let d = parse("<a><b>1</b><b>2</b></a>").unwrap();
        let bs: Vec<_> = d.child_elements(d.root()).collect();
        let set = Value::NodeSet(bs);
        // some b equals "2"
        assert!(compare(&d, CmpOp::Eq, &set, &Value::Str("2".into())));
        // no b equals "3"
        assert!(!compare(&d, CmpOp::Eq, &set, &Value::Str("3".into())));
        // some b != "1" (namely "2")
        assert!(compare(&d, CmpOp::Ne, &set, &Value::Str("1".into())));
        // numeric relational
        assert!(compare(&d, CmpOp::Gt, &set, &Value::Num(1.0)));
        assert!(!compare(&d, CmpOp::Gt, &set, &Value::Num(2.0)));
        // flipped operand order
        assert!(compare(&d, CmpOp::Lt, &Value::Num(1.0), &set));
    }

    #[test]
    fn scalar_comparison_type_rules() {
        let d = parse("<a/>").unwrap();
        // bool dominates
        assert!(compare(&d, CmpOp::Eq, &Value::Bool(true), &Value::Str("x".into())));
        // number next
        assert!(compare(&d, CmpOp::Eq, &Value::Num(1.0), &Value::Str("1".into())));
        // strings otherwise
        assert!(compare(&d, CmpOp::Eq, &Value::Str("a".into()), &Value::Str("a".into())));
        assert!(compare(&d, CmpOp::Ne, &Value::Str("a".into()), &Value::Str("b".into())));
    }

    #[test]
    fn empty_nodeset_never_compares_true() {
        let d = parse("<a/>").unwrap();
        let empty = Value::NodeSet(vec![]);
        assert!(!compare(&d, CmpOp::Eq, &empty, &Value::Str(String::new())));
        assert!(!compare(&d, CmpOp::Ne, &empty, &Value::Str("x".into())));
    }
}
