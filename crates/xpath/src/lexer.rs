//! Lexer for path expressions.

use std::fmt;

/// A lexical token of the path-expression language.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// `/`
    Slash,
    /// `//`
    DoubleSlash,
    /// `.`
    Dot,
    /// `..`
    DotDot,
    /// `@`
    At,
    /// `*`
    Star,
    /// `::`
    ColonColon,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `|` — node-set union.
    Pipe,
    /// `+` — addition.
    OpPlus,
    /// `-` — subtraction / unary minus (only emitted where a name cannot
    /// continue, i.e. as a standalone token).
    OpMinus,
    /// A name (element/attribute/axis/function identifier).
    Name(String),
    /// A quoted string literal.
    Literal(String),
    /// A numeric literal.
    Number(f64),
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Slash => write!(f, "/"),
            Tok::DoubleSlash => write!(f, "//"),
            Tok::Dot => write!(f, "."),
            Tok::DotDot => write!(f, ".."),
            Tok::At => write!(f, "@"),
            Tok::Star => write!(f, "*"),
            Tok::ColonColon => write!(f, "::"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::Comma => write!(f, ","),
            Tok::Eq => write!(f, "="),
            Tok::Ne => write!(f, "!="),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
            Tok::Pipe => write!(f, "|"),
            Tok::OpPlus => write!(f, "+"),
            Tok::OpMinus => write!(f, "-"),
            Tok::Name(n) => write!(f, "{n}"),
            Tok::Literal(s) => write!(f, "{s:?}"),
            Tok::Number(n) => write!(f, "{n}"),
        }
    }
}

/// A lexing/parsing error with a byte offset into the expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XPathError {
    /// Description of the problem.
    pub message: String,
    /// Byte offset of the offending character/token.
    pub offset: usize,
}

impl XPathError {
    /// Builds an error at `offset`.
    pub fn new(message: impl Into<String>, offset: usize) -> Self {
        XPathError { message: message.into(), offset }
    }
}

impl fmt::Display for XPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XPath error at offset {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XPathError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, XPathError>;

fn is_name_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_name_char(c: char) -> bool {
    // '-' and '.' appear in names like `starts-with`; '.' is only
    // consumed inside a name when followed by a name char (handled below).
    c.is_alphanumeric() || c == '_' || c == '-'
}

/// Tokenizes an expression, returning tokens with their byte offsets.
pub fn lex(input: &str) -> Result<Vec<(Tok, usize)>> {
    let mut out = Vec::new();
    let bytes: Vec<(usize, char)> = input.char_indices().collect();
    let mut i = 0usize;
    while i < bytes.len() {
        let (off, c) = bytes[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '/' => {
                if matches!(bytes.get(i + 1), Some(&(_, '/'))) {
                    out.push((Tok::DoubleSlash, off));
                    i += 2;
                } else {
                    out.push((Tok::Slash, off));
                    i += 1;
                }
            }
            '.' => {
                if matches!(bytes.get(i + 1), Some(&(_, '.'))) {
                    out.push((Tok::DotDot, off));
                    i += 2;
                } else if matches!(bytes.get(i + 1), Some(&(_, d)) if d.is_ascii_digit()) {
                    // .5 style number
                    let (n, len) = lex_number(input, off)?;
                    out.push((Tok::Number(n), off));
                    i += len;
                } else {
                    out.push((Tok::Dot, off));
                    i += 1;
                }
            }
            '@' => {
                out.push((Tok::At, off));
                i += 1;
            }
            '*' => {
                out.push((Tok::Star, off));
                i += 1;
            }
            ':' => {
                if matches!(bytes.get(i + 1), Some(&(_, ':'))) {
                    out.push((Tok::ColonColon, off));
                    i += 2;
                } else {
                    return Err(XPathError::new("single ':' is not a token", off));
                }
            }
            '[' => {
                out.push((Tok::LBracket, off));
                i += 1;
            }
            ']' => {
                out.push((Tok::RBracket, off));
                i += 1;
            }
            '(' => {
                out.push((Tok::LParen, off));
                i += 1;
            }
            ')' => {
                out.push((Tok::RParen, off));
                i += 1;
            }
            ',' => {
                out.push((Tok::Comma, off));
                i += 1;
            }
            '|' => {
                out.push((Tok::Pipe, off));
                i += 1;
            }
            '+' => {
                out.push((Tok::OpPlus, off));
                i += 1;
            }
            '-' => {
                out.push((Tok::OpMinus, off));
                i += 1;
            }
            '=' => {
                out.push((Tok::Eq, off));
                i += 1;
            }
            '!' => {
                if matches!(bytes.get(i + 1), Some(&(_, '='))) {
                    out.push((Tok::Ne, off));
                    i += 2;
                } else {
                    return Err(XPathError::new("'!' must be followed by '='", off));
                }
            }
            '<' => {
                if matches!(bytes.get(i + 1), Some(&(_, '='))) {
                    out.push((Tok::Le, off));
                    i += 2;
                } else {
                    out.push((Tok::Lt, off));
                    i += 1;
                }
            }
            '>' => {
                if matches!(bytes.get(i + 1), Some(&(_, '='))) {
                    out.push((Tok::Ge, off));
                    i += 2;
                } else {
                    out.push((Tok::Gt, off));
                    i += 1;
                }
            }
            '"' | '\'' => {
                let quote = c;
                let mut j = i + 1;
                let mut s = String::new();
                loop {
                    match bytes.get(j) {
                        None => return Err(XPathError::new("unterminated string literal", off)),
                        Some(&(_, cj)) if cj == quote => break,
                        Some(&(_, cj)) => {
                            s.push(cj);
                            j += 1;
                        }
                    }
                }
                out.push((Tok::Literal(s), off));
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let (n, len) = lex_number(input, off)?;
                out.push((Tok::Number(n), off));
                i += len;
            }
            c if is_name_start(c) => {
                let mut j = i + 1;
                while j < bytes.len() {
                    let (_, cj) = bytes[j];
                    if is_name_char(cj) {
                        j += 1;
                    } else if cj == '.'
                        && matches!(bytes.get(j + 1), Some(&(_, d)) if is_name_char(d))
                    {
                        // Dots inside names (rare); don't swallow a
                        // trailing path dot.
                        j += 1;
                    } else {
                        break;
                    }
                }
                let name: String = bytes[i..j].iter().map(|&(_, c)| c).collect();
                out.push((Tok::Name(name), off));
                i = j;
            }
            other => return Err(XPathError::new(format!("unexpected character {other:?}"), off)),
        }
    }
    Ok(out)
}

/// Lexes a number starting at byte `off`; returns (value, chars consumed).
fn lex_number(input: &str, off: usize) -> Result<(f64, usize)> {
    let rest = &input[off..];
    let mut len = 0usize;
    let mut seen_dot = false;
    for c in rest.chars() {
        if c.is_ascii_digit() {
            len += 1;
        } else if c == '.' && !seen_dot {
            seen_dot = true;
            len += 1;
        } else {
            break;
        }
    }
    let text = &rest[..len];
    text.parse::<f64>()
        .map(|n| (n, len))
        .map_err(|_| XPathError::new(format!("invalid number {text:?}"), off))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(s: &str) -> Vec<Tok> {
        lex(s).unwrap().into_iter().map(|(t, _)| t).collect()
    }

    #[test]
    fn paper_example_paths() {
        // /laboratory/project
        assert_eq!(
            kinds("/laboratory/project"),
            vec![
                Tok::Slash,
                Tok::Name("laboratory".into()),
                Tok::Slash,
                Tok::Name("project".into())
            ]
        );
        // /laboratory//flname
        assert_eq!(
            kinds("/laboratory//flname"),
            vec![
                Tok::Slash,
                Tok::Name("laboratory".into()),
                Tok::DoubleSlash,
                Tok::Name("flname".into())
            ]
        );
    }

    #[test]
    fn axis_and_function_tokens() {
        assert_eq!(
            kinds("fund/ancestor::project"),
            vec![
                Tok::Name("fund".into()),
                Tok::Slash,
                Tok::Name("ancestor".into()),
                Tok::ColonColon,
                Tok::Name("project".into())
            ]
        );
    }

    #[test]
    fn predicate_with_attribute_condition() {
        let t = kinds(r#"project[./@name = "Access Models"]"#);
        assert!(t.contains(&Tok::LBracket));
        assert!(t.contains(&Tok::Dot));
        assert!(t.contains(&Tok::At));
        assert!(t.contains(&Tok::Literal("Access Models".into())));
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("a != b <= c >= d < e > f"),
            vec![
                Tok::Name("a".into()),
                Tok::Ne,
                Tok::Name("b".into()),
                Tok::Le,
                Tok::Name("c".into()),
                Tok::Ge,
                Tok::Name("d".into()),
                Tok::Lt,
                Tok::Name("e".into()),
                Tok::Gt,
                Tok::Name("f".into())
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("[1]"), vec![Tok::LBracket, Tok::Number(1.0), Tok::RBracket]);
        assert_eq!(kinds("3.25"), vec![Tok::Number(3.25)]);
        assert_eq!(kinds(".5"), vec![Tok::Number(0.5)]);
    }

    #[test]
    fn dots_and_dotdots() {
        assert_eq!(
            kinds("./../x"),
            vec![Tok::Dot, Tok::Slash, Tok::DotDot, Tok::Slash, Tok::Name("x".into())]
        );
    }

    #[test]
    fn hyphenated_function_names() {
        assert_eq!(
            kinds("starts-with(a, 'x')"),
            vec![
                Tok::Name("starts-with".into()),
                Tok::LParen,
                Tok::Name("a".into()),
                Tok::Comma,
                Tok::Literal("x".into()),
                Tok::RParen
            ]
        );
    }

    #[test]
    fn errors() {
        assert!(lex("a ! b").is_err());
        assert!(lex("'unterminated").is_err());
        assert!(lex("a:b").is_err());
        assert!(lex("#").is_err());
    }

    #[test]
    fn both_quote_styles() {
        assert_eq!(kinds("\"x\""), vec![Tok::Literal("x".into())]);
        assert_eq!(kinds("'y'"), vec![Tok::Literal("y".into())]);
    }
}
