//! Recursive-descent parser for path expressions.
//!
//! Handles the full object syntax of the paper's §4: absolute and relative
//! paths, the `.`/`..`/`//`/`@` abbreviations, explicit axes
//! (`fund/ancestor::project`), wildcards, and bracketed conditions built
//! from comparisons, `and`/`or`, functions, literals and numbers.
//!
//! `//` is desugared to a `descendant-or-self::node()` step followed by a
//! `child::` step, matching XPath 1.0.

#[allow(unused_imports)]
use crate::ast::ArithOp;
use crate::ast::*;
use crate::lexer::{lex, Result, Tok, XPathError};

/// Parses a path expression.
pub fn parse_path(input: &str) -> Result<PathExpr> {
    let toks = lex(input)?;
    let mut p = Parser { toks, pos: 0, input_len: input.len(), depth: 0 };
    let path = p.parse_path_expr()?;
    p.expect_eof()?;
    Ok(path)
}

/// Parses a bare condition expression (used by tests and tools).
pub fn parse_expr(input: &str) -> Result<Expr> {
    let toks = lex(input)?;
    let mut p = Parser { toks, pos: 0, input_len: input.len(), depth: 0 };
    let e = p.parse_or()?;
    p.expect_eof()?;
    Ok(e)
}

/// Maximum nesting of condition expressions (parens, predicates, inner
/// paths). A recursive-descent parser consumes stack per nesting level,
/// so a hostile `((((…))))` or `a[a[a[…]]]` could otherwise overflow it;
/// real authorization objects use a handful of levels at most, and 128
/// levels cost well under a megabyte of parser stack.
const MAX_NESTING: u32 = 128;

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    input_len: usize,
    depth: u32,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|(t, _)| t)
    }

    fn offset(&self) -> usize {
        self.toks.get(self.pos).map(|&(_, o)| o).unwrap_or(self.input_len)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn err(&self, msg: impl Into<String>) -> XPathError {
        XPathError::new(msg, self.offset())
    }

    fn expect_eof(&self) -> Result<()> {
        if self.pos == self.toks.len() {
            Ok(())
        } else {
            Err(self.err(format!("unexpected trailing token {}", self.toks[self.pos].0)))
        }
    }

    fn parse_path_expr(&mut self) -> Result<PathExpr> {
        let mut steps = Vec::new();
        let absolute;
        if self.eat(&Tok::DoubleSlash) {
            absolute = true;
            steps.push(dos_step());
        } else if self.eat(&Tok::Slash) {
            absolute = true;
            // A bare "/" selects the root; allow it.
            if self.peek().is_none() {
                return Ok(PathExpr::absolute(steps));
            }
        } else {
            absolute = false;
        }
        steps.push(self.parse_step()?);
        loop {
            if self.eat(&Tok::DoubleSlash) {
                steps.push(dos_step());
                steps.push(self.parse_step()?);
            } else if self.eat(&Tok::Slash) {
                steps.push(self.parse_step()?);
            } else {
                break;
            }
        }
        Ok(PathExpr { absolute, steps })
    }

    fn parse_step(&mut self) -> Result<Step> {
        let mut step = match self.peek() {
            Some(Tok::Dot) => {
                self.bump();
                Step { axis: Axis::SelfAxis, test: NodeTest::AnyNode, predicates: Vec::new() }
            }
            Some(Tok::DotDot) => {
                self.bump();
                Step { axis: Axis::Parent, test: NodeTest::AnyNode, predicates: Vec::new() }
            }
            Some(Tok::At) => {
                self.bump();
                let test = self.parse_node_test(Axis::Attribute)?;
                Step { axis: Axis::Attribute, test, predicates: Vec::new() }
            }
            Some(Tok::Star) => {
                self.bump();
                Step { axis: Axis::Child, test: NodeTest::Wildcard, predicates: Vec::new() }
            }
            Some(Tok::Name(_)) => {
                // Either `axis::test` or a child-axis name test.
                if self.peek2() == Some(&Tok::ColonColon) {
                    let Some(Tok::Name(axis_name)) = self.bump() else { unreachable!() };
                    let axis = Axis::from_keyword(&axis_name)
                        .ok_or_else(|| self.err(format!("unknown axis {axis_name:?}")))?;
                    self.bump(); // '::'
                    let test = self.parse_node_test(axis)?;
                    Step { axis, test, predicates: Vec::new() }
                } else {
                    let test = self.parse_node_test(Axis::Child)?;
                    Step { axis: Axis::Child, test, predicates: Vec::new() }
                }
            }
            other => return Err(self.err(format!("expected a step, found {other:?}"))),
        };
        while self.eat(&Tok::LBracket) {
            let e = self.parse_or()?;
            if !self.eat(&Tok::RBracket) {
                return Err(self.err("expected ']'"));
            }
            step.predicates.push(e);
        }
        Ok(step)
    }

    fn parse_node_test(&mut self, _axis: Axis) -> Result<NodeTest> {
        match self.bump() {
            Some(Tok::Star) => Ok(NodeTest::Wildcard),
            Some(Tok::Name(n)) => {
                if (n == "text" || n == "node") && self.peek() == Some(&Tok::LParen) {
                    self.bump();
                    if !self.eat(&Tok::RParen) {
                        return Err(self.err("expected ')' in node test"));
                    }
                    Ok(if n == "text" { NodeTest::Text } else { NodeTest::AnyNode })
                } else {
                    Ok(NodeTest::Name(n))
                }
            }
            other => Err(self.err(format!("expected a node test, found {other:?}"))),
        }
    }

    // --- condition expressions -----------------------------------------

    fn parse_or(&mut self) -> Result<Expr> {
        // Every recursion cycle (predicates, parens, inner paths) passes
        // through here, so one guard bounds parser stack growth.
        self.depth += 1;
        if self.depth > MAX_NESTING {
            return Err(self.err(format!("expression nested deeper than {MAX_NESTING} levels")));
        }
        let r = self.parse_or_inner();
        self.depth -= 1;
        r
    }

    fn parse_or_inner(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.peek() == Some(&Tok::Name("or".into())) {
            self.bump();
            let right = self.parse_and()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_cmp()?;
        while self.peek() == Some(&Tok::Name("and".into())) {
            self.bump();
            let right = self.parse_cmp()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_cmp(&mut self) -> Result<Expr> {
        let left = self.parse_additive()?;
        let op = match self.peek() {
            Some(Tok::Eq) => CmpOp::Eq,
            Some(Tok::Ne) => CmpOp::Ne,
            Some(Tok::Lt) => CmpOp::Lt,
            Some(Tok::Le) => CmpOp::Le,
            Some(Tok::Gt) => CmpOp::Gt,
            Some(Tok::Ge) => CmpOp::Ge,
            _ => return Ok(left),
        };
        self.bump();
        let right = self.parse_additive()?;
        Ok(Expr::Compare(op, Box::new(left), Box::new(right)))
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Tok::OpPlus) => ArithOp::Add,
                Some(Tok::OpMinus) => ArithOp::Sub,
                _ => return Ok(left),
            };
            self.bump();
            let right = self.parse_multiplicative()?;
            left = Expr::Arith(op, Box::new(left), Box::new(right));
        }
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Name(n)) if n == "div" => ArithOp::Div,
                Some(Tok::Name(n)) if n == "mod" => ArithOp::Mod,
                _ => return Ok(left),
            };
            self.bump();
            let right = self.parse_unary()?;
            left = Expr::Arith(op, Box::new(left), Box::new(right));
        }
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat(&Tok::OpMinus) {
            // Self-recursive (`--x`), so it needs its own stack guard.
            self.depth += 1;
            if self.depth > MAX_NESTING {
                return Err(self.err(format!("expression nested deeper than {MAX_NESTING} levels")));
            }
            let e = self.parse_unary();
            self.depth -= 1;
            return Ok(Expr::Neg(Box::new(e?)));
        }
        self.parse_union()
    }

    fn parse_union(&mut self) -> Result<Expr> {
        let mut left = self.parse_primary()?;
        while self.eat(&Tok::Pipe) {
            let right = self.parse_primary()?;
            left = Expr::Union(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.peek() {
            Some(Tok::Literal(_)) => {
                let Some(Tok::Literal(s)) = self.bump() else { unreachable!() };
                Ok(Expr::Literal(s))
            }
            Some(Tok::Number(_)) => {
                let Some(Tok::Number(n)) = self.bump() else { unreachable!() };
                Ok(Expr::Number(n))
            }
            Some(Tok::LParen) => {
                self.bump();
                let e = self.parse_or()?;
                if !self.eat(&Tok::RParen) {
                    return Err(self.err("expected ')'"));
                }
                Ok(e)
            }
            Some(Tok::Name(n)) => {
                // Function call? (but `text(`/`node(` start a path step,
                // and `axis::` starts a path.)
                let is_call = self.peek2() == Some(&Tok::LParen)
                    && n != "text"
                    && n != "node"
                    && Func::from_name(n).is_some();
                if is_call {
                    let Some(Tok::Name(fname)) = self.bump() else { unreachable!() };
                    let func = Func::from_name(&fname).expect("checked above");
                    self.bump(); // '('
                    let mut args = Vec::new();
                    if self.peek() != Some(&Tok::RParen) {
                        args.push(self.parse_or()?);
                        while self.eat(&Tok::Comma) {
                            args.push(self.parse_or()?);
                        }
                    }
                    if !self.eat(&Tok::RParen) {
                        return Err(self.err("expected ')' after function arguments"));
                    }
                    Ok(Expr::Call(func, args))
                } else {
                    Ok(Expr::Path(self.parse_path_expr()?))
                }
            }
            Some(Tok::Dot | Tok::DotDot | Tok::At | Tok::Slash | Tok::DoubleSlash | Tok::Star) => {
                Ok(Expr::Path(self.parse_path_expr()?))
            }
            other => Err(self.err(format!("expected an expression, found {other:?}"))),
        }
    }
}

/// The `descendant-or-self::node()` step `//` desugars to.
fn dos_step() -> Step {
    Step { axis: Axis::DescendantOrSelf, test: NodeTest::AnyNode, predicates: Vec::new() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absolute_child_path() {
        let p = parse_path("/laboratory/project").unwrap();
        assert!(p.absolute);
        assert_eq!(p.steps.len(), 2);
        assert_eq!(p.steps[0], Step::child("laboratory"));
        assert_eq!(p.steps[1], Step::child("project"));
    }

    #[test]
    fn relative_path() {
        let p = parse_path("project/manager").unwrap();
        assert!(!p.absolute);
        assert_eq!(p.steps.len(), 2);
    }

    #[test]
    fn double_slash_desugars() {
        let p = parse_path("/laboratory//flname").unwrap();
        assert_eq!(p.steps.len(), 3);
        assert_eq!(p.steps[1].axis, Axis::DescendantOrSelf);
        assert_eq!(p.steps[1].test, NodeTest::AnyNode);
        assert_eq!(p.steps[2], Step::child("flname"));
    }

    #[test]
    fn leading_double_slash() {
        let p = parse_path("//paper").unwrap();
        assert!(p.absolute);
        assert_eq!(p.steps.len(), 2);
        assert_eq!(p.steps[0].axis, Axis::DescendantOrSelf);
    }

    #[test]
    fn explicit_axis() {
        let p = parse_path("fund/ancestor::project").unwrap();
        assert_eq!(p.steps[1].axis, Axis::Ancestor);
        assert_eq!(p.steps[1].test, NodeTest::Name("project".into()));
    }

    #[test]
    fn attribute_step() {
        let p = parse_path("/laboratory/project/@name").unwrap();
        assert_eq!(p.steps[2].axis, Axis::Attribute);
        assert_eq!(p.steps[2].test, NodeTest::Name("name".into()));
    }

    #[test]
    fn positional_predicate() {
        let p = parse_path("/laboratory/project[1]").unwrap();
        assert_eq!(p.steps[1].predicates, vec![Expr::Number(1.0)]);
    }

    #[test]
    fn paper_condition_example() {
        // /laboratory/project[./@name = "Access Models"]/paper[./@type = "internal"]
        let p = parse_path(
            r#"/laboratory/project[./@name = "Access Models"]/paper[./@type = "internal"]"#,
        )
        .unwrap();
        assert_eq!(p.steps.len(), 3);
        match &p.steps[1].predicates[0] {
            Expr::Compare(CmpOp::Eq, l, r) => {
                assert!(matches!(**l, Expr::Path(_)));
                assert_eq!(**r, Expr::Literal("Access Models".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn and_or_conditions() {
        let p = parse_path(r#"a[@x = "1" and @y = "2" or @z = "3"]"#).unwrap();
        // 'and' binds tighter than 'or'
        match &p.steps[0].predicates[0] {
            Expr::Or(l, _) => assert!(matches!(**l, Expr::And(_, _))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn function_calls() {
        let p = parse_path("a[position() = last()]").unwrap();
        match &p.steps[0].predicates[0] {
            Expr::Compare(CmpOp::Eq, l, r) => {
                assert_eq!(**l, Expr::Call(Func::Position, vec![]));
                assert_eq!(**r, Expr::Call(Func::Last, vec![]));
            }
            other => panic!("unexpected {other:?}"),
        }
        let p2 = parse_path("a[count(paper) > 2]").unwrap();
        assert!(matches!(&p2.steps[0].predicates[0], Expr::Compare(CmpOp::Gt, _, _)));
    }

    #[test]
    fn text_node_test_not_a_function() {
        let p = parse_path("a[text() = 'x']").unwrap();
        match &p.steps[0].predicates[0] {
            Expr::Compare(_, l, _) => match &**l {
                Expr::Path(pe) => assert_eq!(pe.steps[0].test, NodeTest::Text),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn wildcard_and_dotdot() {
        let p = parse_path("*/../paper").unwrap();
        assert_eq!(p.steps[0].test, NodeTest::Wildcard);
        assert_eq!(p.steps[1].axis, Axis::Parent);
    }

    #[test]
    fn nested_predicates() {
        let p = parse_path("project[paper[@category = 'private']]").unwrap();
        match &p.steps[0].predicates[0] {
            Expr::Path(inner) => {
                assert_eq!(inner.steps[0].predicates.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bare_root_path() {
        let p = parse_path("/").unwrap();
        assert!(p.absolute);
        assert!(p.steps.is_empty());
    }

    #[test]
    fn errors() {
        assert!(parse_path("").is_err());
        assert!(parse_path("/lab[").is_err());
        assert!(parse_path("/lab[@x=]").is_err());
        assert!(parse_path("a/following::b").is_err());
        assert!(parse_path("a]").is_err());
    }

    #[test]
    fn double_slash_in_middle_with_predicate() {
        let p = parse_path(r#"/laboratory//paper[./@category = "private"]"#).unwrap();
        assert_eq!(p.steps.len(), 3);
        assert_eq!(p.steps[2].predicates.len(), 1);
    }

    #[test]
    fn not_function() {
        let p = parse_path("a[not(@x = '1')]").unwrap();
        assert!(
            matches!(&p.steps[0].predicates[0], Expr::Call(Func::Not, args) if args.len() == 1)
        );
    }

    #[test]
    fn deep_paren_nesting_is_an_error_not_a_crash() {
        let mut s = String::from("a[");
        for _ in 0..10_000 {
            s.push('(');
        }
        s.push('1');
        for _ in 0..10_000 {
            s.push(')');
        }
        s.push(']');
        let e = parse_path(&s).unwrap_err();
        assert!(e.message.contains("nested"), "{}", e.message);
    }

    #[test]
    fn deep_predicate_nesting_is_an_error_not_a_crash() {
        let mut s = String::new();
        for _ in 0..10_000 {
            s.push_str("a[");
        }
        s.push('1');
        for _ in 0..10_000 {
            s.push(']');
        }
        assert!(parse_path(&s).is_err());
    }

    #[test]
    fn deep_minus_chain_is_an_error_not_a_crash() {
        let mut s = String::from("a[");
        for _ in 0..10_000 {
            s.push('-');
        }
        s.push_str("1]");
        assert!(parse_path(&s).is_err());
    }

    #[test]
    fn reasonable_nesting_still_parses() {
        assert!(parse_path("a[((((@x = '1'))))]").is_ok());
        assert!(parse_path("a[b[c[d[e[1]]]]]").is_ok());
    }
}
