//! Resource limits for path-expression evaluation.
//!
//! Authorization subjects supply path expressions (the paper's §4 objects)
//! and, at the server, requesters supply query paths — both are untrusted
//! input once the server faces the open network. A pathological expression
//! such as `//*//*//*//*` multiplies subtree scans and can pin a worker on
//! one request. [`EvalLimits`] bounds the evaluation: a budget of nodes the
//! evaluator may examine, and a cap on how deeply predicate evaluation may
//! recurse into inner paths. Every violation is a typed, recoverable
//! [`EvalError`] — never a panic or runaway loop.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use xmlsec_xml::cancel::{CancelReason, CancelToken};

/// Caps applied to one top-level path evaluation (inner predicate paths
/// share the same budget).
///
/// Thread through [`crate::select_limited`] / [`crate::eval_path_limited`];
/// the unlimited [`crate::select`] / [`crate::eval_path`] remain for
/// trusted, program-generated expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalLimits {
    /// Maximum nodes the evaluator may examine across all steps,
    /// predicates, and inner paths of one evaluation.
    ///
    /// Note: the core engine's `label_document_limited` /
    /// `compute_view_limited` entry points treat this as one
    /// **request-wide [`SharedBudget`] pool** shared by every
    /// authorization-object evaluation of the run — the effective budget
    /// is the total across all N objects, not per object. Callers that
    /// previously sized this for the single most expensive object should
    /// size it for the request's total work.
    pub max_node_visits: u64,
    /// Maximum nesting of path evaluations (a predicate containing a path
    /// containing a predicate ... counts one level per inner path).
    pub max_eval_depth: u32,
}

impl EvalLimits {
    /// Default caps: 10 M node visits, 64 levels of inner-path nesting.
    /// Far above anything the example corpus or benchmarks need, far
    /// below what a hostile quadratic expression wants.
    pub const fn default_limits() -> EvalLimits {
        EvalLimits { max_node_visits: 10_000_000, max_eval_depth: 64 }
    }

    /// No caps (`u64::MAX` / `u32::MAX`). For trusted expressions only.
    pub const fn unlimited() -> EvalLimits {
        EvalLimits { max_node_visits: u64::MAX, max_eval_depth: u32::MAX }
    }
}

impl Default for EvalLimits {
    fn default() -> EvalLimits {
        EvalLimits::default_limits()
    }
}

/// A node-visit budget shared by several evaluations — possibly running
/// on different threads.
///
/// [`EvalLimits::max_node_visits`] caps *one* evaluation; when a request
/// evaluates many path expressions (one per authorization object) the
/// engine wants a single request-wide pool instead, drawn down exactly
/// (no chunked pre-allocation) so whether the budget trips depends only
/// on the **total** work of the request, never on scheduling order. That
/// makes a parallel evaluation trip on exactly the same inputs as a
/// sequential one — the property the differential tests pin down.
#[derive(Debug)]
pub struct SharedBudget {
    remaining: AtomicU64,
    limit: u64,
    /// Request-scoped cancellation: every `take` doubles as a
    /// cooperative checkpoint, so a cancelled request unwinds from the
    /// evaluator's hot loop without any extra plumbing.
    cancel: Option<CancelToken>,
}

impl SharedBudget {
    /// A pool of `limit` node visits.
    pub fn new(limit: u64) -> SharedBudget {
        SharedBudget { remaining: AtomicU64::new(limit), limit, cancel: None }
    }

    /// A pool that also polls `cancel` on every draw: the budget
    /// checkpoints the evaluator already hits become the cancellation
    /// checkpoints too.
    pub fn with_cancel(limit: u64, cancel: CancelToken) -> SharedBudget {
        SharedBudget { remaining: AtomicU64::new(limit), limit, cancel: Some(cancel) }
    }

    /// Atomically takes `n` visits from the pool; errors once spent or
    /// once the attached cancellation token trips.
    pub fn take(&self, n: u64) -> Result<(), EvalError> {
        if let Some(t) = &self.cancel {
            t.poll().map_err(|c| EvalError::Cancelled(c.reason))?;
        }
        self.remaining
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| cur.checked_sub(n))
            .map(|_| ())
            .map_err(|_| EvalError::NodeBudget { limit: self.limit })
    }

    /// The configured pool size.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Visits not yet spent.
    pub fn remaining(&self) -> u64 {
        self.remaining.load(Ordering::Relaxed)
    }
}

/// A recoverable budget violation during evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalError {
    /// The evaluation examined more than `limit` nodes.
    NodeBudget {
        /// The configured [`EvalLimits::max_node_visits`].
        limit: u64,
    },
    /// Inner-path nesting exceeded `limit` levels.
    Depth {
        /// The configured [`EvalLimits::max_eval_depth`].
        limit: u32,
    },
    /// The request's cancellation token tripped mid-evaluation (see
    /// [`xmlsec_xml::cancel`]). Not a resource-limit violation: the
    /// request was abandoned, not over budget.
    Cancelled(CancelReason),
}

impl EvalError {
    /// Stable snake_case name, used as the `kind` label on the shared
    /// `xmlsec_limits_rejected_total` counter.
    pub fn kind(&self) -> &'static str {
        match self {
            EvalError::NodeBudget { .. } => "node_visits",
            EvalError::Depth { .. } => "eval_depth",
            EvalError::Cancelled(_) => "cancelled",
        }
    }

    /// `true` for cancellations — abandoned requests, as opposed to
    /// inputs that genuinely exceeded a configured cap.
    pub fn is_cancelled(&self) -> bool {
        matches!(self, EvalError::Cancelled(_))
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::NodeBudget { limit } => {
                write!(f, "path evaluation exceeded the node-visit budget ({limit})")
            }
            EvalError::Depth { limit } => {
                write!(f, "path evaluation nested deeper than {limit} levels")
            }
            EvalError::Cancelled(r) => write!(f, "path evaluation cancelled: {r}"),
        }
    }
}

impl std::error::Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_display_are_stable() {
        let b = EvalError::NodeBudget { limit: 7 };
        assert_eq!(b.kind(), "node_visits");
        assert!(b.to_string().contains('7'));
        let d = EvalError::Depth { limit: 3 };
        assert_eq!(d.kind(), "eval_depth");
        assert!(d.to_string().contains('3'));
    }

    #[test]
    fn defaults_and_unlimited() {
        let d = EvalLimits::default();
        assert!(d.max_node_visits >= 1_000_000);
        assert!(d.max_eval_depth >= 16);
        assert_eq!(EvalLimits::unlimited().max_node_visits, u64::MAX);
    }

    #[test]
    fn shared_budget_polls_its_cancel_token() {
        let t = CancelToken::never();
        let pool = SharedBudget::with_cancel(1000, t.clone());
        assert!(pool.take(10).is_ok());
        t.cancel();
        let e = pool.take(1).unwrap_err();
        assert_eq!(e, EvalError::Cancelled(CancelReason::Explicit));
        assert!(e.is_cancelled());
        assert_eq!(e.kind(), "cancelled");
        // A plain pool has no token to consult.
        assert!(!EvalError::NodeBudget { limit: 1 }.is_cancelled());
        assert!(SharedBudget::new(5).take(5).is_ok());
    }

    #[test]
    fn shared_budget_draws_exactly() {
        let pool = SharedBudget::new(10);
        assert!(pool.take(4).is_ok());
        assert!(pool.take(6).is_ok());
        assert_eq!(pool.remaining(), 0);
        let e = pool.take(1).unwrap_err();
        assert_eq!(e, EvalError::NodeBudget { limit: 10 });
        assert_eq!(pool.limit(), 10);
    }
}
