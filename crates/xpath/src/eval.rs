//! Path-expression evaluation over document trees.
//!
//! The evaluator is the workhorse behind authorization objects: the
//! security processor evaluates each authorization's path expression once
//! per document into a node-set, then labels nodes by membership.
//!
//! Node-sets are kept sorted by [`NodeId`]; for parser-built documents
//! arena order *is* document order, so this yields document-order
//! semantics for first-node string conversion and stable output.

use crate::ast::{ArithOp, Axis, Expr, Func, NodeTest, PathExpr, Step};
use crate::limits::{EvalError, EvalLimits, SharedBudget};
use crate::value::{compare, Value};
use std::sync::{Arc, OnceLock};
use xmlsec_telemetry as telemetry;
use xmlsec_xml::{Document, NodeData, NodeId};

struct EvalMetrics {
    evaluations: Arc<telemetry::Counter>,
    node_visits: Arc<telemetry::Counter>,
}

fn eval_metrics() -> &'static EvalMetrics {
    static METRICS: OnceLock<EvalMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = telemetry::global();
        EvalMetrics {
            evaluations: reg.counter(
                "xmlsec_xpath_evaluations_total",
                "Path-expression evaluations (including inner predicate paths).",
                &[],
            ),
            node_visits: reg.counter(
                "xmlsec_xpath_node_visits_total",
                "Context nodes expanded across all evaluation steps.",
                &[],
            ),
        }
    })
}

/// Work accounting for one top-level evaluation, threaded through every
/// helper. `remaining` counts down toward the node-visit budget; `visits`
/// counts up for the telemetry flush; `depth` tracks inner-path nesting.
/// When `shared` is set, visits are drawn from that cross-evaluation pool
/// instead of the local countdown (see [`SharedBudget`]).
struct Budget<'p> {
    remaining: u64,
    visits: u64,
    depth: u32,
    limits: EvalLimits,
    shared: Option<&'p SharedBudget>,
}

impl<'p> Budget<'p> {
    fn new(limits: EvalLimits) -> Budget<'static> {
        Budget { remaining: limits.max_node_visits, visits: 0, depth: 0, limits, shared: None }
    }

    fn with_pool(limits: EvalLimits, pool: &'p SharedBudget) -> Budget<'p> {
        Budget { remaining: 0, visits: 0, depth: 0, limits, shared: Some(pool) }
    }

    /// Records `n` nodes examined; errors once the budget is spent.
    fn charge(&mut self, n: u64) -> Result<(), EvalError> {
        self.visits = self.visits.saturating_add(n);
        if let Some(pool) = self.shared {
            return pool.take(n);
        }
        if n > self.remaining {
            self.remaining = 0;
            return Err(EvalError::NodeBudget { limit: self.limits.max_node_visits });
        }
        self.remaining -= n;
        Ok(())
    }

    fn enter(&mut self) -> Result<(), EvalError> {
        if self.depth >= self.limits.max_eval_depth {
            return Err(EvalError::Depth { limit: self.limits.max_eval_depth });
        }
        self.depth += 1;
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }
}

/// A context node: either a real node or the *virtual document root*
/// (the conceptual parent of the document element, which absolute paths
/// start from).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CtxNode {
    /// The virtual root node `/`.
    Root,
    /// A node in the arena.
    Node(NodeId),
}

/// Evaluates `path` against a whole document: absolute paths start at the
/// virtual root; relative paths start at the document element (the
/// paper's "predefined starting point in the document").
///
/// Runs unbudgeted ([`EvalLimits::unlimited`]); use [`select_limited`]
/// for untrusted expressions or documents.
pub fn select(doc: &Document, path: &PathExpr) -> Vec<NodeId> {
    select_limited(doc, path, &EvalLimits::unlimited())
        .expect("unlimited evaluation cannot exhaust a budget")
}

/// Like [`select`], but enforces `limits` and returns a typed
/// [`EvalError`] when the evaluation exceeds them.
pub fn select_limited(
    doc: &Document,
    path: &PathExpr,
    limits: &EvalLimits,
) -> Result<Vec<NodeId>, EvalError> {
    let start = if path.absolute { CtxNode::Root } else { CtxNode::Node(doc.root()) };
    let mut budget = Budget::new(*limits);
    finish(eval_from(doc, start, path, &mut budget), &budget)
}

/// Evaluates `path` from an explicit context node (predicates use this
/// for inner relative paths). Unbudgeted; see [`eval_path_limited`].
pub fn eval_path(doc: &Document, context: NodeId, path: &PathExpr) -> Vec<NodeId> {
    eval_path_limited(doc, context, path, &EvalLimits::unlimited())
        .expect("unlimited evaluation cannot exhaust a budget")
}

/// Like [`eval_path`], but enforces `limits`.
pub fn eval_path_limited(
    doc: &Document,
    context: NodeId,
    path: &PathExpr,
    limits: &EvalLimits,
) -> Result<Vec<NodeId>, EvalError> {
    let start = if path.absolute { CtxNode::Root } else { CtxNode::Node(context) };
    let mut budget = Budget::new(*limits);
    finish(eval_from(doc, start, path, &mut budget), &budget)
}

/// Like [`eval_path_limited`], but draws node visits from `pool` — a
/// [`SharedBudget`] common to several evaluations (typically one per
/// authorization object of a request, possibly running on different
/// worker threads). `limits` still caps inner-path nesting; its
/// `max_node_visits` is ignored in favor of the pool.
pub fn eval_path_shared(
    doc: &Document,
    context: NodeId,
    path: &PathExpr,
    limits: &EvalLimits,
    pool: &SharedBudget,
) -> Result<Vec<NodeId>, EvalError> {
    let start = if path.absolute { CtxNode::Root } else { CtxNode::Node(context) };
    let mut budget = Budget::with_pool(*limits, pool);
    finish(eval_from(doc, start, path, &mut budget), &budget)
}

/// Like [`select_limited`], but draws node visits from `pool` (and, when
/// the pool carries a [`CancelToken`](xmlsec_xml::cancel::CancelToken),
/// polls it at every budget checkpoint). The server evaluates requester
/// queries through this so an abandoned request stops mid-walk.
pub fn select_shared(
    doc: &Document,
    path: &PathExpr,
    limits: &EvalLimits,
    pool: &SharedBudget,
) -> Result<Vec<NodeId>, EvalError> {
    let start = if path.absolute { CtxNode::Root } else { CtxNode::Node(doc.root()) };
    let mut budget = Budget::with_pool(*limits, pool);
    finish(eval_from(doc, start, path, &mut budget), &budget)
}

/// Flushes telemetry for one top-level evaluation and reports budget
/// violations on the shared limits counter (cancellations are abandoned
/// requests, not limit violations, and are counted elsewhere).
fn finish(r: Result<Vec<NodeId>, EvalError>, budget: &Budget) -> Result<Vec<NodeId>, EvalError> {
    eval_metrics().node_visits.add(budget.visits);
    if let Err(e) = &r {
        if !e.is_cancelled() {
            xmlsec_xml::limit_rejected(e.kind());
        }
    }
    r
}

fn eval_from(
    doc: &Document,
    start: CtxNode,
    path: &PathExpr,
    b: &mut Budget,
) -> Result<Vec<NodeId>, EvalError> {
    b.enter()?;
    eval_metrics().evaluations.inc();
    let r = eval_steps(doc, start, path, b);
    b.leave();
    r
}

fn eval_steps(
    doc: &Document,
    start: CtxNode,
    path: &PathExpr,
    b: &mut Budget,
) -> Result<Vec<NodeId>, EvalError> {
    let mut current: Vec<CtxNode> = vec![start];
    for step in &path.steps {
        let mut next: Vec<CtxNode> = Vec::new();
        b.charge(current.len() as u64)?;
        for &ctx in &current {
            let candidates = axis_nodes(doc, ctx, step, b)?;
            let selected = apply_predicates(doc, candidates, &step.predicates, b)?;
            next.extend(selected);
        }
        next.sort_unstable();
        next.dedup();
        current = next;
        if current.is_empty() {
            break;
        }
    }
    let mut result: Vec<NodeId> = current
        .into_iter()
        .filter_map(|c| match c {
            CtxNode::Node(n) => Some(n),
            CtxNode::Root => None,
        })
        .collect();
    // Arena order equals document order for parsed documents, but not
    // necessarily after mutation; the final node-set is re-sorted so
    // first-node string conversion and consumers always see document
    // order.
    sort_document_order(doc, &mut result);
    Ok(result)
}

/// Sorts `nodes` into document order.
///
/// Equivalent to `nodes.sort_by(|a, b| doc.document_order(a, b))` but
/// amortized: sibling positions are resolved once per parent (one scan
/// filling a cache for all of that parent's attributes and children)
/// instead of per comparison, and each node's root path is computed once.
pub fn sort_document_order(doc: &Document, nodes: &mut [NodeId]) {
    if nodes.len() < 2 {
        return;
    }
    // Fast path: for parser-built (and order-preservingly mutated)
    // documents, arena ids are document order.
    if doc.ids_preordered() {
        nodes.sort_unstable();
        return;
    }
    use std::collections::HashMap;
    let mut sibling_pos: HashMap<NodeId, (u8, u32)> = HashMap::new();
    let fill_parent = |p: NodeId, cache: &mut HashMap<NodeId, (u8, u32)>| {
        for (i, &a) in doc.attributes(p).iter().enumerate() {
            cache.insert(a, (0, i as u32));
        }
        for (i, &c) in doc.children(p).iter().enumerate() {
            cache.insert(c, (1, i as u32));
        }
    };
    let mut path_of = |n: NodeId| -> Vec<(u8, u32)> {
        let mut path = Vec::new();
        let mut cur = n;
        while let Some(p) = doc.parent(cur) {
            if !sibling_pos.contains_key(&cur) {
                fill_parent(p, &mut sibling_pos);
            }
            path.push(*sibling_pos.get(&cur).expect("parent scan covered the child"));
            cur = p;
        }
        path.reverse();
        path
    };
    let mut keyed: Vec<(Vec<(u8, u32)>, NodeId)> = nodes.iter().map(|&n| (path_of(n), n)).collect();
    // A strict path prefix is an ancestor and sorts first (Vec's
    // lexicographic Ord already does this).
    keyed.sort();
    for (slot, (_, n)) in nodes.iter_mut().zip(keyed) {
        *slot = n;
    }
}

/// Nodes along `step.axis` from `ctx` that pass `step.test`, in axis order
/// (document order for forward axes, nearest-first for reverse axes).
///
/// Charges the budget one visit per node *examined* (not per match), so
/// the budget bounds actual work even for selective tests.
fn axis_nodes(
    doc: &Document,
    ctx: CtxNode,
    step: &Step,
    b: &mut Budget,
) -> Result<Vec<CtxNode>, EvalError> {
    let mut out = Vec::new();
    match step.axis {
        Axis::Child => match ctx {
            CtxNode::Root => {
                b.charge(1)?;
                push_if(doc, doc.root(), &step.test, &mut out);
            }
            CtxNode::Node(n) => {
                b.charge(doc.children(n).len() as u64)?;
                for &c in doc.children(n) {
                    push_if(doc, c, &step.test, &mut out);
                }
            }
        },
        Axis::Descendant => {
            descend(doc, ctx, &step.test, false, &mut out, b)?;
        }
        Axis::DescendantOrSelf => {
            descend(doc, ctx, &step.test, true, &mut out, b)?;
        }
        Axis::Parent => match ctx {
            CtxNode::Root => {}
            CtxNode::Node(n) => {
                b.charge(1)?;
                match doc.parent(n) {
                    Some(p) => push_if(doc, p, &step.test, &mut out),
                    None => {
                        // Parent of the document element is the virtual root,
                        // which only node() matches.
                        if matches!(step.test, NodeTest::AnyNode) {
                            out.push(CtxNode::Root);
                        }
                    }
                }
            }
        },
        Axis::Ancestor | Axis::AncestorOrSelf => {
            if step.axis == Axis::AncestorOrSelf {
                if let CtxNode::Node(n) = ctx {
                    b.charge(1)?;
                    push_if(doc, n, &step.test, &mut out);
                }
            }
            if let CtxNode::Node(n) = ctx {
                for a in doc.ancestors(n) {
                    b.charge(1)?;
                    push_if(doc, a, &step.test, &mut out);
                }
                if matches!(step.test, NodeTest::AnyNode) {
                    out.push(CtxNode::Root);
                }
            }
        }
        Axis::SelfAxis => match ctx {
            CtxNode::Root => {
                if matches!(step.test, NodeTest::AnyNode) {
                    out.push(CtxNode::Root);
                }
            }
            CtxNode::Node(n) => {
                b.charge(1)?;
                push_if(doc, n, &step.test, &mut out);
            }
        },
        Axis::FollowingSibling | Axis::PrecedingSibling => {
            if let CtxNode::Node(n) = ctx {
                if let Some(p) = doc.parent(n) {
                    if !doc.is_attribute(n) {
                        let siblings = doc.children(p);
                        b.charge(siblings.len() as u64)?;
                        let pos = siblings.iter().position(|&c| c == n);
                        if let Some(pos) = pos {
                            if step.axis == Axis::FollowingSibling {
                                for &c in &siblings[pos + 1..] {
                                    push_if(doc, c, &step.test, &mut out);
                                }
                            } else {
                                // Reverse axis: nearest sibling first.
                                for &c in siblings[..pos].iter().rev() {
                                    push_if(doc, c, &step.test, &mut out);
                                }
                            }
                        }
                    }
                }
            }
        }
        Axis::Attribute => {
            if let CtxNode::Node(n) = ctx {
                b.charge(doc.attributes(n).len() as u64)?;
                for &a in doc.attributes(n) {
                    let matches = match (&step.test, &doc.node(a).data) {
                        (NodeTest::Name(want), NodeData::Attr { name, .. }) => name == want,
                        (NodeTest::Wildcard | NodeTest::AnyNode, NodeData::Attr { .. }) => true,
                        _ => false,
                    };
                    if matches {
                        out.push(CtxNode::Node(a));
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Collects descendants (document order), optionally including self.
/// Attributes are not on the descendant axis (XPath data model).
fn descend(
    doc: &Document,
    ctx: CtxNode,
    test: &NodeTest,
    include_self: bool,
    out: &mut Vec<CtxNode>,
    b: &mut Budget,
) -> Result<(), EvalError> {
    match ctx {
        CtxNode::Root => {
            if include_self && matches!(test, NodeTest::AnyNode) {
                out.push(CtxNode::Root);
            }
            descend(doc, CtxNode::Node(doc.root()), test, true, out, b)?;
        }
        CtxNode::Node(n) => {
            b.charge(1)?;
            if include_self {
                push_if(doc, n, test, out);
            }
            for &c in doc.children(n) {
                descend(doc, CtxNode::Node(c), test, true, out, b)?;
            }
        }
    }
    Ok(())
}

/// Applies the element/text name test to a non-attribute-axis candidate.
fn push_if(doc: &Document, n: NodeId, test: &NodeTest, out: &mut Vec<CtxNode>) {
    let ok = match (test, &doc.node(n).data) {
        (NodeTest::Name(want), NodeData::Element { name, .. }) => name == want,
        (NodeTest::Name(want), NodeData::Attr { name, .. }) => name == want,
        (NodeTest::Wildcard, NodeData::Element { .. }) => true,
        (NodeTest::Text, NodeData::Text(_)) => true,
        (NodeTest::AnyNode, _) => true,
        _ => false,
    };
    if ok {
        out.push(CtxNode::Node(n));
    }
}

/// Filters `candidates` through each predicate in turn, re-numbering
/// positions between predicates (XPath 1.0 semantics).
fn apply_predicates(
    doc: &Document,
    mut candidates: Vec<CtxNode>,
    preds: &[Expr],
    b: &mut Budget,
) -> Result<Vec<CtxNode>, EvalError> {
    for pred in preds {
        let size = candidates.len();
        let mut kept = Vec::with_capacity(size);
        for (i, &c) in candidates.iter().enumerate() {
            let CtxNode::Node(n) = c else { continue };
            let ctx = EvalCtx { doc, node: n, position: i + 1, size };
            let v = eval_expr(&ctx, pred, b)?;
            let keep = match v {
                // A bare number predicate selects by position.
                Value::Num(want) => (i + 1) as f64 == want,
                other => other.to_bool(),
            };
            if keep {
                kept.push(c);
            }
        }
        candidates = kept;
    }
    Ok(candidates)
}

/// Evaluation context for condition expressions.
struct EvalCtx<'d> {
    doc: &'d Document,
    node: NodeId,
    position: usize,
    size: usize,
}

fn eval_expr(ctx: &EvalCtx<'_>, e: &Expr, bu: &mut Budget) -> Result<Value, EvalError> {
    Ok(match e {
        Expr::Or(a, b) => {
            Value::Bool(eval_expr(ctx, a, bu)?.to_bool() || eval_expr(ctx, b, bu)?.to_bool())
        }
        Expr::And(a, b) => {
            Value::Bool(eval_expr(ctx, a, bu)?.to_bool() && eval_expr(ctx, b, bu)?.to_bool())
        }
        Expr::Compare(op, a, b) => {
            let l = eval_expr(ctx, a, bu)?;
            let r = eval_expr(ctx, b, bu)?;
            Value::Bool(compare(ctx.doc, *op, &l, &r))
        }
        Expr::Path(p) => {
            let start = if p.absolute { CtxNode::Root } else { CtxNode::Node(ctx.node) };
            Value::NodeSet(eval_from(ctx.doc, start, p, bu)?)
        }
        Expr::Literal(s) => Value::Str(s.clone()),
        Expr::Number(n) => Value::Num(*n),
        Expr::Call(f, args) => eval_call(ctx, *f, args, bu)?,
        Expr::Union(a, b) => {
            let mut out = match eval_expr(ctx, a, bu)? {
                Value::NodeSet(ns) => ns,
                _ => Vec::new(),
            };
            if let Value::NodeSet(more) = eval_expr(ctx, b, bu)? {
                out.extend(more);
            }
            out.sort_unstable();
            out.dedup();
            Value::NodeSet(out)
        }
        Expr::Arith(op, a, b) => {
            let l = eval_expr(ctx, a, bu)?.to_number(ctx.doc);
            let r = eval_expr(ctx, b, bu)?.to_number(ctx.doc);
            Value::Num(match op {
                ArithOp::Add => l + r,
                ArithOp::Sub => l - r,
                ArithOp::Div => l / r,
                ArithOp::Mod => l % r,
            })
        }
        Expr::Neg(a) => Value::Num(-eval_expr(ctx, a, bu)?.to_number(ctx.doc)),
    })
}

fn eval_call(
    ctx: &EvalCtx<'_>,
    f: Func,
    args: &[Expr],
    bu: &mut Budget,
) -> Result<Value, EvalError> {
    Ok(match f {
        Func::Position => Value::Num(ctx.position as f64),
        Func::Last => Value::Num(ctx.size as f64),
        Func::Count => match args.first() {
            Some(a) => match eval_expr(ctx, a, bu)? {
                Value::NodeSet(ns) => Value::Num(ns.len() as f64),
                _ => Value::Num(f64::NAN),
            },
            None => Value::Num(f64::NAN),
        },
        Func::Contains => {
            let a = arg_string(ctx, args, 0, bu)?;
            let b = arg_string(ctx, args, 1, bu)?;
            Value::Bool(a.contains(&b))
        }
        Func::StartsWith => {
            let a = arg_string(ctx, args, 0, bu)?;
            let b = arg_string(ctx, args, 1, bu)?;
            Value::Bool(a.starts_with(&b))
        }
        Func::Name => Value::Str(ctx.doc.node_name(ctx.node).unwrap_or_default().to_string()),
        Func::StringFn => {
            if args.is_empty() {
                Value::Str(ctx.doc.text_value(ctx.node))
            } else {
                Value::Str(eval_expr(ctx, &args[0], bu)?.to_string_value(ctx.doc))
            }
        }
        Func::NumberFn => {
            if args.is_empty() {
                Value::Num(crate::value::str_to_number(&ctx.doc.text_value(ctx.node)))
            } else {
                Value::Num(eval_expr(ctx, &args[0], bu)?.to_number(ctx.doc))
            }
        }
        Func::Not => {
            let v = match args.first() {
                Some(a) => eval_expr(ctx, a, bu)?.to_bool(),
                None => false,
            };
            Value::Bool(!v)
        }
        Func::True => Value::Bool(true),
        Func::False => Value::Bool(false),
        Func::NormalizeSpace => {
            let s = if args.is_empty() {
                ctx.doc.text_value(ctx.node)
            } else {
                eval_expr(ctx, &args[0], bu)?.to_string_value(ctx.doc)
            };
            Value::Str(s.split_whitespace().collect::<Vec<_>>().join(" "))
        }
        Func::Concat => {
            let mut out = String::new();
            for a in args {
                out.push_str(&eval_expr(ctx, a, bu)?.to_string_value(ctx.doc));
            }
            Value::Str(out)
        }
        Func::Substring => {
            let s = arg_string(ctx, args, 0, bu)?;
            let chars: Vec<char> = s.chars().collect();
            let start = match args.get(1) {
                Some(a) => eval_expr(ctx, a, bu)?.to_number(ctx.doc),
                None => 1.0,
            };
            let start_idx = if start.is_nan() {
                return Ok(Value::Str(String::new()));
            } else {
                (start.round().max(1.0) as usize).saturating_sub(1)
            };
            let end_idx = match args.get(2) {
                Some(a) => {
                    let len = eval_expr(ctx, a, bu)?.to_number(ctx.doc);
                    if len.is_nan() || len <= 0.0 {
                        return Ok(Value::Str(String::new()));
                    }
                    // XPath: positions p with start ≤ p < start + len.
                    ((start.round() + len.round()).max(1.0) as usize).saturating_sub(1)
                }
                None => chars.len(),
            };
            let end_idx = end_idx.min(chars.len());
            if start_idx >= end_idx {
                Value::Str(String::new())
            } else {
                Value::Str(chars[start_idx..end_idx].iter().collect())
            }
        }
        Func::SubstringBefore => {
            let a = arg_string(ctx, args, 0, bu)?;
            let b = arg_string(ctx, args, 1, bu)?;
            Value::Str(a.split_once(&b).map(|(x, _)| x.to_string()).unwrap_or_default())
        }
        Func::SubstringAfter => {
            let a = arg_string(ctx, args, 0, bu)?;
            let b = arg_string(ctx, args, 1, bu)?;
            Value::Str(a.split_once(&b).map(|(_, y)| y.to_string()).unwrap_or_default())
        }
        Func::StringLength => {
            let s = if args.is_empty() {
                ctx.doc.text_value(ctx.node)
            } else {
                arg_string(ctx, args, 0, bu)?
            };
            Value::Num(s.chars().count() as f64)
        }
        Func::Translate => {
            let s = arg_string(ctx, args, 0, bu)?;
            let from: Vec<char> = arg_string(ctx, args, 1, bu)?.chars().collect();
            let to: Vec<char> = arg_string(ctx, args, 2, bu)?.chars().collect();
            let out: String = s
                .chars()
                .filter_map(|c| match from.iter().position(|&f| f == c) {
                    Some(i) => to.get(i).copied(),
                    None => Some(c),
                })
                .collect();
            Value::Str(out)
        }
        Func::BooleanFn => {
            let v = match args.first() {
                Some(a) => eval_expr(ctx, a, bu)?.to_bool(),
                None => false,
            };
            Value::Bool(v)
        }
        Func::Floor => Value::Num(arg_number(ctx, args, 0, bu)?.floor()),
        Func::Ceiling => Value::Num(arg_number(ctx, args, 0, bu)?.ceil()),
        Func::Round => Value::Num(arg_number(ctx, args, 0, bu)?.round()),
        Func::Sum => match args.first() {
            Some(a) => match eval_expr(ctx, a, bu)? {
                Value::NodeSet(ns) => Value::Num(
                    ns.iter().map(|&n| crate::value::str_to_number(&ctx.doc.text_value(n))).sum(),
                ),
                _ => Value::Num(f64::NAN),
            },
            None => Value::Num(f64::NAN),
        },
    })
}

fn arg_number(
    ctx: &EvalCtx<'_>,
    args: &[Expr],
    i: usize,
    bu: &mut Budget,
) -> Result<f64, EvalError> {
    Ok(match args.get(i) {
        Some(a) => eval_expr(ctx, a, bu)?.to_number(ctx.doc),
        None => f64::NAN,
    })
}

fn arg_string(
    ctx: &EvalCtx<'_>,
    args: &[Expr],
    i: usize,
    bu: &mut Budget,
) -> Result<String, EvalError> {
    Ok(match args.get(i) {
        Some(a) => eval_expr(ctx, a, bu)?.to_string_value(ctx.doc),
        None => String::new(),
    })
}

/// Evaluates a standalone boolean condition against a context node
/// (used by tools and tests). Unbudgeted.
pub fn eval_condition(doc: &Document, node: NodeId, e: &Expr) -> bool {
    let ctx = EvalCtx { doc, node, position: 1, size: 1 };
    let mut budget = Budget::new(EvalLimits::unlimited());
    eval_expr(&ctx, e, &mut budget)
        .expect("unlimited evaluation cannot exhaust a budget")
        .to_bool()
}

/// Convenience: parse then select.
pub fn select_str(doc: &Document, path: &str) -> crate::lexer::Result<Vec<NodeId>> {
    let p = crate::parser::parse_path(path)?;
    Ok(select(doc, &p))
}

/// Pretty string for a selected node (diagnostics in tools/tests).
pub fn describe_node(doc: &Document, n: NodeId) -> String {
    match &doc.node(n).data {
        NodeData::Element { name, .. } => format!("<{name}>"),
        NodeData::Attr { name, value } => format!("@{name}={value:?}"),
        NodeData::Text(t) => format!("text({t:?})"),
        NodeData::Comment(_) => "comment".to_string(),
        NodeData::Pi { target, .. } => format!("pi({target})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_path;
    use xmlsec_xml::parse;

    const LAB: &str = r#"<laboratory>
        <project name="Access Models" type="internal">
            <manager><flname>Sam Marlow</flname></manager>
            <member><flname>Ann Eager</flname></member>
            <fund><sponsor>MURST</sponsor><amount>40000</amount></fund>
            <paper category="private" type="internal">P1</paper>
            <paper category="public" type="conference">P2</paper>
        </project>
        <project name="Query Engines" type="public">
            <manager><flname>Bob Keen</flname></manager>
            <paper category="public" type="journal">P3</paper>
        </project>
    </laboratory>"#;

    fn doc() -> xmlsec_xml::Document {
        parse(LAB).unwrap()
    }

    fn names(d: &xmlsec_xml::Document, ns: &[NodeId]) -> Vec<String> {
        ns.iter().map(|&n| describe_node(d, n)).collect()
    }

    fn sel(d: &xmlsec_xml::Document, p: &str) -> Vec<NodeId> {
        select(d, &parse_path(p).unwrap())
    }

    #[test]
    fn absolute_child_selection() {
        let d = doc();
        assert_eq!(sel(&d, "/laboratory/project").len(), 2);
        assert_eq!(sel(&d, "/laboratory").len(), 1);
        assert_eq!(sel(&d, "/wrong").len(), 0);
    }

    #[test]
    fn descendant_selection() {
        let d = doc();
        // paper's example: /laboratory//flname
        let fl = sel(&d, "/laboratory//flname");
        assert_eq!(fl.len(), 3);
        assert!(names(&d, &fl).iter().all(|n| n == "<flname>"));
    }

    #[test]
    fn leading_double_slash() {
        let d = doc();
        assert_eq!(sel(&d, "//paper").len(), 3);
        assert_eq!(sel(&d, "//project").len(), 2);
        assert_eq!(sel(&d, "//laboratory").len(), 1);
    }

    #[test]
    fn attribute_selection() {
        let d = doc();
        let attrs = sel(&d, "/laboratory/project/@name");
        assert_eq!(attrs.len(), 2);
        assert_eq!(d.attr_value(attrs[0]), Some("Access Models"));
        let all = sel(&d, "//@category");
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn relative_path_starts_at_document_element() {
        let d = doc();
        // the paper's object `project[./@type="internal"]`
        let p = sel(&d, r#"project[./@type="internal"]"#);
        assert_eq!(p.len(), 1);
        assert_eq!(d.attribute(p[0], "name"), Some("Access Models"));
    }

    #[test]
    fn ancestor_axis() {
        let d = doc();
        // paper's example: fund/ancestor::project — "returns the project
        // node which appears as an ancestor of the fund element". As a
        // relative path it needs a starting point with a fund child: the
        // first project.
        let project = sel(&d, "/laboratory/project[1]")[0];
        let path = parse_path("fund/ancestor::project").unwrap();
        let p = eval_path(&d, project, &path);
        assert_eq!(p.len(), 1);
        assert_eq!(d.attribute(p[0], "name"), Some("Access Models"));
        // The same selection, anchored: //fund/ancestor::project.
        let p2 = sel(&d, "//fund/ancestor::project");
        assert_eq!(p2, p);
        // ancestor from a deep node reaches the root element
        let lab = sel(&d, "//flname/ancestor::laboratory");
        assert_eq!(lab.len(), 1);
    }

    #[test]
    fn parent_and_self_axes() {
        let d = doc();
        let p = sel(&d, "//flname/../..");
        // parents-of-parents: manager/member's parents = projects
        assert_eq!(p.len(), 2);
        let s = sel(&d, "/laboratory/.");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn positional_predicates() {
        let d = doc();
        // paper's example: /laboratory/project[1]
        let p1 = sel(&d, "/laboratory/project[1]");
        assert_eq!(p1.len(), 1);
        assert_eq!(d.attribute(p1[0], "name"), Some("Access Models"));
        let p2 = sel(&d, "/laboratory/project[2]");
        assert_eq!(d.attribute(p2[0], "name"), Some("Query Engines"));
        assert_eq!(sel(&d, "/laboratory/project[3]").len(), 0);
        let last = sel(&d, "/laboratory/project[position() = last()]");
        assert_eq!(d.attribute(last[0], "name"), Some("Query Engines"));
    }

    #[test]
    fn paper_condition_chain() {
        let d = doc();
        let p = sel(
            &d,
            r#"/laboratory/project[./@name = "Access Models"]/paper[./@type = "internal"]"#,
        );
        assert_eq!(p.len(), 1);
        assert_eq!(d.text_value(p[0]), "P1");
    }

    #[test]
    fn private_papers_example() {
        let d = doc();
        // Example 1 authorization object
        let p = sel(&d, r#"/laboratory//paper[./@category="private"]"#);
        assert_eq!(p.len(), 1);
        assert_eq!(d.text_value(p[0]), "P1");
    }

    #[test]
    fn and_or_in_conditions() {
        let d = doc();
        assert_eq!(sel(&d, r#"//paper[@category="public" and @type="journal"]"#).len(), 1);
        assert_eq!(sel(&d, r#"//paper[@category="private" or @type="journal"]"#).len(), 2);
    }

    #[test]
    fn text_content_conditions() {
        let d = doc();
        let f = sel(&d, r#"//fund[sponsor = "MURST"]"#);
        assert_eq!(f.len(), 1);
        let f2 = sel(&d, r#"//fund[amount > 30000]"#);
        assert_eq!(f2.len(), 1);
        let f3 = sel(&d, r#"//fund[amount > 50000]"#);
        assert_eq!(f3.len(), 0);
    }

    #[test]
    fn text_node_test() {
        let d = doc();
        let t = sel(&d, "//paper/text()");
        assert_eq!(t.len(), 3);
        let cond = sel(&d, r#"//paper[text() = "P2"]"#);
        assert_eq!(cond.len(), 1);
    }

    #[test]
    fn wildcard_step() {
        let d = doc();
        let k = sel(&d, "/laboratory/*");
        assert_eq!(k.len(), 2);
        let gk = sel(&d, "/laboratory/*/*");
        // children of both projects: manager, member, fund, paper, paper | manager, paper
        assert_eq!(gk.len(), 7);
    }

    #[test]
    fn count_function() {
        let d = doc();
        let p = sel(&d, "//project[count(paper) >= 2]");
        assert_eq!(p.len(), 1);
        assert_eq!(d.attribute(p[0], "name"), Some("Access Models"));
    }

    #[test]
    fn contains_and_starts_with() {
        let d = doc();
        assert_eq!(sel(&d, r#"//flname[contains(., "Marlow")]"#).len(), 1);
        assert_eq!(sel(&d, r#"//flname[starts-with(., "Ann")]"#).len(), 1);
    }

    #[test]
    fn not_function_and_ne() {
        let d = doc();
        assert_eq!(sel(&d, r#"//paper[not(@category="private")]"#).len(), 2);
        // != on attribute
        assert_eq!(sel(&d, r#"//paper[@category != "private"]"#).len(), 2);
    }

    #[test]
    fn predicates_renumber_between_brackets() {
        let d = doc();
        // Positions renumber after each predicate, per parent: the first
        // *public* paper of each project (P2 under project 1, P3 under
        // project 2).
        let p = sel(&d, r#"//paper[@category="public"][1]"#);
        assert_eq!(p.len(), 2);
        assert_eq!(d.text_value(p[0]), "P2");
        assert_eq!(d.text_value(p[1]), "P3");
    }

    #[test]
    fn descendant_or_self_node_matches_attributes_via_at() {
        let d = doc();
        let a = sel(&d, r#"//@type"#);
        // project(x2) and paper(x3) types
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn bare_root_selects_nothing_but_children_do() {
        let d = doc();
        assert_eq!(sel(&d, "/").len(), 0); // virtual root is not a real node
        assert_eq!(sel(&d, "/*").len(), 1);
    }

    #[test]
    fn results_deduplicated() {
        let d = doc();
        // `//paper/ancestor::project | via multiple papers` — same project
        // reached via two papers must appear once.
        let p = sel(&d, "//paper/ancestor::project");
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn eval_condition_helper() {
        let d = doc();
        let proj = sel(&d, "/laboratory/project[1]")[0];
        let cond = crate::parser::parse_expr(r#"./@type = "internal""#).unwrap();
        assert!(eval_condition(&d, proj, &cond));
        let cond2 = crate::parser::parse_expr(r#"./@type = "public""#).unwrap();
        assert!(!eval_condition(&d, proj, &cond2));
    }

    #[test]
    fn normalize_space() {
        let d = parse("<a><b>  hi   there </b></a>").unwrap();
        let b = sel(&d, r#"//b[normalize-space(.) = "hi there"]"#);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn node_budget_is_typed_error() {
        let d = doc();
        let p = parse_path("//*//*").unwrap();
        let tiny = EvalLimits { max_node_visits: 5, ..EvalLimits::default() };
        let e = select_limited(&d, &p, &tiny).unwrap_err();
        assert_eq!(e, EvalError::NodeBudget { limit: 5 });
        assert_eq!(e.kind(), "node_visits");
        // The same expression under defaults succeeds.
        assert!(select_limited(&d, &p, &EvalLimits::default()).is_ok());
    }

    #[test]
    fn budget_covers_inner_predicate_paths() {
        let d = doc();
        // The predicate path re-walks each candidate's subtree; those
        // visits must draw from the same budget.
        let p = parse_path("//project[.//flname]").unwrap();
        let tiny = EvalLimits { max_node_visits: 10, ..EvalLimits::default() };
        assert!(select_limited(&d, &p, &tiny).is_err());
        assert_eq!(select_limited(&d, &p, &EvalLimits::default()).unwrap().len(), 2);
    }

    #[test]
    fn eval_depth_cap_is_typed_error() {
        let d = doc();
        let p = parse_path("//project[paper[text()]]").unwrap();
        let shallow = EvalLimits { max_eval_depth: 1, ..EvalLimits::default() };
        let e = select_limited(&d, &p, &shallow).unwrap_err();
        assert_eq!(e, EvalError::Depth { limit: 1 });
        assert!(select_limited(&d, &p, &EvalLimits::default()).is_ok());
    }

    #[test]
    fn limited_matches_unlimited_when_within_budget() {
        let d = doc();
        for expr in ["//paper", "/laboratory//flname", r#"//paper[@category="public"][1]"#] {
            let p = parse_path(expr).unwrap();
            assert_eq!(
                select_limited(&d, &p, &EvalLimits::default()).unwrap(),
                select(&d, &p),
                "{expr}"
            );
        }
    }

    #[test]
    fn eval_path_limited_enforces_budget_from_context() {
        let d = doc();
        let project = sel(&d, "/laboratory/project[1]")[0];
        let p = parse_path(".//*").unwrap();
        let tiny = EvalLimits { max_node_visits: 2, ..EvalLimits::default() };
        assert!(eval_path_limited(&d, project, &p, &tiny).is_err());
        assert!(eval_path_limited(&d, project, &p, &EvalLimits::default()).is_ok());
    }
}
