//! Abstract syntax for the paper's XPath subset (its §4, Definition 2 and
//! the surrounding discussion of conditions, axes, and functions).

use std::fmt;

/// A parsed path expression: `l1/l2/.../ln`, optionally absolute, each
/// step carrying an axis, a node test, and predicates.
#[derive(Debug, Clone, PartialEq)]
pub struct PathExpr {
    /// `true` when the expression starts with `/` (from the document root).
    pub absolute: bool,
    /// The steps, left to right.
    pub steps: Vec<Step>,
}

impl PathExpr {
    /// A relative path with the given steps.
    pub fn relative(steps: Vec<Step>) -> Self {
        PathExpr { absolute: false, steps }
    }

    /// An absolute path with the given steps.
    pub fn absolute(steps: Vec<Step>) -> Self {
        PathExpr { absolute: true, steps }
    }
}

/// One location step.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// Navigation axis.
    pub axis: Axis,
    /// Which nodes along the axis qualify.
    pub test: NodeTest,
    /// Zero or more bracketed predicates, applied in order.
    pub predicates: Vec<Expr>,
}

impl Step {
    /// A `child::name` step with no predicates.
    pub fn child(name: &str) -> Step {
        Step { axis: Axis::Child, test: NodeTest::Name(name.to_string()), predicates: Vec::new() }
    }

    /// An `attribute::name` step with no predicates.
    pub fn attribute(name: &str) -> Step {
        Step {
            axis: Axis::Attribute,
            test: NodeTest::Name(name.to_string()),
            predicates: Vec::new(),
        }
    }
}

/// The axes the paper uses: `child`, `descendant`, `ancestor` (named in
/// §4), plus the abbreviation support set (`.` = self, `..` = parent,
/// `//` = descendant-or-self, `@` = attribute).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// `child::` (the default axis).
    Child,
    /// `descendant::`.
    Descendant,
    /// `descendant-or-self::` (expansion of `//`).
    DescendantOrSelf,
    /// `parent::` (`..`).
    Parent,
    /// `ancestor::`.
    Ancestor,
    /// `ancestor-or-self::`.
    AncestorOrSelf,
    /// `self::` (`.`).
    SelfAxis,
    /// `attribute::` (`@`).
    Attribute,
    /// `following-sibling::`.
    FollowingSibling,
    /// `preceding-sibling::`.
    PrecedingSibling,
}

impl Axis {
    /// The axis keyword as written in expressions.
    pub fn keyword(self) -> &'static str {
        match self {
            Axis::Child => "child",
            Axis::Descendant => "descendant",
            Axis::DescendantOrSelf => "descendant-or-self",
            Axis::Parent => "parent",
            Axis::Ancestor => "ancestor",
            Axis::AncestorOrSelf => "ancestor-or-self",
            Axis::SelfAxis => "self",
            Axis::Attribute => "attribute",
            Axis::FollowingSibling => "following-sibling",
            Axis::PrecedingSibling => "preceding-sibling",
        }
    }

    /// Parses an axis keyword.
    pub fn from_keyword(s: &str) -> Option<Axis> {
        Some(match s {
            "child" => Axis::Child,
            "descendant" => Axis::Descendant,
            "descendant-or-self" => Axis::DescendantOrSelf,
            "parent" => Axis::Parent,
            "ancestor" => Axis::Ancestor,
            "ancestor-or-self" => Axis::AncestorOrSelf,
            "self" => Axis::SelfAxis,
            "attribute" => Axis::Attribute,
            "following-sibling" => Axis::FollowingSibling,
            "preceding-sibling" => Axis::PrecedingSibling,
            _ => return None,
        })
    }
}

/// Node test within a step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeTest {
    /// A specific element/attribute name.
    Name(String),
    /// `*` — any element (or any attribute on the attribute axis).
    Wildcard,
    /// `text()` — text children.
    Text,
    /// `node()` — any node.
    AnyNode,
}

/// Comparison operators usable in conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// Built-in functions (the paper names `child`, `descendant`, `ancestor`
/// as axes/functions; the rest are the standard condition helpers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Func {
    /// `position()` — 1-based position in the evaluation context.
    Position,
    /// `last()` — context size.
    Last,
    /// `count(path)`.
    Count,
    /// `contains(a, b)`.
    Contains,
    /// `starts-with(a, b)`.
    StartsWith,
    /// `name()` — the context node's name.
    Name,
    /// `string(x)` — string conversion.
    StringFn,
    /// `number(x)` — numeric conversion.
    NumberFn,
    /// `not(x)` — boolean negation.
    Not,
    /// `true()`.
    True,
    /// `false()`.
    False,
    /// `normalize-space(x?)`.
    NormalizeSpace,
    /// `concat(a, b, ...)`.
    Concat,
    /// `substring(s, start, len?)` — 1-based, XPath rounding rules
    /// simplified to truncation.
    Substring,
    /// `substring-before(a, b)`.
    SubstringBefore,
    /// `substring-after(a, b)`.
    SubstringAfter,
    /// `string-length(s?)`.
    StringLength,
    /// `translate(s, from, to)`.
    Translate,
    /// `boolean(x)`.
    BooleanFn,
    /// `floor(n)`.
    Floor,
    /// `ceiling(n)`.
    Ceiling,
    /// `round(n)`.
    Round,
    /// `sum(nodeset)`.
    Sum,
}

impl Func {
    /// Parses a function name.
    pub fn from_name(s: &str) -> Option<Func> {
        Some(match s {
            "position" => Func::Position,
            "last" => Func::Last,
            "count" => Func::Count,
            "contains" => Func::Contains,
            "starts-with" => Func::StartsWith,
            "name" => Func::Name,
            "string" => Func::StringFn,
            "number" => Func::NumberFn,
            "not" => Func::Not,
            "true" => Func::True,
            "false" => Func::False,
            "normalize-space" => Func::NormalizeSpace,
            "concat" => Func::Concat,
            "substring" => Func::Substring,
            "substring-before" => Func::SubstringBefore,
            "substring-after" => Func::SubstringAfter,
            "string-length" => Func::StringLength,
            "translate" => Func::Translate,
            "boolean" => Func::BooleanFn,
            "floor" => Func::Floor,
            "ceiling" => Func::Ceiling,
            "round" => Func::Round,
            "sum" => Func::Sum,
            _ => return None,
        })
    }
}

/// Arithmetic operators (XPath 1.0 §3.5; `*` multiplication is not
/// supported because `*` is taken by the wildcard node test — use
/// `div`/`mod`/`+`/`-`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `div`
    Div,
    /// `mod`
    Mod,
}

/// An expression usable in predicates.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `a or b`.
    Or(Box<Expr>, Box<Expr>),
    /// `a and b`.
    And(Box<Expr>, Box<Expr>),
    /// `a OP b`.
    Compare(CmpOp, Box<Expr>, Box<Expr>),
    /// `a | b` — node-set union.
    Union(Box<Expr>, Box<Expr>),
    /// `a + b`, `a - b`, `a div b`, `a mod b`.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// `- a`.
    Neg(Box<Expr>),
    /// A (usually relative) path evaluated from the context node.
    Path(PathExpr),
    /// A string literal.
    Literal(String),
    /// A numeric literal.
    Number(f64),
    /// A function call.
    Call(Func, Vec<Expr>),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_keyword_round_trip() {
        for a in [
            Axis::Child,
            Axis::Descendant,
            Axis::DescendantOrSelf,
            Axis::Parent,
            Axis::Ancestor,
            Axis::AncestorOrSelf,
            Axis::SelfAxis,
            Axis::Attribute,
        ] {
            assert_eq!(Axis::from_keyword(a.keyword()), Some(a));
        }
        assert_eq!(Axis::from_keyword("following"), None);
    }

    #[test]
    fn func_lookup() {
        assert_eq!(Func::from_name("position"), Some(Func::Position));
        assert_eq!(Func::from_name("starts-with"), Some(Func::StartsWith));
        assert_eq!(Func::from_name("id"), None);
    }

    #[test]
    fn cmp_display() {
        assert_eq!(CmpOp::Le.to_string(), "<=");
        assert_eq!(CmpOp::Ne.to_string(), "!=");
    }

    #[test]
    fn step_constructors() {
        let s = Step::child("project");
        assert_eq!(s.axis, Axis::Child);
        assert_eq!(s.test, NodeTest::Name("project".into()));
        let a = Step::attribute("name");
        assert_eq!(a.axis, Axis::Attribute);
    }
}
