//! Tests for the extended XPath surface: union, arithmetic, unary minus,
//! sibling axes, and the string/number function library.

use xmlsec_xml::parse;
use xmlsec_xpath::{parse_path, select};

const DOC: &str = r#"<shop>
    <item price="10" name="pen">ink pen</item>
    <item price="25" name="pad">note pad</item>
    <item price="40" name="bag">tote bag</item>
    <sale percent="50"/>
</shop>"#;

fn sel(doc: &xmlsec_xml::Document, p: &str) -> Vec<String> {
    select(doc, &parse_path(p).expect("parses"))
        .into_iter()
        .map(|n| {
            if doc.is_attribute(n) {
                doc.attr_value(n).unwrap_or_default().to_string()
            } else {
                doc.node_name(n).unwrap_or("?").to_string()
            }
        })
        .collect()
}

#[test]
fn union_in_predicates() {
    let d = parse(DOC).unwrap();
    // items whose price=10 or that have a name of "bag" — via union of
    // two attribute paths compared existentially
    let hits = sel(&d, r#"/shop/item[(@price | @name) = "pen"]"#);
    assert_eq!(hits.len(), 1);
}

#[test]
fn arithmetic_in_conditions() {
    let d = parse(DOC).unwrap();
    assert_eq!(sel(&d, "/shop/item[@price + 10 = 35]").len(), 1); // pad
    assert_eq!(sel(&d, "/shop/item[@price - 5 > 30]").len(), 1); // bag
    assert_eq!(sel(&d, "/shop/item[@price div 2 = 20]").len(), 1); // bag
    assert_eq!(sel(&d, "/shop/item[@price mod 2 = 1]").len(), 1); // 25
    assert_eq!(sel(&d, "/shop/item[@price mod 4 = 1]").len(), 1); // 25
    assert_eq!(sel(&d, "/shop/item[@price mod 5 = 0]").len(), 3); // all
}

#[test]
fn unary_minus() {
    let d = parse(DOC).unwrap();
    assert_eq!(sel(&d, "/shop/item[-@price < -30]").len(), 1); // bag
}

#[test]
fn positional_arithmetic() {
    let d = parse(DOC).unwrap();
    let hits = sel(&d, "/shop/item[position() = last() - 1]");
    assert_eq!(hits.len(), 1); // pad (items only: pen, pad, bag)
}

#[test]
fn sibling_axes() {
    let d = parse(DOC).unwrap();
    let after_pad =
        select(&d, &parse_path(r#"/shop/item[@name="pad"]/following-sibling::item"#).unwrap());
    assert_eq!(after_pad.len(), 1);
    assert_eq!(d.attribute(after_pad[0], "name"), Some("bag"));
    let before_pad =
        select(&d, &parse_path(r#"/shop/item[@name="pad"]/preceding-sibling::item"#).unwrap());
    assert_eq!(before_pad.len(), 1);
    assert_eq!(d.attribute(before_pad[0], "name"), Some("pen"));
    // sale has item siblings before it only
    assert_eq!(sel(&d, "/shop/sale/preceding-sibling::item").len(), 3);
    assert_eq!(sel(&d, "/shop/sale/following-sibling::item").len(), 0);
}

#[test]
fn preceding_sibling_positions_are_nearest_first() {
    let d = parse(DOC).unwrap();
    let nearest = select(&d, &parse_path("/shop/sale/preceding-sibling::item[1]").unwrap());
    assert_eq!(nearest.len(), 1);
    assert_eq!(d.attribute(nearest[0], "name"), Some("bag"));
}

#[test]
fn string_functions() {
    let d = parse(DOC).unwrap();
    assert_eq!(sel(&d, r#"/shop/item[concat(@name, "!") = "pen!"]"#).len(), 1);
    assert_eq!(sel(&d, r#"/shop/item[substring(@name, 1, 2) = "pa"]"#).len(), 1);
    assert_eq!(sel(&d, r#"/shop/item[substring(., 5) = "pen"]"#).len(), 1); // "ink pen"
    assert_eq!(sel(&d, r#"/shop/item[string-length(@name) = 3]"#).len(), 3);
    assert_eq!(sel(&d, r#"/shop/item[substring-before(., " ") = "note"]"#).len(), 1);
    assert_eq!(sel(&d, r#"/shop/item[substring-after(., " ") = "bag"]"#).len(), 1);
    assert_eq!(sel(&d, r#"/shop/item[translate(@name, "p", "P") = "Pen"]"#).len(), 1);
    // translate with shorter `to` deletes characters
    assert_eq!(sel(&d, r#"/shop/item[translate(@name, "ae", "") = "pd"]"#).len(), 1);
}

#[test]
fn number_functions() {
    let d = parse(DOC).unwrap();
    assert_eq!(sel(&d, "/shop/item[floor(@price div 10) = 2]").len(), 1); // 25
    assert_eq!(sel(&d, "/shop/item[ceiling(@price div 10) = 3]").len(), 1); // 25
    assert_eq!(sel(&d, "/shop/item[round(@price div 10) = 3]").len(), 1); // 25→2.5→round 3? No: 2.5 rounds to 3 in Rust (half away) — 25 matches
    assert_eq!(sel(&d, "/shop[sum(item/@price) = 75]").len(), 1);
    assert_eq!(sel(&d, "/shop[boolean(sale)]").len(), 1);
    assert_eq!(sel(&d, "/shop[boolean(discount)]").len(), 0);
}

#[test]
fn hyphen_in_names_vs_subtraction() {
    // `a-b` is one name; `a - b` (spaced) is a subtraction.
    let d = parse(r#"<r><a-b>5</a-b><x>7</x></r>"#).unwrap();
    assert_eq!(sel(&d, "/r/a-b").len(), 1);
    assert_eq!(sel(&d, "/r[x - a-b = 2]").len(), 1);
}

#[test]
fn parse_errors_for_malformed_extensions() {
    assert!(parse_path("a[| b]").is_err());
    assert!(parse_path("a[1 +]").is_err());
    assert!(parse_path("a[- ]").is_err());
    assert!(parse_path("a[b div]").is_err());
}
