//! XPath node-set ordering after DOM mutations (arena ids no longer in
//! document order).

use xmlsec_xml::Document;
use xmlsec_xpath::{parse_path, select};

#[test]
fn xpath_results_are_document_ordered_after_mutation() {
    let mut d = Document::new("r");
    // Append in scrambled creation order: z first, then prepend-like by
    // building a fresh sibling before it in a different subtree.
    let later = d.append_element(d.root(), "wrap");
    let z = d.append_element(later, "x");
    d.append_text(z, "second");
    let first_wrap = d.append_element(d.root(), "wrap");
    let y = d.append_element(first_wrap, "x");
    d.append_text(y, "third");
    // Arena: z < y, and both wraps are in insertion order; select must
    // return document order, which here equals insertion order — now
    // mutate: move nothing, but add an earlier x directly under root via
    // a fresh element inserted under the first child.
    let early = d.append_element(later, "x");
    d.append_text(early, "also-under-first-wrap");
    let hits = select(&d, &parse_path("//x").unwrap());
    // Document order: z (first wrap's first x), early (its second x), y.
    assert_eq!(hits, vec![z, early, y]);
    let ordered: Vec<_> = {
        let mut v = hits.clone();
        v.sort_by(|&p, &q| d.document_order(p, q));
        v
    };
    assert_eq!(hits, ordered);
}
