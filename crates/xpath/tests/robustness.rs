//! Robustness: the path-expression parser and evaluator never panic on
//! arbitrary input, and evaluation terminates on adversarial documents.

use proptest::prelude::*;
use xmlsec_xpath::{parse_path, select};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary strings never panic the expression parser.
    #[test]
    fn parse_path_never_panics(s in ".{0,200}") {
        let _ = parse_path(&s);
    }

    /// Expression-ish soup never panics, and whatever parses also
    /// evaluates without panicking.
    #[test]
    fn parse_and_eval_soup(s in "[/@\\.\\*\\[\\]()a-z0-9 ='\"<>!|+-]{0,120}") {
        let doc = xmlsec_xml::parse(
            r#"<r><a x="1">t</a><b><a x="2"/></b></r>"#
        ).expect("fixture parses");
        if let Ok(p) = parse_path(&s) {
            let _ = select(&doc, &p);
        }
    }

    /// Error offsets lie within the input.
    #[test]
    fn error_offsets_in_bounds(s in "[/@a-z\\[\\]=']{0,100}") {
        if let Err(e) = parse_path(&s) {
            prop_assert!(e.offset <= s.len(), "{e}");
        }
    }
}

#[test]
fn deep_path_expression() {
    let expr = vec!["a"; 500].join("/");
    let p = parse_path(&expr).unwrap();
    assert_eq!(p.steps.len(), 500);
    let doc = xmlsec_xml::parse("<a><a><a/></a></a>").unwrap();
    assert!(select(&doc, &p).is_empty());
}

#[test]
fn deeply_nested_predicates() {
    let mut expr = String::from("a");
    for _ in 0..100 {
        expr = format!("a[{expr}]");
    }
    // Must parse and evaluate without stack issues.
    let p = parse_path(&expr).unwrap();
    let doc = xmlsec_xml::parse("<a><a><a/></a></a>").unwrap();
    let _ = select(&doc, &p);
}

#[test]
fn descendant_on_wide_document_terminates_quickly() {
    let mut doc = xmlsec_xml::Document::new("r");
    let root = doc.root();
    for _ in 0..10_000 {
        doc.append_element(root, "x");
    }
    let p = parse_path("//x").unwrap();
    assert_eq!(select(&doc, &p).len(), 10_000);
}
