//! User/group directory: the server-side registry of identities and the
//! group-membership relation (paper §3: "a group is a set of users defined
//! at the server. Groups do not need to be disjoint and can be nested").

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Error raised by directory mutations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirectoryError {
    /// The named user/group already exists with a different kind.
    KindConflict(String),
    /// Membership edge would create a cycle in the group graph.
    MembershipCycle {
        /// The member being added.
        member: String,
        /// The group it was being added to.
        group: String,
    },
    /// The named principal does not exist.
    Unknown(String),
    /// Membership target is a user, not a group.
    NotAGroup(String),
}

impl fmt::Display for DirectoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DirectoryError::KindConflict(n) => {
                write!(f, "{n:?} already exists as a different kind of principal")
            }
            DirectoryError::MembershipCycle { member, group } => {
                write!(f, "adding {member:?} to {group:?} would create a membership cycle")
            }
            DirectoryError::Unknown(n) => write!(f, "unknown principal {n:?}"),
            DirectoryError::NotAGroup(n) => write!(f, "{n:?} is a user, not a group"),
        }
    }
}

impl std::error::Error for DirectoryError {}

/// Kind of a registered principal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrincipalKind {
    /// An individual user identity.
    User,
    /// A (possibly nested) group.
    Group,
}

/// The directory: principals plus the membership DAG.
#[derive(Debug, Clone, Default)]
pub struct Directory {
    kinds: BTreeMap<String, PrincipalKind>,
    /// member → direct parent groups.
    parents: BTreeMap<String, BTreeSet<String>>,
}

impl Directory {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a user. Idempotent; errors if the name is a group.
    pub fn add_user(&mut self, name: &str) -> Result<(), DirectoryError> {
        self.add_principal(name, PrincipalKind::User)
    }

    /// Registers a group. Idempotent; errors if the name is a user.
    pub fn add_group(&mut self, name: &str) -> Result<(), DirectoryError> {
        self.add_principal(name, PrincipalKind::Group)
    }

    fn add_principal(&mut self, name: &str, kind: PrincipalKind) -> Result<(), DirectoryError> {
        match self.kinds.get(name) {
            Some(k) if *k == kind => Ok(()),
            Some(_) => Err(DirectoryError::KindConflict(name.to_string())),
            None => {
                self.kinds.insert(name.to_string(), kind);
                Ok(())
            }
        }
    }

    /// Looks up a principal's kind.
    pub fn kind(&self, name: &str) -> Option<PrincipalKind> {
        self.kinds.get(name).copied()
    }

    /// `true` if `name` is a registered group.
    pub fn is_group(&self, name: &str) -> bool {
        self.kind(name) == Some(PrincipalKind::Group)
    }

    /// Adds `member` (user or group) to `group`.
    ///
    /// Both principals must exist; group-in-group nesting is allowed but
    /// cycles are rejected.
    pub fn add_member(&mut self, member: &str, group: &str) -> Result<(), DirectoryError> {
        if !self.kinds.contains_key(member) {
            return Err(DirectoryError::Unknown(member.to_string()));
        }
        match self.kinds.get(group) {
            None => return Err(DirectoryError::Unknown(group.to_string())),
            Some(PrincipalKind::User) => return Err(DirectoryError::NotAGroup(group.to_string())),
            Some(PrincipalKind::Group) => {}
        }
        // Cycle check: a group cannot contain itself, directly or
        // transitively.
        if member == group || self.is_member(group, member) {
            return Err(DirectoryError::MembershipCycle {
                member: member.to_string(),
                group: group.to_string(),
            });
        }
        self.parents.entry(member.to_string()).or_default().insert(group.to_string());
        Ok(())
    }

    /// Transitive membership test: is `member` in `group`?
    /// Not reflexive (`is_member("Alice", "Alice")` is `false`); use
    /// [`Directory::dominates`] for the hierarchy order.
    pub fn is_member(&self, member: &str, group: &str) -> bool {
        let mut stack: Vec<&str> = vec![member];
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        while let Some(m) = stack.pop() {
            if let Some(ps) = self.parents.get(m) {
                for p in ps {
                    if p == group {
                        return true;
                    }
                    if seen.insert(p) {
                        stack.push(p);
                    }
                }
            }
        }
        false
    }

    /// The hierarchy order on user/group identifiers: `a` ≤ `b` iff
    /// `a == b` or `a` is transitively a member of `b`.
    pub fn dominates(&self, a: &str, b: &str) -> bool {
        a == b || self.is_member(a, b)
    }

    /// All groups `member` transitively belongs to.
    pub fn groups_of(&self, member: &str) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        let mut stack: Vec<&str> = vec![member];
        while let Some(m) = stack.pop() {
            if let Some(ps) = self.parents.get(m) {
                for p in ps {
                    if out.insert(p.clone()) {
                        stack.push(p);
                    }
                }
            }
        }
        out
    }

    /// All registered principal names (diagnostics).
    pub fn principals(&self) -> impl Iterator<Item = (&str, PrincipalKind)> {
        self.kinds.iter().map(|(n, k)| (n.as_str(), *k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir() -> Directory {
        let mut d = Directory::new();
        for u in ["Tom", "Alice", "Sam"] {
            d.add_user(u).unwrap();
        }
        for g in ["Public", "Foreign", "Admin", "Staff"] {
            d.add_group(g).unwrap();
        }
        d.add_member("Tom", "Foreign").unwrap();
        d.add_member("Alice", "Admin").unwrap();
        d.add_member("Admin", "Staff").unwrap();
        for u in ["Tom", "Alice", "Sam"] {
            d.add_member(u, "Public").unwrap();
        }
        d
    }

    #[test]
    fn direct_and_transitive_membership() {
        let d = dir();
        assert!(d.is_member("Tom", "Foreign"));
        assert!(d.is_member("Alice", "Admin"));
        assert!(d.is_member("Alice", "Staff")); // via Admin
        assert!(!d.is_member("Tom", "Admin"));
        assert!(!d.is_member("Sam", "Foreign"));
    }

    #[test]
    fn dominates_is_reflexive() {
        let d = dir();
        assert!(d.dominates("Tom", "Tom"));
        assert!(d.dominates("Public", "Public"));
        assert!(d.dominates("Tom", "Foreign"));
        assert!(!d.dominates("Foreign", "Tom"));
    }

    #[test]
    fn groups_of_collects_all() {
        let d = dir();
        let g = d.groups_of("Alice");
        assert!(g.contains("Admin"));
        assert!(g.contains("Staff"));
        assert!(g.contains("Public"));
        assert!(!g.contains("Foreign"));
    }

    #[test]
    fn overlapping_groups_allowed() {
        let d = dir();
        // Tom is in both Foreign and Public — groups need not be disjoint.
        assert!(d.is_member("Tom", "Foreign"));
        assert!(d.is_member("Tom", "Public"));
    }

    #[test]
    fn cycles_rejected() {
        let mut d = Directory::new();
        d.add_group("A").unwrap();
        d.add_group("B").unwrap();
        d.add_group("C").unwrap();
        d.add_member("A", "B").unwrap();
        d.add_member("B", "C").unwrap();
        let e = d.add_member("C", "A").unwrap_err();
        assert!(matches!(e, DirectoryError::MembershipCycle { .. }));
        // self-membership is a 1-cycle
        assert!(d.add_member("A", "A").is_err());
    }

    #[test]
    fn kind_conflicts_and_unknowns() {
        let mut d = Directory::new();
        d.add_user("X").unwrap();
        assert!(d.add_group("X").is_err());
        assert!(d.add_user("X").is_ok()); // idempotent
        assert!(d.add_member("X", "Nope").is_err());
        assert!(d.add_member("Nope", "X").is_err());
        d.add_user("Y").unwrap();
        assert!(matches!(d.add_member("Y", "X"), Err(DirectoryError::NotAGroup(_))));
    }

    #[test]
    fn membership_in_user_never_holds() {
        let d = dir();
        assert!(!d.is_member("Foreign", "Tom"));
        assert!(!d.dominates("Foreign", "Tom"));
    }
}
