//! Location patterns (paper §3): numeric IP patterns and symbolic name
//! patterns with wildcard components.
//!
//! Rules from the paper:
//! - wildcards replace whole components and must be *contiguous*;
//! - specificity runs left-to-right in IP addresses and right-to-left in
//!   symbolic names, so wildcards appear only as **right-most** components
//!   of IP patterns and **left-most** components of symbolic patterns;
//! - `151.100.*.*` and `151.100.*` are equivalent.
//!
//! The partial orders `≤ip`/`≤sn` are oriented so that *more specific ≤
//! more general* — matching the hierarchy's use in Definition 1, where
//! concrete requests are minimal elements and authorizations given to a
//! pattern apply to everything below it. (The paper's prose inverts the
//! roles of `p1`/`p2` in its component-wise phrasing; the surrounding
//! semantics — "authorizations specified for subject s_j are applicable
//! to all subjects s_i such that s_i ≤ s_j" — requires the orientation
//! implemented here.)

use std::fmt;
use std::str::FromStr;

/// Error raised by pattern parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternError(pub String);

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid location pattern: {}", self.0)
    }
}

impl std::error::Error for PatternError {}

/// A numeric IP pattern: a fixed prefix of octets, with the remaining
/// (right-most) components wildcarded.
///
/// Canonical form: `151.100.*` ≡ `151.100.*.*` both store prefix
/// `[151, 100]`. The full wildcard `*` stores an empty prefix.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IpPattern {
    prefix: Vec<u8>,
}

impl IpPattern {
    /// The pattern matching every address.
    pub fn any() -> Self {
        IpPattern { prefix: Vec::new() }
    }

    /// A fully specified address.
    pub fn exact(a: u8, b: u8, c: u8, d: u8) -> Self {
        IpPattern { prefix: vec![a, b, c, d] }
    }

    /// The fixed octets of the pattern.
    pub fn prefix(&self) -> &[u8] {
        &self.prefix
    }

    /// `true` if the pattern names one concrete address.
    pub fn is_concrete(&self) -> bool {
        self.prefix.len() == 4
    }

    /// `self ≤ip other`: `self` is at least as specific as `other`
    /// (everything `self` matches, `other` matches too).
    pub fn leq(&self, other: &IpPattern) -> bool {
        self.prefix.len() >= other.prefix.len()
            && self.prefix[..other.prefix.len()] == other.prefix[..]
    }

    /// Whether a concrete address matches this pattern.
    pub fn matches(&self, addr: &IpPattern) -> bool {
        addr.is_concrete() && addr.leq(self)
    }

    /// Intersection satisfiability: is there a concrete address matching
    /// both patterns? Since a pattern is a fixed octet prefix, two
    /// patterns overlap exactly when one prefix extends the other (any
    /// common completion then witnesses both).
    pub fn intersects(&self, other: &IpPattern) -> bool {
        let n = self.prefix.len().min(other.prefix.len());
        self.prefix[..n] == other.prefix[..n]
    }
}

impl FromStr for IpPattern {
    type Err = PatternError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() {
            return Err(PatternError("empty IP pattern".into()));
        }
        if s == "*" {
            return Ok(IpPattern::any());
        }
        let parts: Vec<&str> = s.split('.').collect();
        if parts.len() > 4 {
            return Err(PatternError(format!("too many components in {s:?}")));
        }
        let mut prefix = Vec::new();
        let mut in_wildcards = false;
        for p in &parts {
            if *p == "*" {
                in_wildcards = true;
            } else {
                if in_wildcards {
                    return Err(PatternError(format!(
                        "wildcards must be right-most in IP pattern {s:?}"
                    )));
                }
                let octet: u8 =
                    p.parse().map_err(|_| PatternError(format!("bad octet {p:?} in {s:?}")))?;
                prefix.push(octet);
            }
        }
        // "151.100" (fewer than four components, no trailing '*') is read
        // as a prefix pattern too — the paper treats 151.100.* and
        // 151.100.*.* as equivalent, and a bare prefix unambiguously means
        // the same thing.
        Ok(IpPattern { prefix })
    }
}

impl fmt::Display for IpPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.prefix.is_empty() {
            return write!(f, "*");
        }
        let mut parts: Vec<String> = self.prefix.iter().map(u8::to_string).collect();
        if !self.is_concrete() {
            parts.push("*".to_string());
        }
        write!(f, "{}", parts.join("."))
    }
}

/// A symbolic name pattern: a fixed suffix of labels (stored right-to-
/// left), with the remaining (left-most) components wildcarded.
///
/// `*.lab.com` stores suffix `["com", "lab"]`; `*` stores an empty suffix.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymPattern {
    /// Labels right-to-left (`com`, `lab` for `*.lab.com`).
    suffix_rtl: Vec<String>,
    /// `true` when the pattern had a leading `*` (or is the full wildcard);
    /// `false` means the name is concrete.
    wildcard: bool,
}

impl SymPattern {
    /// The pattern matching every symbolic name.
    pub fn any() -> Self {
        SymPattern { suffix_rtl: Vec::new(), wildcard: true }
    }

    /// A concrete host name.
    pub fn exact(name: &str) -> Result<Self, PatternError> {
        let p: SymPattern = name.parse()?;
        if !p.is_concrete() {
            return Err(PatternError(format!("{name:?} contains wildcards")));
        }
        Ok(p)
    }

    /// The fixed labels, right-to-left.
    pub fn suffix_rtl(&self) -> &[String] {
        &self.suffix_rtl
    }

    /// `true` if the pattern names one concrete host.
    pub fn is_concrete(&self) -> bool {
        !self.wildcard
    }

    /// `self ≤sn other`: `self` is at least as specific as `other`.
    ///
    /// A wildcard stands for *at least one* label, so the concrete name
    /// `lab.com` is **not** below `*.lab.com` (it is below `*.com`).
    pub fn leq(&self, other: &SymPattern) -> bool {
        if other.is_concrete() {
            return self == other;
        }
        let min_len =
            if self.is_concrete() { other.suffix_rtl.len() + 1 } else { other.suffix_rtl.len() };
        self.suffix_rtl.len() >= min_len
            && self.suffix_rtl[..other.suffix_rtl.len()] == other.suffix_rtl[..]
    }

    /// Whether a concrete host name matches this pattern.
    pub fn matches(&self, host: &SymPattern) -> bool {
        host.is_concrete() && host.leq(self)
    }

    /// Intersection satisfiability: is there a concrete host name
    /// matching both patterns?
    ///
    /// Two concrete names overlap only when equal; a concrete name
    /// overlaps a wildcard pattern when it matches it (the wildcard
    /// stands for *at least one* label, so `lab.com` does not overlap
    /// `*.lab.com`); two wildcard patterns overlap when one fixed suffix
    /// extends the other — a name with one extra label then witnesses
    /// both.
    pub fn intersects(&self, other: &SymPattern) -> bool {
        match (self.is_concrete(), other.is_concrete()) {
            (true, true) => self == other,
            (true, false) => self.leq(other),
            (false, true) => other.leq(self),
            (false, false) => {
                let n = self.suffix_rtl.len().min(other.suffix_rtl.len());
                self.suffix_rtl[..n] == other.suffix_rtl[..n]
            }
        }
    }
}

impl FromStr for SymPattern {
    type Err = PatternError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() {
            return Err(PatternError("empty symbolic pattern".into()));
        }
        if s == "*" {
            return Ok(SymPattern::any());
        }
        let parts: Vec<&str> = s.split('.').collect();
        let mut suffix_rtl = Vec::new();
        let mut wildcard = false;
        // Scan right-to-left: fixed labels first, then only wildcards.
        let mut in_wildcards = false;
        for p in parts.iter().rev() {
            if *p == "*" {
                in_wildcards = true;
                wildcard = true;
            } else {
                if in_wildcards {
                    return Err(PatternError(format!(
                        "wildcards must be left-most in symbolic pattern {s:?}"
                    )));
                }
                if p.is_empty()
                    || !p.chars().all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
                {
                    return Err(PatternError(format!("bad label {p:?} in {s:?}")));
                }
                suffix_rtl.push(p.to_string());
            }
        }
        Ok(SymPattern { suffix_rtl, wildcard })
    }
}

impl fmt::Display for SymPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<&str> = Vec::new();
        if self.wildcard {
            parts.push("*");
        }
        for l in self.suffix_rtl.iter().rev() {
            parts.push(l);
        }
        write!(f, "{}", parts.join("."))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ip_parse_and_display() {
        assert_eq!("*".parse::<IpPattern>().unwrap(), IpPattern::any());
        assert_eq!("151.100.*".parse::<IpPattern>().unwrap().to_string(), "151.100.*");
        // equivalence from the paper
        assert_eq!(
            "151.100.*.*".parse::<IpPattern>().unwrap(),
            "151.100.*".parse::<IpPattern>().unwrap()
        );
        assert_eq!("150.100.30.8".parse::<IpPattern>().unwrap().to_string(), "150.100.30.8");
        assert!("150.100.30.8".parse::<IpPattern>().unwrap().is_concrete());
    }

    #[test]
    fn ip_rejects_interleaved_wildcards() {
        assert!("150.*.30".parse::<IpPattern>().is_err());
        assert!("*.100".parse::<IpPattern>().is_err());
        assert!("1.2.3.4.5".parse::<IpPattern>().is_err());
        assert!("300.1.1.1".parse::<IpPattern>().is_err());
        assert!("a.b.c.d".parse::<IpPattern>().is_err());
        assert!("".parse::<IpPattern>().is_err());
    }

    #[test]
    fn ip_partial_order() {
        let exact: IpPattern = "150.100.30.8".parse().unwrap();
        let net: IpPattern = "150.100.*".parse().unwrap();
        let wide: IpPattern = "150.*".parse().unwrap();
        let any = IpPattern::any();
        assert!(exact.leq(&net));
        assert!(net.leq(&wide));
        assert!(wide.leq(&any));
        assert!(exact.leq(&any));
        assert!(!net.leq(&exact));
        assert!(!wide.leq(&net));
        // reflexive
        assert!(net.leq(&net));
        // incomparable
        let other: IpPattern = "151.100.*".parse().unwrap();
        assert!(!net.leq(&other) && !other.leq(&net));
    }

    #[test]
    fn ip_matching() {
        let net: IpPattern = "150.100.*".parse().unwrap();
        assert!(net.matches(&"150.100.30.8".parse().unwrap()));
        assert!(!net.matches(&"150.101.30.8".parse().unwrap()));
        // patterns don't "match" patterns
        assert!(!net.matches(&"150.100.*".parse().unwrap()));
    }

    #[test]
    fn sym_parse_and_display() {
        assert_eq!("*".parse::<SymPattern>().unwrap(), SymPattern::any());
        let p: SymPattern = "*.lab.com".parse().unwrap();
        assert_eq!(p.to_string(), "*.lab.com");
        assert!(!p.is_concrete());
        let h: SymPattern = "tweety.lab.com".parse().unwrap();
        assert!(h.is_concrete());
        assert_eq!(h.to_string(), "tweety.lab.com");
    }

    #[test]
    fn sym_rejects_misplaced_wildcards() {
        assert!("lab.*".parse::<SymPattern>().is_err());
        assert!("a.*.com".parse::<SymPattern>().is_err());
        assert!("".parse::<SymPattern>().is_err());
        assert!("a..b".parse::<SymPattern>().is_err());
    }

    #[test]
    fn sym_partial_order() {
        let host: SymPattern = "tweety.lab.com".parse().unwrap();
        let dom: SymPattern = "*.lab.com".parse().unwrap();
        let tld: SymPattern = "*.com".parse().unwrap();
        let any = SymPattern::any();
        assert!(host.leq(&dom));
        assert!(dom.leq(&tld));
        assert!(tld.leq(&any));
        assert!(!dom.leq(&host));
        assert!(dom.leq(&dom));
        let it: SymPattern = "*.it".parse().unwrap();
        assert!(!tld.leq(&it) && !it.leq(&tld));
    }

    #[test]
    fn sym_concrete_names_with_same_suffix_are_incomparable() {
        let a: SymPattern = "a.lab.com".parse().unwrap();
        let b: SymPattern = "b.lab.com".parse().unwrap();
        assert!(!a.leq(&b) && !b.leq(&a));
        // but both are under *.lab.com
        let dom: SymPattern = "*.lab.com".parse().unwrap();
        assert!(a.leq(&dom) && b.leq(&dom));
    }

    #[test]
    fn sym_matching_paper_examples() {
        // *.mil, *.com, *.it denote machines in those domains
        let it: SymPattern = "*.it".parse().unwrap();
        assert!(it.matches(&"infosys.bld1.it".parse().unwrap()));
        assert!(!it.matches(&"tweety.lab.com".parse().unwrap()));
        let lab: SymPattern = "*.lab.com".parse().unwrap();
        assert!(lab.matches(&"tweety.lab.com".parse().unwrap()));
        assert!(!lab.matches(&"lab.com".parse().unwrap()));
    }

    #[test]
    fn ip_intersection_satisfiability() {
        let net: IpPattern = "150.100.*".parse().unwrap();
        let sub: IpPattern = "150.100.30.*".parse().unwrap();
        let other: IpPattern = "151.*".parse().unwrap();
        let any = IpPattern::any();
        assert!(net.intersects(&sub) && sub.intersects(&net));
        assert!(net.intersects(&any) && any.intersects(&net));
        assert!(!net.intersects(&other));
        // concrete vs pattern: exactly pattern matching
        let exact: IpPattern = "150.100.30.8".parse().unwrap();
        assert!(exact.intersects(&net));
        assert!(!exact.intersects(&"150.101.*".parse().unwrap()));
        // two distinct concrete addresses never overlap
        assert!(!exact.intersects(&"150.100.30.9".parse().unwrap()));
    }

    #[test]
    fn sym_intersection_satisfiability() {
        let dom: SymPattern = "*.lab.com".parse().unwrap();
        let com: SymPattern = "*.com".parse().unwrap();
        let it: SymPattern = "*.it".parse().unwrap();
        assert!(dom.intersects(&com) && com.intersects(&dom));
        assert!(!dom.intersects(&it));
        assert!(dom.intersects(&SymPattern::any()));
        // concrete vs wildcard follows matching (wildcard needs a label)
        let host: SymPattern = "tweety.lab.com".parse().unwrap();
        let bare: SymPattern = "lab.com".parse().unwrap();
        assert!(host.intersects(&dom));
        assert!(!bare.intersects(&dom), "wildcard stands for at least one label");
        // two concrete names: equality only
        assert!(host.intersects(&"tweety.lab.com".parse().unwrap()));
        assert!(!host.intersects(&"other.lab.com".parse().unwrap()));
    }

    #[test]
    fn concrete_sym_pattern_only_matches_itself() {
        let h: SymPattern = "tweety.lab.com".parse().unwrap();
        assert!(h.matches(&"tweety.lab.com".parse().unwrap()));
        assert!(!h.matches(&"other.lab.com".parse().unwrap()));
    }
}
