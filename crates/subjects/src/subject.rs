//! Authorization subjects and the ASH partial order (paper Definition 1).
//!
//! A subject is a triple `⟨user-or-group, ip-pattern, sym-pattern⟩`.
//! Requests arrive from *requesters* — fully specified triples (a user, a
//! concrete IP, a concrete host name) — which are minimal elements of the
//! hierarchy. An authorization granted to subject `s_j` applies to every
//! subject `s_i ≤ s_j`.

use crate::directory::Directory;
use crate::location::{IpPattern, PatternError, SymPattern};
use std::fmt;

/// An element of the authorization subject hierarchy:
/// `AS = UG × IP × SN`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Subject {
    /// User or group identifier.
    pub user_group: String,
    /// IP location pattern.
    pub ip: IpPattern,
    /// Symbolic-name location pattern.
    pub sym: SymPattern,
}

impl Subject {
    /// Builds a subject from its three components, parsing the patterns.
    pub fn new(user_group: &str, ip: &str, sym: &str) -> Result<Subject, PatternError> {
        Ok(Subject { user_group: user_group.to_string(), ip: ip.parse()?, sym: sym.parse()? })
    }

    /// A subject constraining only the user/group (`⟨ug, *, *⟩`).
    pub fn of_user_group(user_group: &str) -> Subject {
        Subject { user_group: user_group.to_string(), ip: IpPattern::any(), sym: SymPattern::any() }
    }

    /// The ASH partial order: `self ≤ other` iff the user/group is a
    /// member of (or equal to) `other`'s, and both location patterns are
    /// at least as specific (Definition 1).
    pub fn leq(&self, other: &Subject, dir: &Directory) -> bool {
        dir.dominates(&self.user_group, &other.user_group)
            && self.ip.leq(&other.ip)
            && self.sym.leq(&other.sym)
    }

    /// Strictly more specific: `self ≤ other` and `self ≠ other` in the
    /// order (used by the "most specific subject takes precedence" rule).
    pub fn strictly_leq(&self, other: &Subject, dir: &Directory) -> bool {
        self.leq(other, dir) && !other.leq(self, dir)
    }

    /// Overlap satisfiability: can some *requester* (a user at a concrete
    /// location) be covered by both subjects? True when a user of the
    /// directory is dominated by both user/groups and the two location
    /// patterns intersect on each component. Two ASH-incomparable
    /// subjects with a satisfiable overlap are exactly the pairs whose
    /// conflicts surface only for requesters inside the overlap.
    pub fn overlaps(&self, other: &Subject, dir: &Directory) -> bool {
        let user_overlap = dir.principals().any(|(p, kind)| {
            kind == crate::directory::PrincipalKind::User
                && dir.dominates(p, &self.user_group)
                && dir.dominates(p, &other.user_group)
        });
        user_overlap && self.ip.intersects(&other.ip) && self.sym.intersects(&other.sym)
    }
}

impl std::str::FromStr for Subject {
    type Err = PatternError;

    /// Parses the paper's display notation `⟨ug, ip, sn⟩` (ASCII angle
    /// brackets and bare `ug,ip,sn` accepted too).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let trimmed = s.trim().trim_start_matches(['⟨', '<']).trim_end_matches(['⟩', '>']);
        let parts: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        match parts.as_slice() {
            [ug, ip, sn] if !ug.is_empty() => Subject::new(ug, ip, sn),
            _ => Err(PatternError(format!("subject must be ⟨user-group, ip, sym⟩, got {s:?}"))),
        }
    }
}

impl fmt::Display for Subject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{}, {}, {}⟩", self.user_group, self.ip, self.sym)
    }
}

/// A requester: the fully specified subject a request arrives with
/// (paper §3: "subjects requesting access are thus characterized by a
/// triple ⟨user-id, IP-address, sym-address⟩").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Requester {
    /// Authenticated user identity (`anonymous` counts as a user).
    pub user: String,
    /// Concrete numeric address.
    pub ip: IpPattern,
    /// Concrete symbolic address.
    pub sym: SymPattern,
}

impl Requester {
    /// Builds a requester, checking both locations are concrete.
    pub fn new(user: &str, ip: &str, sym: &str) -> Result<Requester, PatternError> {
        let ip: IpPattern = ip.parse()?;
        if !ip.is_concrete() {
            return Err(PatternError(format!("requester IP {ip} must be concrete")));
        }
        let sym: SymPattern = sym.parse()?;
        if !sym.is_concrete() {
            return Err(PatternError(format!("requester host {sym} must be concrete")));
        }
        Ok(Requester { user: user.to_string(), ip, sym })
    }

    /// The requester as a (minimal) subject of the hierarchy.
    pub fn as_subject(&self) -> Subject {
        Subject { user_group: self.user.clone(), ip: self.ip.clone(), sym: self.sym.clone() }
    }

    /// Does an authorization granted to `subject` apply to this requester?
    /// (`requester ≤ subject` in ASH.)
    pub fn is_covered_by(&self, subject: &Subject, dir: &Directory) -> bool {
        self.as_subject().leq(subject, dir)
    }
}

impl fmt::Display for Requester {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}({})", self.user, self.sym, self.ip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir() -> Directory {
        let mut d = Directory::new();
        d.add_user("Tom").unwrap();
        d.add_user("Alice").unwrap();
        d.add_user("Sam").unwrap();
        d.add_group("Public").unwrap();
        d.add_group("Foreign").unwrap();
        d.add_group("Admin").unwrap();
        d.add_member("Tom", "Foreign").unwrap();
        d.add_member("Tom", "Public").unwrap();
        d.add_member("Alice", "Admin").unwrap();
        d.add_member("Alice", "Public").unwrap();
        d.add_member("Sam", "Public").unwrap();
        d
    }

    #[test]
    fn paper_subject_examples_parse() {
        // ⟨Alice, *, *⟩, ⟨Public, 150.100.30.8, *⟩, ⟨Sam, *, *.lab.com⟩
        Subject::new("Alice", "*", "*").unwrap();
        Subject::new("Public", "150.100.30.8", "*").unwrap();
        Subject::new("Sam", "*", "*.lab.com").unwrap();
    }

    #[test]
    fn ash_order_definition() {
        let d = dir();
        let tom_here = Subject::new("Tom", "130.100.50.8", "infosys.bld1.it").unwrap();
        let foreign_any = Subject::new("Foreign", "*", "*").unwrap();
        let public_it = Subject::new("Public", "*", "*.it").unwrap();
        let admin_host = Subject::new("Admin", "130.89.56.8", "*").unwrap();

        assert!(tom_here.leq(&foreign_any, &d));
        assert!(tom_here.leq(&public_it, &d));
        assert!(!tom_here.leq(&admin_host, &d)); // Tom not in Admin
                                                 // all three components must agree
        let tom_elsewhere = Subject::new("Tom", "130.100.50.8", "x.lab.com").unwrap();
        assert!(!tom_elsewhere.leq(&public_it, &d));
    }

    #[test]
    fn requester_coverage() {
        let d = dir();
        // the paper's Example 2 requester
        let tom = Requester::new("Tom", "130.100.50.8", "infosys.bld1.it").unwrap();
        assert!(tom.is_covered_by(&Subject::new("Foreign", "*", "*").unwrap(), &d));
        assert!(tom.is_covered_by(&Subject::new("Public", "*", "*").unwrap(), &d));
        assert!(tom.is_covered_by(&Subject::new("Public", "*", "*.it").unwrap(), &d));
        assert!(tom.is_covered_by(&Subject::new("Tom", "130.100.*", "*").unwrap(), &d));
        assert!(!tom.is_covered_by(&Subject::new("Admin", "*", "*").unwrap(), &d));
        assert!(!tom.is_covered_by(&Subject::new("Public", "*", "*.com").unwrap(), &d));
        assert!(!tom.is_covered_by(&Subject::new("Public", "131.*", "*").unwrap(), &d));
    }

    #[test]
    fn requesters_must_be_concrete() {
        assert!(Requester::new("Tom", "130.100.*", "a.it").is_err());
        assert!(Requester::new("Tom", "1.2.3.4", "*.it").is_err());
        Requester::new("anonymous", "1.2.3.4", "a.b.it").unwrap();
    }

    #[test]
    fn strict_specificity() {
        let d = dir();
        let tom = Subject::new("Tom", "*", "*").unwrap();
        let foreign = Subject::new("Foreign", "*", "*").unwrap();
        assert!(tom.strictly_leq(&foreign, &d));
        assert!(!foreign.strictly_leq(&tom, &d));
        assert!(!tom.strictly_leq(&tom, &d));
        // refinement on location only
        let tom_net = Subject::new("Tom", "150.100.*", "*").unwrap();
        assert!(tom_net.strictly_leq(&tom, &d));
    }

    #[test]
    fn incomparable_subjects() {
        let d = dir();
        let foreign = Subject::new("Foreign", "*", "*").unwrap();
        let admin = Subject::new("Admin", "*", "*").unwrap();
        assert!(!foreign.leq(&admin, &d));
        assert!(!admin.leq(&foreign, &d));
        // crossed specificity: ⟨Tom, net, *⟩ vs ⟨Foreign, *, *.it⟩
        let a = Subject::new("Tom", "150.100.*", "*").unwrap();
        let b = Subject::new("Foreign", "*", "*.it").unwrap();
        assert!(!a.leq(&b, &d) && !b.leq(&a, &d));
    }

    #[test]
    fn subject_overlap_satisfiability() {
        let d = dir();
        // Tom ∈ Foreign and Tom ∈ Public: the two incomparable groups
        // overlap (Tom at any location witnesses both).
        let foreign = Subject::new("Foreign", "*", "*").unwrap();
        let public = Subject::new("Public", "*", "*").unwrap();
        assert!(foreign.overlaps(&public, &d));
        // Foreign and Admin share no user.
        let admin = Subject::new("Admin", "*", "*").unwrap();
        assert!(!foreign.overlaps(&admin, &d));
        // Same groups, disjoint locations: no overlap.
        let foreign_it = Subject::new("Foreign", "*", "*.it").unwrap();
        let public_com = Subject::new("Public", "*", "*.com").unwrap();
        assert!(!foreign_it.overlaps(&public_com, &d));
        // Nested IP prefixes still overlap.
        let foreign_net = Subject::new("Foreign", "150.100.*", "*").unwrap();
        let public_sub = Subject::new("Public", "150.100.30.*", "*").unwrap();
        assert!(foreign_net.overlaps(&public_sub, &d));
        // A group with no members can cover no requester.
        let mut d2 = Directory::new();
        d2.add_group("Ghost").unwrap();
        d2.add_group("Crew").unwrap();
        let ghost = Subject::new("Ghost", "*", "*").unwrap();
        let crew = Subject::new("Crew", "*", "*").unwrap();
        assert!(!ghost.overlaps(&crew, &d2));
    }

    #[test]
    fn display_forms() {
        let s = Subject::new("Public", "150.100.*", "*.it").unwrap();
        assert_eq!(s.to_string(), "⟨Public, 150.100.*, *.it⟩");
        let r = Requester::new("Tom", "130.100.50.8", "infosys.bld1.it").unwrap();
        assert_eq!(r.to_string(), "Tom@infosys.bld1.it(130.100.50.8)");
    }
}

#[cfg(test)]
mod from_str_tests {
    use super::*;

    #[test]
    fn parses_paper_notation() {
        let s: Subject = "⟨Public, 150.100.*, *.it⟩".parse().unwrap();
        assert_eq!(s.user_group, "Public");
        assert_eq!(s.ip.to_string(), "150.100.*");
        assert_eq!(s.sym.to_string(), "*.it");
        // round trip
        let again: Subject = s.to_string().parse().unwrap();
        assert_eq!(s, again);
    }

    #[test]
    fn parses_ascii_variants() {
        let s: Subject = "<Tom, *, *>".parse().unwrap();
        assert_eq!(s.user_group, "Tom");
        let bare: Subject = "Tom, *, *.lab.com".parse().unwrap();
        assert_eq!(bare.sym.to_string(), "*.lab.com");
    }

    #[test]
    fn rejects_malformed() {
        assert!("".parse::<Subject>().is_err());
        assert!("⟨Tom⟩".parse::<Subject>().is_err());
        assert!("⟨Tom, *, *, extra⟩".parse::<Subject>().is_err());
        assert!("⟨Tom, not-an-ip, *⟩".parse::<Subject>().is_err());
        assert!("⟨, *, *⟩".parse::<Subject>().is_err());
    }
}
