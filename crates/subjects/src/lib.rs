//! # xmlsec-subjects — authorization subjects (paper §3)
//!
//! Implements the subject side of the model: user identities, nested and
//! overlapping groups ([`Directory`]), numeric and symbolic location
//! patterns with the paper's wildcard placement rules ([`IpPattern`],
//! [`SymPattern`]), and the *authorization subject hierarchy*
//! ASH = (UG × IP × SN, ≤) of Definition 1 ([`Subject::leq`]).
//!
//! ```
//! use xmlsec_subjects::{Directory, Requester, Subject};
//!
//! let mut dir = Directory::new();
//! dir.add_user("Tom").unwrap();
//! dir.add_group("Foreign").unwrap();
//! dir.add_member("Tom", "Foreign").unwrap();
//!
//! let tom = Requester::new("Tom", "130.100.50.8", "infosys.bld1.it").unwrap();
//! let foreign_anywhere = Subject::new("Foreign", "*", "*").unwrap();
//! assert!(tom.is_covered_by(&foreign_anywhere, &dir));
//! ```

#![warn(missing_docs)]

pub mod directory;
pub mod location;
pub mod subject;

pub use directory::{Directory, DirectoryError, PrincipalKind};
pub use location::{IpPattern, PatternError, SymPattern};
pub use subject::{Requester, Subject};
