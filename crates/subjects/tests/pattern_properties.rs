//! Property tests for location patterns: parse/display round-trips and
//! partial-order laws over the whole generated pattern space.

use proptest::prelude::*;
use xmlsec_subjects::{IpPattern, SymPattern};

/// Strategy: an arbitrary valid IP pattern (prefix of 0..=4 octets).
fn ip_pattern() -> impl Strategy<Value = IpPattern> {
    prop::collection::vec(any::<u8>(), 0..=4).prop_map(|octets| {
        let s = if octets.is_empty() {
            "*".to_string()
        } else {
            let mut parts: Vec<String> = octets.iter().map(u8::to_string).collect();
            if parts.len() < 4 {
                parts.push("*".to_string());
            }
            parts.join(".")
        };
        s.parse().expect("constructed pattern is valid")
    })
}

/// Strategy: an arbitrary valid symbolic pattern (suffix of 0..=4 labels,
/// wildcard or concrete).
fn sym_pattern() -> impl Strategy<Value = SymPattern> {
    (prop::collection::vec("[a-z][a-z0-9]{0,5}", 0..=4), any::<bool>()).prop_map(
        |(labels, wildcard)| {
            let s = if labels.is_empty() {
                "*".to_string()
            } else if wildcard {
                format!("*.{}", labels.join("."))
            } else {
                labels.join(".")
            };
            s.parse().expect("constructed pattern is valid")
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn ip_display_parse_round_trip(p in ip_pattern()) {
        let again: IpPattern = p.to_string().parse().expect("display form re-parses");
        prop_assert_eq!(p, again);
    }

    #[test]
    fn sym_display_parse_round_trip(p in sym_pattern()) {
        let again: SymPattern = p.to_string().parse().expect("display form re-parses");
        prop_assert_eq!(p, again);
    }

    #[test]
    fn ip_order_laws(a in ip_pattern(), b in ip_pattern(), c in ip_pattern()) {
        prop_assert!(a.leq(&a), "reflexive");
        if a.leq(&b) && b.leq(&a) {
            prop_assert_eq!(&a, &b, "antisymmetric");
        }
        if a.leq(&b) && b.leq(&c) {
            prop_assert!(a.leq(&c), "transitive");
        }
    }

    #[test]
    fn sym_order_laws(a in sym_pattern(), b in sym_pattern(), c in sym_pattern()) {
        prop_assert!(a.leq(&a), "reflexive");
        if a.leq(&b) && b.leq(&a) {
            prop_assert_eq!(&a, &b, "antisymmetric");
        }
        if a.leq(&b) && b.leq(&c) {
            prop_assert!(a.leq(&c), "transitive");
        }
    }

    #[test]
    fn matches_is_leq_for_concrete(p in ip_pattern(), a in ip_pattern()) {
        // matches() agrees with ≤ restricted to concrete addresses.
        prop_assert_eq!(p.matches(&a), a.is_concrete() && a.leq(&p));
    }

    #[test]
    fn sym_matches_is_leq_for_concrete(p in sym_pattern(), h in sym_pattern()) {
        prop_assert_eq!(p.matches(&h), h.is_concrete() && h.leq(&p));
    }

    #[test]
    fn the_full_wildcards_are_tops(p in ip_pattern(), s in sym_pattern()) {
        prop_assert!(p.leq(&IpPattern::any()));
        prop_assert!(s.leq(&SymPattern::any()));
    }
}
