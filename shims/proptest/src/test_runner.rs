//! Test configuration, error type, and the deterministic RNG.

use std::fmt;

/// Per-`proptest!` block configuration (only `cases` is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` samples.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case failed.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failed assertion with a rendered message.
    pub fn fail(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// SplitMix64-based RNG, seeded from the test's location so runs are
/// reproducible. Set `PROPTEST_SEED` to perturb the whole suite.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an identifying string (test module + line).
    pub fn deterministic(ident: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
        for b in ident.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_SEED") {
            for b in extra.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        TestRng { state: h }
    }

    /// The next uniform 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform `usize` in `[lo, hi]`.
    pub fn in_range(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + self.below((hi - lo + 1) as u64) as usize
    }
}
