//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this shim implements
//! the subset of proptest the workspace's property tests use:
//!
//! - the [`proptest!`] macro (with `#![proptest_config(...)]`),
//! - [`prop_assert!`] / [`prop_assert_eq!`],
//! - strategies: integer ranges, regex-like string literals, tuples,
//!   [`collection::vec`], [`arbitrary::any`], and `prop_map`,
//! - a deterministic per-test RNG.
//!
//! Differences from the real crate: **no shrinking** (failures report the
//! sampled inputs as-is) and no persistence of failing seeds
//! (`proptest-regressions` files are ignored). The regex dialect covers
//! what the tests use: `.`, character classes with ranges and `\xHH`
//! escapes, and `{m,n}` / `*` / `+` / `?` quantifiers.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The glob import every test file starts from.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Alias of the crate root, so `prop::collection::vec(...)` works.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
        pub use crate::string;
    }
}

/// Generates the body of one property test: sample each strategy
/// `config.cases` times and run the block, panicking with the sampled
/// inputs on the first failure.
#[macro_export]
macro_rules! __proptest_case {
    ($cfg:expr; $($arg:ident in $strat:expr),+ ; $body:block) => {{
        let config: $crate::test_runner::ProptestConfig = $cfg;
        let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
            module_path!(),
            "::",
            line!()
        ));
        for __case in 0..config.cases {
            $(
                let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
            )+
            let __inputs = format!(
                concat!($("  ", stringify!($arg), " = {:?}\n",)+),
                $(&$arg,)+
            );
            let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                (|| { $body ::core::result::Result::Ok(()) })();
            if let ::core::result::Result::Err(e) = __outcome {
                panic!(
                    "proptest case {}/{} failed: {}\ninputs:\n{}",
                    __case + 1,
                    config.cases,
                    e,
                    __inputs
                );
            }
        }
    }};
}

/// The `proptest!` macro: wraps each contained function in a sampling
/// loop. Attributes (including `#[test]` and doc comments) pass through.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the API.
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::__proptest_case!($cfg; $($arg in $strat),+ ; $body);
            }
        )*
    };
}

/// Fails the enclosing property-test case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), l, r
        );
    }};
}

/// Fails the case when the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}
