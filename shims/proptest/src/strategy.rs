//! The [`Strategy`] trait and its implementations for ranges, tuples,
//! and mapped strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A generator of values for property tests. Unlike the real crate there
/// is no shrinking: a strategy is just a sampler.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + ((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + ((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($n:ident . $i:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
