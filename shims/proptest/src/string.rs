//! String strategies from regex-like patterns.
//!
//! In proptest a `&str` literal is a strategy generating strings that
//! match it as a regex. This shim supports the dialect the workspace's
//! tests use: literal characters, `.`, character classes (`[a-z0-9\-]`,
//! including `\xHH` escapes and ranges), and the quantifiers `{m,n}`,
//! `{n}`, `*`, `+`, `?`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// One parsed regex atom.
#[derive(Debug, Clone)]
enum Atom {
    /// A fixed character.
    Literal(char),
    /// `.` — any scalar value except newline.
    AnyChar,
    /// A character class, flattened into candidate ranges.
    Class(Vec<(u32, u32)>),
}

/// An atom plus its repetition bounds.
#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let pieces = parse_pattern(self)
            .unwrap_or_else(|e| panic!("unsupported regex pattern {self:?}: {e}"));
        let mut out = String::new();
        for p in &pieces {
            let count = rng.in_range(p.min, p.max);
            for _ in 0..count {
                out.push(sample_atom(&p.atom, rng));
            }
        }
        out
    }
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::AnyChar => {
            // Mostly printable ASCII, sometimes any scalar value — enough
            // variety to exercise parser robustness paths.
            match rng.below(8) {
                0 => {
                    let v = rng.below(0x11_0000_u64) as u32;
                    char::from_u32(v).filter(|&c| c != '\n').unwrap_or('\u{fffd}')
                }
                1 => char::from_u32(rng.below(0x20) as u32).filter(|&c| c != '\n').unwrap_or('\t'),
                _ => (0x20u8 + rng.below(0x5f) as u8) as char,
            }
        }
        Atom::Class(ranges) => {
            let total: u64 = ranges.iter().map(|(lo, hi)| (hi - lo + 1) as u64).sum();
            let mut pick = rng.below(total);
            for &(lo, hi) in ranges {
                let span = (hi - lo + 1) as u64;
                if pick < span {
                    return char::from_u32(lo + pick as u32).unwrap_or('\u{fffd}');
                }
                pick -= span;
            }
            unreachable!("pick within total")
        }
    }
}

fn parse_pattern(pat: &str) -> Result<Vec<Piece>, String> {
    let chars: Vec<char> = pat.chars().collect();
    let mut i = 0;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::AnyChar
            }
            '[' => {
                let (class, next) = parse_class(&chars, i + 1)?;
                i = next;
                Atom::Class(class)
            }
            '\\' => {
                let (c, next) = parse_escape(&chars, i + 1)?;
                i = next;
                Atom::Literal(c)
            }
            '(' | ')' | '|' => {
                return Err(format!("unsupported regex construct {:?}", chars[i]));
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max, next) = parse_quantifier(&chars, i)?;
        i = next;
        pieces.push(Piece { atom, min, max });
    }
    Ok(pieces)
}

fn parse_quantifier(chars: &[char], mut i: usize) -> Result<(usize, usize, usize), String> {
    match chars.get(i) {
        Some('*') => Ok((0, 8, i + 1)),
        Some('+') => Ok((1, 8, i + 1)),
        Some('?') => Ok((0, 1, i + 1)),
        Some('{') => {
            let start = i + 1;
            let mut j = start;
            while j < chars.len() && chars[j] != '}' {
                j += 1;
            }
            if j == chars.len() {
                return Err("unterminated {..} quantifier".into());
            }
            let body: String = chars[start..j].iter().collect();
            i = j + 1;
            let (lo, hi) = match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse::<usize>().map_err(|e| e.to_string())?,
                    hi.trim().parse::<usize>().map_err(|e| e.to_string())?,
                ),
                None => {
                    let n = body.trim().parse::<usize>().map_err(|e| e.to_string())?;
                    (n, n)
                }
            };
            if lo > hi {
                return Err(format!("quantifier {{{body}}} has lo > hi"));
            }
            Ok((lo, hi, i))
        }
        _ => Ok((1, 1, i)),
    }
}

/// Parses a class body starting just past `[`; returns candidate ranges
/// and the index past the closing `]`.
fn parse_class(chars: &[char], mut i: usize) -> Result<(Vec<(u32, u32)>, usize), String> {
    let mut ranges: Vec<(u32, u32)> = Vec::new();
    let mut pending: Option<u32> = None; // left end of a possible a-b range
    let mut first = true;
    loop {
        let Some(&c) = chars.get(i) else {
            return Err("unterminated character class".into());
        };
        match c {
            ']' if !first => {
                if let Some(p) = pending.take() {
                    ranges.push((p, p));
                }
                return Ok((ranges, i + 1));
            }
            '-' if pending.is_some() && chars.get(i + 1).is_some_and(|&n| n != ']') => {
                let lo = pending.take().expect("checked");
                i += 1;
                let hi = match chars[i] {
                    '\\' => {
                        let (c, next) = parse_escape(chars, i + 1)?;
                        i = next - 1;
                        c as u32
                    }
                    c => c as u32,
                };
                i += 1;
                if lo > hi {
                    return Err("class range has lo > hi".into());
                }
                ranges.push((lo, hi));
            }
            '\\' => {
                if let Some(p) = pending.take() {
                    ranges.push((p, p));
                }
                let (c, next) = parse_escape(chars, i + 1)?;
                i = next;
                pending = Some(c as u32);
            }
            c => {
                if let Some(p) = pending.take() {
                    ranges.push((p, p));
                }
                pending = Some(c as u32);
                i += 1;
            }
        }
        first = false;
    }
}

/// Parses an escape starting just past `\`; returns the character and the
/// index past the escape.
fn parse_escape(chars: &[char], i: usize) -> Result<(char, usize), String> {
    match chars.get(i) {
        None => Err("dangling backslash".into()),
        Some('x') => {
            let hex: String = chars.get(i + 1..i + 3).unwrap_or_default().iter().collect();
            let v = u32::from_str_radix(&hex, 16).map_err(|e| format!("bad \\x escape: {e}"))?;
            Ok((char::from_u32(v).unwrap_or('\u{fffd}'), i + 3))
        }
        Some('n') => Ok(('\n', i + 1)),
        Some('t') => Ok(('\t', i + 1)),
        Some('r') => Ok(('\r', i + 1)),
        Some(&c) => Ok((c, i + 1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;

    fn rng() -> TestRng {
        TestRng::deterministic("string-tests")
    }

    #[test]
    fn literal_and_counted() {
        let mut r = rng();
        let s = "ab{3}c".sample(&mut r);
        assert_eq!(s, "abbbc");
    }

    #[test]
    fn class_ranges_and_escapes() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-z0-9\\-\\[\\]]{1,10}".sample(&mut r);
            assert!((1..=10).contains(&s.chars().count()));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "-[]".contains(c)));
        }
    }

    #[test]
    fn hex_escape_classes() {
        let mut r = rng();
        for _ in 0..100 {
            let s = "[\\x00-\\xff]{1,8}".sample(&mut r);
            assert!((1..=8).contains(&s.chars().count()));
            assert!(s.chars().all(|c| (c as u32) <= 0xff));
        }
    }

    #[test]
    fn dot_and_star() {
        let mut r = rng();
        for _ in 0..50 {
            let s = ".{0,300}".sample(&mut r);
            assert!(s.chars().count() <= 300);
            assert!(!s.contains('\n'));
            let t = "x*".sample(&mut r);
            assert!(t.chars().all(|c| c == 'x'));
        }
    }

    #[test]
    fn trailing_dash_is_literal() {
        let mut r = rng();
        for _ in 0..100 {
            let s = "[a;-]{1,4}".sample(&mut r);
            assert!(s.chars().all(|c| c == 'a' || c == ';' || c == '-'));
        }
    }
}
