//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this shim
//! provides exactly the API surface the workspace uses — `SmallRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over integer ranges, and
//! `Rng::gen_bool` — backed by a xoshiro256** generator seeded through
//! SplitMix64 (the same construction real `SmallRng` uses on 64-bit
//! targets). Deterministic for a given seed, not cryptographically secure.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it with SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from an integer range (`lo..hi` or `lo..=hi`).
    ///
    /// Panics on an empty range, like the real crate.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Integer types that can be sampled uniformly from a range.
///
/// One blanket `SampleRange` impl per range shape (mirroring the real
/// crate's structure) keeps type inference working for un-suffixed
/// literals like `rng.gen_range(0..items.len())`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`; callers guarantee `lo < hi`.
    fn sample_excl<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`; callers guarantee `lo <= hi`.
    fn sample_incl<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_excl<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as $u).wrapping_sub(lo as $u);
                lo.wrapping_add((rng.next_u64() as $u % span) as $t)
            }
            fn sample_incl<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as $u).wrapping_sub(lo as $u).wrapping_add(1);
                if span == 0 {
                    // Full-domain range: every value is fair game.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() as $u % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one sample; panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_excl(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_incl(rng, lo, hi)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as real rand does for seed_from_u64.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(0usize..=4);
            assert!(w <= 4);
            let s = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "suspicious coin: {heads}");
    }
}
