//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io. This shim keeps the
//! workspace's benches compiling and *running*: each bench is timed with
//! a calibrated loop (warm-up, then enough iterations to fill a
//! measurement window) and reported as a plain `name ... time/iter` line.
//! There are no statistical analyses, plots, or saved baselines.
//!
//! The measurement window defaults to 200 ms per bench so `cargo bench`
//! stays quick; set `CRITERION_MEASUREMENT_MS` to raise it for steadier
//! numbers.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level bench driver, handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named bench.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(None, &BenchmarkId::from(id), None, f);
        self
    }

    /// Opens a named group of benches.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            throughput: None,
            measurement: default_measurement(),
        }
    }
}

fn default_measurement() -> Duration {
    let ms = std::env::var("CRITERION_MEASUREMENT_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(200);
    Duration::from_millis(ms)
}

/// A group of related benches sharing throughput/measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Declares how much work one iteration does (reported as a rate).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for compatibility; sampling is iteration-count based here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Caps the per-bench measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        // Cap: the real crate spends this per bench; the shim keeps runs
        // short unless explicitly raised via CRITERION_MEASUREMENT_MS.
        self.measurement = self.measurement.min(d);
        self
    }

    /// Accepted for compatibility.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one bench within the group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        run_bench_in(self, id.into(), f);
        self
    }

    /// Runs one parameterized bench within the group.
    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        P: ?Sized,
        F: FnMut(&mut Bencher, &P),
    {
        let id = id.into();
        let measurement = self.measurement;
        let throughput = self.throughput.clone();
        run_bench(Some(&self.name), &id, throughput, |b| {
            b.measurement = measurement;
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op; reports stream as benches run).
    pub fn finish(self) {}
}

fn run_bench_in<F: FnMut(&mut Bencher)>(group: &mut BenchmarkGroup<'_>, id: BenchmarkId, mut f: F) {
    let measurement = group.measurement;
    let throughput = group.throughput.clone();
    run_bench(Some(&group.name), &id, throughput, |b| {
        b.measurement = measurement;
        f(b)
    });
}

fn run_bench<F>(group: Option<&str>, id: &BenchmarkId, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher { measurement: default_measurement(), mean_ns: 0.0, iters: 0 };
    f(&mut b);
    let full_name = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let rate = throughput
        .map(|t| match t {
            Throughput::Bytes(n) | Throughput::BytesDecimal(n) => {
                format!("  {:>10.1} MiB/s", n as f64 / (b.mean_ns / 1e9) / (1024.0 * 1024.0))
            }
            Throughput::Elements(n) => {
                format!("  {:>12.0} elem/s", n as f64 / (b.mean_ns / 1e9))
            }
        })
        .unwrap_or_default();
    println!("bench: {full_name:<48} {:>14}/iter ({} iters){rate}", format_ns(b.mean_ns), b.iters);
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Times closures handed to it by the bench body.
pub struct Bencher {
    measurement: Duration,
    /// Mean wall time per iteration, in nanoseconds (set by `iter`).
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Calibrates an iteration count to the measurement window, then
    /// times `routine` over it.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and calibration: run until ~10% of the window is spent,
        // doubling the batch each time.
        let mut batch: u64 = 1;
        let calibration_budget = self.measurement.as_secs_f64() * 0.1;
        let mut per_iter;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let spent = t.elapsed().as_secs_f64();
            per_iter = spent / batch as f64;
            if spent >= calibration_budget || batch >= (1 << 30) {
                break;
            }
            batch *= 2;
        }
        // Measurement: one timed run sized to fill the remaining window.
        let want = ((self.measurement.as_secs_f64() * 0.9) / per_iter.max(1e-9)).ceil();
        let iters = (want as u64).clamp(1, 1 << 32);
        let t = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.mean_ns = t.elapsed().as_secs_f64() * 1e9 / iters as f64;
        self.iters = iters;
    }
}

/// A bench identifier, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    param: Option<String>,
}

impl BenchmarkId {
    /// A bench called `name` with parameter `param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId { name: name.into(), param: Some(param.to_string()) }
    }

    /// A bench identified only by its parameter.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId { name: String::new(), param: Some(param.to_string()) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { name: name.to_string(), param: None }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.param {
            Some(p) if self.name.is_empty() => write!(f, "{p}"),
            Some(p) => write!(f, "{}/{p}", self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

/// How much work one iteration represents.
#[derive(Debug, Clone)]
pub enum Throughput {
    /// Bytes processed per iteration (binary units in reports).
    Bytes(u64),
    /// Bytes processed per iteration (decimal units in reports).
    BytesDecimal(u64),
    /// Logical items processed per iteration.
    Elements(u64),
}

/// Declares a group of bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
